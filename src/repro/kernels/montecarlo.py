"""Monte-Carlo swaption pricing (the swaptions substrate).

swaptions (PARSEC) prices portfolios of swaptions by Monte-Carlo
simulation of the Heath-Jarrow-Morton framework.  PowerDial's knob is the
number of simulation trials: 100 configurations spanning a 100x speedup
for 1.5 % price error (Table 2).

This module implements a one-factor HJM-style simulation: forward-rate
curves evolve under lognormal volatility, each path prices the underlying
swap at exercise, and the swaption value is the discounted mean positive
payoff.  Fewer trials → proportionally less work, more pricing noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Swaption:
    """A payer swaption: the right to enter a pay-fixed swap.

    Parameters
    ----------
    strike:
        Fixed rate of the underlying swap.
    maturity_years:
        Option exercise time.
    tenor_years:
        Length of the underlying swap after exercise.
    payment_interval_years:
        Coupon spacing of the underlying swap.
    """

    strike: float = 0.04
    maturity_years: float = 1.0
    tenor_years: float = 3.0
    payment_interval_years: float = 0.5

    def __post_init__(self) -> None:
        if min(
            self.strike,
            self.maturity_years,
            self.tenor_years,
            self.payment_interval_years,
        ) <= 0:
            raise ValueError("swaption parameters must be positive")


@dataclass(frozen=True)
class MarketModel:
    """Flat initial forward curve with one-factor lognormal volatility."""

    initial_rate: float = 0.04
    volatility: float = 0.2
    time_step_years: float = 0.25

    def __post_init__(self) -> None:
        if self.initial_rate <= 0 or self.volatility <= 0:
            raise ValueError("market parameters must be positive")


def price_swaption(
    swaption: Swaption,
    market: MarketModel,
    n_trials: int,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo price of ``swaption`` with ``n_trials`` paths.

    Work is O(n_trials × steps × payments); ``n_trials`` is the paper's
    approximation knob.
    """
    if n_trials <= 0:
        raise ValueError("need at least one trial")
    if rng is None:
        rng = np.random.default_rng(seed)
    steps = max(1, int(round(swaption.maturity_years / market.time_step_years)))
    dt = swaption.maturity_years / steps
    # Evolve the short rate to exercise under lognormal dynamics
    # (drift-adjusted so the rate is a martingale in expectation).
    shocks = rng.normal(0.0, 1.0, size=(n_trials, steps))
    log_paths = (
        -0.5 * market.volatility**2 * dt + market.volatility * np.sqrt(dt) * shocks
    ).cumsum(axis=1)
    rates_at_exercise = market.initial_rate * np.exp(log_paths[:, -1])

    # Value the underlying pay-fixed swap at exercise per path: annuity
    # discounting with the path's flat rate.
    n_payments = int(round(swaption.tenor_years / swaption.payment_interval_years))
    payment_times = swaption.payment_interval_years * np.arange(
        1, n_payments + 1
    )
    discounts = np.exp(
        -np.outer(rates_at_exercise, payment_times)
    )  # (trials, payments)
    annuity = swaption.payment_interval_years * discounts.sum(axis=1)
    swap_value = annuity * (rates_at_exercise - swaption.strike)
    payoff = np.maximum(swap_value, 0.0)

    discount_to_today = np.exp(-market.initial_rate * swaption.maturity_years)
    return float(discount_to_today * payoff.mean())


def pricing_accuracy(price: float, reference_price: float) -> float:
    """Accuracy of an approximate price against the full-trial reference.

    1 minus relative error, floored at 0 (the paper reports swaptions
    accuracy loss as relative price error, Table 2).
    """
    if reference_price <= 0:
        raise ValueError("reference price must be positive")
    return max(0.0, 1.0 - abs(price - reference_price) / reference_price)
