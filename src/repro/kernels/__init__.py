"""Computational kernels backing the eight approximate applications.

Each module implements, at laptop scale, the real computation of one of
the paper's benchmarks (Sec. 4.1), so the accuracy/performance trade-offs
the runtime manages are earned by actual algorithms rather than asserted:

================  ==========================================  ============
paper benchmark   kernel                                       accuracy
================  ==========================================  ============
swish++           :mod:`.search` inverted-index engine         precision/recall
streamcluster     :mod:`.clustering` streaming k-median        clustering cost
canneal           :mod:`.annealing` SA place-and-route         wire length
swaptions         :mod:`.montecarlo` MC swaption pricing       price error
radar             :mod:`.signal` matched-filter detection      SNR / detection F1
x264              :mod:`.video` block motion-comp encoder      PSNR
bodytrack         :mod:`.tracking` annealed particle filter    track quality
ferret            :mod:`.similarity` probe-and-rank search     result similarity
================  ==========================================  ============
"""

from .annealing import Annealer, Netlist, Placement, route_quality
from .clustering import (
    KMedianLocalSearch,
    StreamCluster,
    clustering_cost,
    gaussian_mixture_stream,
)
from .corpus import Document, QueryGenerator, SyntheticCorpus
from .montecarlo import MarketModel, Swaption, price_swaption, pricing_accuracy
from .search import (
    InvertedIndex,
    SearchEngine,
    SearchResult,
    f1_score,
    precision_recall,
)
from .signal import (
    PhasedArrayScene,
    RadarScene,
    beamform,
    cfar_detect,
    detect_targets,
    detection_quality,
    matched_filter,
    steering_vector,
)
from .similarity import (
    FeatureDatabase,
    SimilaritySearch,
    exhaustive_top_k,
    result_similarity,
)
from .tracking import AnnealedParticleFilter, BodyScene, track_quality
from .video import (
    EncoderConfig,
    SyntheticVideo,
    encode_frame,
    encode_sequence,
    motion_estimate,
    psnr,
)

__all__ = [
    "AnnealedParticleFilter",
    "Annealer",
    "BodyScene",
    "Document",
    "EncoderConfig",
    "FeatureDatabase",
    "InvertedIndex",
    "KMedianLocalSearch",
    "MarketModel",
    "Netlist",
    "PhasedArrayScene",
    "Placement",
    "QueryGenerator",
    "RadarScene",
    "SearchEngine",
    "SearchResult",
    "SimilaritySearch",
    "StreamCluster",
    "Swaption",
    "SyntheticCorpus",
    "SyntheticVideo",
    "beamform",
    "cfar_detect",
    "clustering_cost",
    "detect_targets",
    "detection_quality",
    "encode_frame",
    "encode_sequence",
    "exhaustive_top_k",
    "f1_score",
    "gaussian_mixture_stream",
    "matched_filter",
    "motion_estimate",
    "precision_recall",
    "price_swaption",
    "pricing_accuracy",
    "psnr",
    "result_similarity",
    "route_quality",
    "steering_vector",
    "track_quality",
]
