"""Streaming k-median clustering (the streamcluster substrate).

streamcluster (PARSEC) clusters a stream of points with online k-median
local search.  Loop Perforation speeds it up by evaluating only a sample
of candidate reassignments, degrading clustering quality slightly
(Table 2: up to 5.52x speedup for 0.55 % quality loss).

This module implements a compact but real streaming k-median: points
arrive in chunks, each chunk is clustered by weighted k-median local
search, and chunk medians are re-clustered into the final centers.  The
perforation knob ``evaluation_fraction`` subsamples the candidate-opening
loop — the same loop PARSEC's perforation targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np


def clustering_cost(
    points: np.ndarray, centers: np.ndarray, weights: Optional[np.ndarray] = None
) -> float:
    """Sum of (weighted) distances from each point to its nearest center."""
    if len(centers) == 0:
        raise ValueError("need at least one center")
    deltas = points[:, None, :] - centers[None, :, :]
    dists = np.sqrt((deltas**2).sum(axis=2)).min(axis=1)
    if weights is None:
        return float(dists.sum())
    return float((dists * weights).sum())


def _assign(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    deltas = points[:, None, :] - centers[None, :, :]
    return ((deltas**2).sum(axis=2)).argmin(axis=1)


@dataclass
class KMedianLocalSearch:
    """Weighted k-median by sampled local search (open/close swaps).

    ``evaluation_fraction`` in (0, 1] is the perforation knob: the share
    of candidate centers evaluated per improvement round.
    """

    k: int
    evaluation_fraction: float = 1.0
    max_rounds: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 < self.evaluation_fraction <= 1.0:
            raise ValueError("evaluation_fraction must be in (0, 1]")

    def fit(
        self, points: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Return ``k`` centers chosen from ``points`` (k-median medoids)."""
        n = len(points)
        if n == 0:
            raise ValueError("no points")
        rng = np.random.default_rng(self.seed)
        k = min(self.k, n)
        if weights is None:
            weights = np.ones(n)
        # k-means++-style seeding, then sampled swap improvement.
        center_idx = [int(rng.integers(n))]
        for _ in range(k - 1):
            d2 = np.min(
                ((points[:, None, :] - points[center_idx][None, :, :]) ** 2).sum(
                    axis=2
                ),
                axis=1,
            )
            probs = d2 * weights
            total = probs.sum()
            if total <= 0:
                probs = np.ones(n) / n
            else:
                probs = probs / total
            center_idx.append(int(rng.choice(n, p=probs)))
        centers = list(center_idx)
        best_cost = clustering_cost(points, points[centers], weights)
        for _ in range(self.max_rounds):
            improved = False
            n_candidates = max(1, int(round(n * self.evaluation_fraction)))
            candidates = rng.choice(n, size=n_candidates, replace=False)
            for candidate in candidates:
                if candidate in centers:
                    continue
                for slot in range(len(centers)):
                    trial = centers.copy()
                    trial[slot] = int(candidate)
                    cost = clustering_cost(points, points[trial], weights)
                    if cost < best_cost * (1 - 1e-12):
                        centers = trial
                        best_cost = cost
                        improved = True
                        break
            if not improved:
                break
        return points[centers]


@dataclass
class StreamCluster:
    """Two-level streaming k-median over chunked input.

    Each chunk of the stream is reduced to its local medians (weighted by
    their assignment counts); the weighted medians are then re-clustered
    into the final ``k`` centers — the standard streaming construction
    used by PARSEC's streamcluster.
    """

    k: int
    chunk_size: int = 128
    evaluation_fraction: float = 1.0
    seed: int = 0

    def cluster(self, stream: Iterable[np.ndarray]) -> np.ndarray:
        """Consume ``stream`` (arrays of shape (n, d)) and return centers."""
        medians: List[np.ndarray] = []
        counts: List[float] = []
        chunk_seed = self.seed
        for chunk in stream:
            if len(chunk) == 0:
                continue
            search = KMedianLocalSearch(
                k=self.k,
                evaluation_fraction=self.evaluation_fraction,
                seed=chunk_seed,
            )
            centers = search.fit(chunk)
            assignment = _assign(chunk, centers)
            for center_slot, center in enumerate(centers):
                weight = float((assignment == center_slot).sum())
                if weight > 0:
                    medians.append(center)
                    counts.append(weight)
            chunk_seed += 1
        if not medians:
            raise ValueError("stream was empty")
        median_points = np.asarray(medians)
        weights = np.asarray(counts)
        final = KMedianLocalSearch(
            k=self.k, evaluation_fraction=1.0, seed=self.seed + 10_000
        )
        return final.fit(median_points, weights)


def gaussian_mixture_stream(
    n_chunks: int,
    chunk_size: int,
    k: int,
    dim: int = 4,
    spread: float = 0.15,
    seed: int = 0,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Synthetic stream with known ground-truth centers (for quality eval)."""
    rng = np.random.default_rng(seed)
    true_centers = rng.uniform(-1.0, 1.0, size=(k, dim))
    chunks = []
    for _ in range(n_chunks):
        labels = rng.integers(k, size=chunk_size)
        noise = rng.normal(0.0, spread, size=(chunk_size, dim))
        chunks.append(true_centers[labels] + noise)
    return chunks, true_centers
