"""Simulated-annealing place-and-route (the canneal substrate).

canneal (PARSEC) minimizes the total wire length of a netlist by
simulated annealing over element placements.  Loop Perforation skips a
fraction of the swap evaluations per temperature step, trading longer
final wire length for less work (Table 2: 1.93x speedup, 7.1 % loss).

This module implements the real thing at laptop scale: a synthetic
netlist (elements with random local-biased connectivity) placed on a 2D
grid, annealed with Metropolis-accepted element swaps.  The perforation
knob ``moves_fraction`` scales the number of swaps attempted per
temperature, exactly like the perforated PARSEC loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class Netlist:
    """Synthetic netlist: ``n_elements`` nodes with 2-point nets.

    Connectivity is locality-biased (an element connects mostly to nearby
    ids), which gives annealing real structure to exploit.
    """

    n_elements: int = 64
    nets_per_element: int = 3
    locality: int = 8
    seed: int = 0
    nets: List[Tuple[int, int]] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_elements < 4:
            raise ValueError("netlist too small")
        rng = np.random.default_rng(self.seed)
        nets = []
        for element in range(self.n_elements):
            for _ in range(self.nets_per_element):
                if rng.random() < 0.8:
                    offset = int(rng.integers(1, self.locality + 1))
                    other = (element + offset) % self.n_elements
                else:
                    other = int(rng.integers(self.n_elements))
                if other != element:
                    nets.append((element, other))
        self.nets = nets


class Placement:
    """Assignment of netlist elements to distinct cells of a 2D grid."""

    def __init__(self, netlist: Netlist, seed: int = 0) -> None:
        self.netlist = netlist
        side = int(np.ceil(np.sqrt(netlist.n_elements)))
        self.side = side
        rng = np.random.default_rng(seed)
        cells = rng.permutation(side * side)[: netlist.n_elements]
        self.positions = np.stack([cells // side, cells % side], axis=1).astype(
            float
        )
        self._net_array = np.asarray(netlist.nets)

    def wire_length(self) -> float:
        """Total Manhattan wire length over all nets (canneal's objective)."""
        a = self.positions[self._net_array[:, 0]]
        b = self.positions[self._net_array[:, 1]]
        return float(np.abs(a - b).sum())

    def swap(self, i: int, j: int) -> None:
        self.positions[[i, j]] = self.positions[[j, i]]

    def swap_delta(self, i: int, j: int) -> float:
        """Wire-length change if elements ``i`` and ``j`` swapped cells."""
        before = self._element_cost(i) + self._element_cost(j)
        self.swap(i, j)
        after = self._element_cost(i) + self._element_cost(j)
        self.swap(i, j)
        return after - before

    def _element_cost(self, element: int) -> float:
        mask = (self._net_array[:, 0] == element) | (
            self._net_array[:, 1] == element
        )
        nets = self._net_array[mask]
        a = self.positions[nets[:, 0]]
        b = self.positions[nets[:, 1]]
        return float(np.abs(a - b).sum())


@dataclass
class Annealer:
    """Metropolis simulated annealing with a perforatable move loop.

    ``moves_fraction`` in (0, 1] is the perforation knob: the share of the
    nominal per-temperature moves actually attempted.
    """

    start_temp: float = 2.0
    end_temp: float = 0.05
    cooling: float = 0.85
    moves_per_temp: int = 200
    moves_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.moves_fraction <= 1.0:
            raise ValueError("moves_fraction must be in (0, 1]")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")

    def anneal(self, placement: Placement) -> float:
        """Anneal in place; return the final wire length."""
        rng = np.random.default_rng(self.seed)
        n = placement.netlist.n_elements
        temp = self.start_temp
        moves = max(1, int(round(self.moves_per_temp * self.moves_fraction)))
        while temp > self.end_temp:
            for _ in range(moves):
                i, j = rng.integers(n), rng.integers(n)
                if i == j:
                    continue
                delta = placement.swap_delta(int(i), int(j))
                if delta <= 0 or rng.random() < np.exp(-delta / temp):
                    placement.swap(int(i), int(j))
            temp *= self.cooling
        return placement.wire_length()


def route_quality(wire_length: float, reference_length: float) -> float:
    """Accuracy of a perforated run against the full run's wire length.

    Wire length is a cost (lower is better); the paper reports accuracy
    loss as the relative increase, so quality = reference / achieved,
    capped at 1 when the perforated run happens to do better.
    """
    if wire_length <= 0 or reference_length <= 0:
        raise ValueError("wire lengths must be positive")
    return min(1.0, reference_length / wire_length)
