"""Inverted-index postings compression (delta + varint).

Real search engines (swish++ included) store postings lists compressed:
document ids are sorted, gap-encoded, and the gaps written as
variable-length integers.  This module implements the classic scheme —
useful both as substrate depth for the swish++ application and as a
standalone demonstration that the corpus statistics (Zipf postings)
yield the expected compression ratios.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def varint_encode(value: int) -> bytes:
    """LEB128-style varint: 7 bits per byte, high bit = continuation."""
    if value < 0:
        raise ValueError("varints encode non-negative integers")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def varint_decode(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint from ``data[offset:]``; return (value, new offset)."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_postings(doc_ids: Sequence[int]) -> bytes:
    """Gap-encode a sorted postings list into varint bytes."""
    out = bytearray()
    previous = -1
    for doc_id in doc_ids:
        if doc_id <= previous:
            raise ValueError("doc ids must be strictly increasing")
        gap = doc_id - previous - 1 if previous >= 0 else doc_id
        out.extend(varint_encode(gap))
        previous = doc_id
    return bytes(out)


def decode_postings(data: bytes) -> List[int]:
    """Inverse of :func:`encode_postings`."""
    doc_ids: List[int] = []
    offset = 0
    previous = -1
    while offset < len(data):
        gap, offset = varint_decode(data, offset)
        doc_id = gap + previous + 1 if previous >= 0 else gap
        doc_ids.append(doc_id)
        previous = doc_id
    return doc_ids


class CompressedIndex:
    """A compressed view of an inverted index's document sets.

    Stores each term's sorted document ids delta/varint encoded.
    Lookup decompresses on demand — the classic space/time trade.
    """

    def __init__(self, term_to_doc_ids: dict) -> None:
        self._blobs = {
            term: encode_postings(sorted(set(doc_ids)))
            for term, doc_ids in term_to_doc_ids.items()
        }

    @classmethod
    def from_index(cls, index) -> "CompressedIndex":
        """Build from a :class:`repro.kernels.search.InvertedIndex`."""
        return cls(
            {
                term: [doc_id for doc_id, _ in index.postings(term)]
                for term in index._postings
            }
        )

    def documents_containing(self, term: str) -> List[int]:
        blob = self._blobs.get(term)
        return decode_postings(blob) if blob is not None else []

    def compressed_bytes(self) -> int:
        """Total bytes of all compressed postings."""
        return sum(len(blob) for blob in self._blobs.values())

    def uncompressed_bytes(self, bytes_per_id: int = 4) -> int:
        """Size the same postings would take as fixed-width ids."""
        total_ids = sum(
            len(decode_postings(blob)) for blob in self._blobs.values()
        )
        return total_ids * bytes_per_id

    def compression_ratio(self, bytes_per_id: int = 4) -> float:
        """Uncompressed over compressed size (> 1 means savings)."""
        compressed = self.compressed_bytes()
        if compressed == 0:
            return 1.0
        return self.uncompressed_bytes(bytes_per_id) / compressed
