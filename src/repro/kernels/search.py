"""Inverted-index document search engine (the swish++ substrate).

A small but real search engine: builds a positional inverted index with
TF-IDF weights over a :class:`~repro.kernels.corpus.SyntheticCorpus` and
answers ranked multi-term queries, boolean queries (required/excluded
terms), and exact phrase queries.  The approximation knob is the
paper's: ``max_results`` truncates the ranked list, trading precision and
recall for less per-query work (PowerDial turned exactly this swish++
command-line parameter into a dynamic knob, Sec. 2).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .corpus import SyntheticCorpus


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit."""

    doc_id: int
    score: float


class InvertedIndex:
    """Positional TF-IDF inverted index over a corpus."""

    def __init__(self, corpus: SyntheticCorpus) -> None:
        self.corpus = corpus
        self.n_docs = len(corpus.documents)
        self._postings: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
        self._positions: Dict[str, Dict[int, List[int]]] = defaultdict(dict)
        self._doc_len: Dict[int, int] = {}
        for doc in corpus.documents:
            counts = Counter(doc.tokens)
            self._doc_len[doc.doc_id] = len(doc.tokens)
            for term, tf in counts.items():
                self._postings[term].append((doc.doc_id, tf))
            for position, term in enumerate(doc.tokens):
                self._positions[term].setdefault(doc.doc_id, []).append(
                    position
                )
        self._idf: Dict[str, float] = {
            term: math.log(self.n_docs / len(postings))
            for term, postings in self._postings.items()
        }

    def postings(self, term: str) -> List[Tuple[int, int]]:
        """(doc_id, term frequency) pairs for ``term`` (empty if absent)."""
        return self._postings.get(term, [])

    def positions(self, term: str, doc_id: int) -> List[int]:
        """Token positions of ``term`` within one document."""
        return self._positions.get(term, {}).get(doc_id, [])

    def documents_containing(self, term: str) -> set:
        """Doc ids containing ``term``."""
        return {doc_id for doc_id, _ in self.postings(term)}

    def idf(self, term: str) -> float:
        return self._idf.get(term, 0.0)

    def vocabulary_size(self) -> int:
        return len(self._postings)


class SearchEngine:
    """Ranked multi-term search with a truncation knob.

    ``search(query, max_results)`` scores every document containing any
    query term with TF-IDF and returns up to ``max_results`` hits in
    descending score order.  Full accuracy is ``max_results = None``.
    """

    def __init__(self, corpus: SyntheticCorpus) -> None:
        self.index = InvertedIndex(corpus)

    def search(
        self, query: Sequence[str], max_results: int = 0
    ) -> List[SearchResult]:
        """Answer ``query``; ``max_results <= 0`` means unlimited."""
        scores: Dict[int, float] = defaultdict(float)
        for term in query:
            idf = self.index.idf(term)
            if idf <= 0.0 and not self.index.postings(term):
                continue
            for doc_id, tf in self.index.postings(term):
                length = self.index._doc_len[doc_id]
                scores[doc_id] += (tf / length) * idf
        ranked = sorted(
            scores.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if max_results > 0:
            ranked = ranked[:max_results]
        return [SearchResult(doc_id=d, score=s) for d, s in ranked]

    def search_boolean(
        self,
        required: Sequence[str],
        excluded: Sequence[str] = (),
        max_results: int = 0,
    ) -> List[SearchResult]:
        """AND/NOT query: all ``required`` terms, none of ``excluded``.

        Matching documents are ranked by the TF-IDF score of the
        required terms; the same ``max_results`` knob applies.
        """
        if not required:
            return []
        candidate_sets = [
            self.index.documents_containing(term) for term in required
        ]
        candidates = set.intersection(*candidate_sets)
        for term in excluded:
            candidates -= self.index.documents_containing(term)
        if not candidates:
            return []
        ranked = [
            result
            for result in self.search(required)
            if result.doc_id in candidates
        ]
        if max_results > 0:
            ranked = ranked[:max_results]
        return ranked

    def search_phrase(
        self, phrase: Sequence[str], max_results: int = 0
    ) -> List[SearchResult]:
        """Exact phrase query using the positional index.

        A document matches when the phrase's tokens occur consecutively;
        the score is the phrase occurrence count normalized by document
        length, weighted by the phrase terms' combined IDF.
        """
        if not phrase:
            return []
        candidate_sets = [
            self.index.documents_containing(term) for term in phrase
        ]
        candidates = set.intersection(*candidate_sets)
        combined_idf = sum(self.index.idf(term) for term in phrase)
        results = []
        for doc_id in candidates:
            first_positions = self.index.positions(phrase[0], doc_id)
            occurrences = 0
            for start in first_positions:
                if all(
                    start + offset in set(
                        self.index.positions(term, doc_id)
                    )
                    for offset, term in enumerate(phrase[1:], start=1)
                ):
                    occurrences += 1
            if occurrences:
                length = self.index._doc_len[doc_id]
                results.append(
                    SearchResult(
                        doc_id=doc_id,
                        score=(occurrences / length) * max(combined_idf, 1e-9),
                    )
                )
        results.sort(key=lambda r: (-r.score, r.doc_id))
        if max_results > 0:
            results = results[:max_results]
        return results


def precision_recall(
    returned: Sequence[SearchResult], reference: Sequence[SearchResult]
) -> Tuple[float, float]:
    """Precision and recall of ``returned`` against the full ``reference``.

    The paper reports swish++ accuracy as precision and recall against the
    default configuration's results (Table 2).  Truncating a correctly
    ranked list keeps precision at 1 and reduces recall; both are returned
    so the accuracy metric can combine them (F1).
    """
    if not reference:
        return (1.0, 1.0) if not returned else (0.0, 1.0)
    ref_ids = {r.doc_id for r in reference}
    got_ids = {r.doc_id for r in returned}
    if not got_ids:
        return 0.0, 0.0
    hits = len(ref_ids & got_ids)
    return hits / len(got_ids), hits / len(ref_ids)


def f1_score(
    returned: Sequence[SearchResult], reference: Sequence[SearchResult]
) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    precision, recall = precision_recall(returned, reference)
    if precision + recall <= 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
