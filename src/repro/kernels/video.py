"""Block-based motion-compensated video encoder (the x264 substrate).

x264 under PowerDial exposes encoder parameters (motion-estimation effort,
subpixel refinement, reference frames…) as dynamic knobs: 560
configurations spanning a 4.26x speedup for up to 6.2 % PSNR loss
(Table 2).  This module implements the encoding loop those knobs control:

* synthetic video with controllable scene complexity (Fig. 8's phased
  input concatenates scenes of different complexity),
* block motion estimation with a configurable search radius,
* residual quantization with a configurable quantizer step,
* PSNR of the reconstruction against the source — the paper's accuracy
  metric for x264.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

BLOCK = 8


@dataclass(frozen=True)
class EncoderConfig:
    """Knobs of the encoding loop.

    ``search_radius`` bounds motion estimation (0 disables it), and
    ``quant_step`` scales residual quantization (1 = near lossless).
    Both reduce work and accuracy monotonically, like x264's own
    ``subme``/``me_range``/``qp`` parameters.  ``transform`` selects the
    residual-coding domain: ``"spatial"`` quantizes raw residuals,
    ``"dct"`` quantizes 2-D DCT coefficients with a JPEG-style ramp —
    costlier per pixel but kinder to smooth content at the same step.
    """

    search_radius: int = 4
    quant_step: float = 2.0
    transform: str = "spatial"

    def __post_init__(self) -> None:
        if self.search_radius < 0:
            raise ValueError("search_radius must be >= 0")
        if self.quant_step <= 0:
            raise ValueError("quant_step must be positive")
        if self.transform not in ("spatial", "dct"):
            raise ValueError("transform must be 'spatial' or 'dct'")


@dataclass
class SyntheticVideo:
    """Moving-pattern video; ``complexity`` drives texture and motion.

    Complexity near 0 is an "easy" scene (smooth gradients, slow motion)
    that encodes fast; near 1 is busy texture with fast motion.  Fig. 8's
    middle phase is an easy scene that "naturally encodes about 40 %
    faster".
    """

    width: int = 64
    height: int = 64
    complexity: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width % BLOCK or self.height % BLOCK:
            raise ValueError(f"dimensions must be multiples of {BLOCK}")
        if not 0.0 <= self.complexity <= 1.0:
            raise ValueError("complexity must be in [0, 1]")
        rng = np.random.default_rng(self.seed)
        yy, xx = np.mgrid[0 : self.height, 0 : self.width]
        base = 128 + 60 * np.sin(2 * np.pi * xx / self.width) * np.cos(
            2 * np.pi * yy / self.height
        )
        texture = rng.normal(0, 40, size=(self.height, self.width))
        self._base = base + self.complexity * texture
        self._rng = rng
        self._motion = 1 + int(round(3 * self.complexity))

    def frames(self, n: int) -> Iterator[np.ndarray]:
        """Yield ``n`` frames (float arrays in [0, 255])."""
        frame = self._base.copy()
        for index in range(n):
            shift_x = self._motion if index % 2 == 0 else -self._motion
            frame = np.roll(frame, shift=(1, shift_x), axis=(0, 1))
            jitter = self._rng.normal(
                0, 2 + 6 * self.complexity, size=frame.shape
            )
            yield np.clip(frame + jitter, 0, 255)


def _block_view(frame: np.ndarray) -> Tuple[int, int]:
    return frame.shape[0] // BLOCK, frame.shape[1] // BLOCK


def motion_estimate(
    current: np.ndarray, reference: np.ndarray, radius: int
) -> Tuple[np.ndarray, int]:
    """Best-offset motion vectors per block via windowed full search.

    Returns (motion vectors of shape (by, bx, 2), SAD evaluations done).
    The evaluation count is the work the search-radius knob perforates.
    """
    by, bx = _block_view(current)
    vectors = np.zeros((by, bx, 2), dtype=int)
    evaluations = 0
    if radius == 0:
        return vectors, evaluations
    height, width = current.shape
    for row in range(by):
        for col in range(bx):
            y0, x0 = row * BLOCK, col * BLOCK
            block = current[y0 : y0 + BLOCK, x0 : x0 + BLOCK]
            best = (0, 0)
            best_sad = np.abs(
                block - reference[y0 : y0 + BLOCK, x0 : x0 + BLOCK]
            ).sum()
            for dy in range(-radius, radius + 1):
                for dx in range(-radius, radius + 1):
                    sy, sx = y0 + dy, x0 + dx
                    if sy < 0 or sx < 0 or sy + BLOCK > height or sx + BLOCK > width:
                        continue
                    candidate = reference[sy : sy + BLOCK, sx : sx + BLOCK]
                    sad = np.abs(block - candidate).sum()
                    evaluations += 1
                    if sad < best_sad:
                        best_sad = sad
                        best = (dy, dx)
            vectors[row, col] = best
    return vectors, evaluations


def _dct_quant_ramp(step: float) -> np.ndarray:
    """JPEG-style quantization matrix: coarser for higher frequencies."""
    i, j = np.mgrid[0:BLOCK, 0:BLOCK]
    return step * (1.0 + (i + j) * 0.5)


def _code_residual(residual: np.ndarray, config: EncoderConfig) -> np.ndarray:
    """Quantize/dequantize one residual block in the configured domain."""
    if config.transform == "spatial":
        return np.round(residual / config.quant_step) * config.quant_step
    from scipy.fft import dctn, idctn

    ramp = _dct_quant_ramp(config.quant_step)
    coefficients = dctn(residual, norm="ortho")
    quantized = np.round(coefficients / ramp) * ramp
    return idctn(quantized, norm="ortho")


def encode_frame(
    current: np.ndarray,
    reference: np.ndarray,
    config: EncoderConfig,
) -> Tuple[np.ndarray, int]:
    """Encode ``current`` against ``reference``; return (reconstruction, work).

    Work counts SAD evaluations plus per-pixel coding operations (DCT
    coding costs ~3x spatial per pixel), so cheaper configurations
    genuinely do less.
    """
    vectors, work = motion_estimate(current, reference, config.search_radius)
    by, bx = _block_view(current)
    reconstruction = np.empty_like(current)
    for row in range(by):
        for col in range(bx):
            y0, x0 = row * BLOCK, col * BLOCK
            dy, dx = vectors[row, col]
            predicted = reference[
                y0 + dy : y0 + dy + BLOCK, x0 + dx : x0 + dx + BLOCK
            ]
            residual = current[y0 : y0 + BLOCK, x0 : x0 + BLOCK] - predicted
            reconstruction[y0 : y0 + BLOCK, x0 : x0 + BLOCK] = (
                predicted + _code_residual(residual, config)
            )
    work += current.size * (3 if config.transform == "dct" else 1)
    return np.clip(reconstruction, 0, 255), work


def psnr(original: np.ndarray, reconstruction: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (x264's accuracy metric)."""
    mse = float(((original - reconstruction) ** 2).mean())
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)


def encode_sequence(
    frames: List[np.ndarray], config: EncoderConfig
) -> Tuple[float, int]:
    """Encode a sequence; return (mean PSNR over P-frames, total work)."""
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    reference = frames[0]
    psnrs = []
    total_work = 0
    for current in frames[1:]:
        reconstruction, work = encode_frame(current, reference, config)
        psnrs.append(psnr(current, reconstruction))
        total_work += work
        reference = reconstruction
    return float(np.mean(psnrs)), total_work
