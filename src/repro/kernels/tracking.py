"""Particle-filter body tracking (the bodytrack substrate).

bodytrack (PARSEC) follows a person through a scene with an annealed
particle filter; PowerDial's knobs are the particle count and annealing
layers: 200 configurations, 7.38x speedup, up to 14.4 % track-quality
loss (Table 2).

This module implements the same estimator on a synthetic scene: a target
moves through 2D space under smooth dynamics, noisy observations arrive
each frame, and an annealed particle filter with configurable particles
and layers estimates the trajectory.  Track quality is the paper's
metric: error of the estimated track relative to ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class BodyScene:
    """Synthetic target trajectory with observation noise.

    ``agility`` plays the role of scene difficulty: agile targets need
    more particles to track well (this is what makes the knob a genuine
    accuracy/performance trade).
    """

    n_frames: int = 60
    agility: float = 0.2
    observation_noise: float = 0.35
    seed: int = 0

    def generate(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (truth, observations), each of shape (frames, 2)."""
        rng = np.random.default_rng(self.seed)
        truth = np.zeros((self.n_frames, 2))
        velocity = rng.normal(0, 0.1, size=2)
        for frame in range(1, self.n_frames):
            velocity += rng.normal(0, self.agility, size=2)
            velocity = np.clip(velocity, -1.0, 1.0)
            truth[frame] = truth[frame - 1] + velocity
        observations = truth + rng.normal(
            0, self.observation_noise, size=truth.shape
        )
        return truth, observations


@dataclass
class AnnealedParticleFilter:
    """Particle filter with annealing layers (bodytrack's estimator).

    Parameters
    ----------
    n_particles:
        Particles per layer — the primary work knob.
    n_layers:
        Annealing layers per frame; each layer resamples with a sharper
        likelihood, refining the estimate at proportional cost.
    process_noise:
        Particle diffusion per layer.
    """

    n_particles: int = 128
    n_layers: int = 3
    process_noise: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_particles < 1 or self.n_layers < 1:
            raise ValueError("particles and layers must be >= 1")

    def track(self, observations: np.ndarray) -> Tuple[np.ndarray, int]:
        """Estimate the trajectory; return (estimates, likelihood evals)."""
        rng = np.random.default_rng(self.seed)
        n_frames = len(observations)
        estimates = np.zeros((n_frames, 2))
        particles = np.tile(observations[0], (self.n_particles, 1))
        particles += rng.normal(0, self.process_noise, particles.shape)
        evaluations = 0
        for frame in range(n_frames):
            observation = observations[frame]
            for layer in range(self.n_layers):
                sharpness = 2.0 ** layer
                particles += rng.normal(
                    0, self.process_noise / sharpness, particles.shape
                )
                d2 = ((particles - observation) ** 2).sum(axis=1)
                evaluations += len(particles)
                weights = np.exp(-0.5 * sharpness * d2 / 0.25)
                total = weights.sum()
                if total <= 0 or not np.isfinite(total):
                    weights = np.ones(len(particles)) / len(particles)
                else:
                    weights = weights / total
                idx = rng.choice(
                    len(particles), size=len(particles), p=weights
                )
                particles = particles[idx]
            estimates[frame] = particles.mean(axis=0)
        return estimates, evaluations


def track_quality(estimates: np.ndarray, truth: np.ndarray) -> float:
    """Track quality in [0, 1]: 1 / (1 + mean position error).

    Monotone decreasing in mean error, 1 for a perfect track — a bounded
    stand-in for bodytrack's internal track-quality score.
    """
    if estimates.shape != truth.shape:
        raise ValueError("shape mismatch")
    error = float(np.sqrt(((estimates - truth) ** 2).sum(axis=1)).mean())
    return 1.0 / (1.0 + error)
