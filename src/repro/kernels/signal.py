"""Phased-array radar target detection (the radar substrate).

The paper's radar benchmark [21] is a digital signal-processing pipeline
that detects targets in the returns of a phased-array antenna.  Its
PowerDial knobs trade output signal-to-noise ratio for throughput
(Table 2: 26 configurations, 19.39x speedup, 5.3 % SNR loss).

This module implements the classic pipeline on synthetic returns: pulse
compression by matched filtering, coherent integration across pulses, and
threshold detection.  Two knobs perforate it the way the original's
parameters do: ``decimation`` drops input samples, and
``integration_pulses`` limits how many pulses are coherently integrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class RadarScene:
    """Synthetic returns: targets at known ranges buried in noise."""

    n_pulses: int = 16
    samples_per_pulse: int = 512
    target_ranges: Tuple[int, ...] = (100, 280, 400)
    target_snr_db: float = -8.0
    seed: int = 0

    def generate(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (returns, chirp): returns has shape (pulses, samples)."""
        rng = np.random.default_rng(self.seed)
        chirp_len = 32
        t = np.arange(chirp_len)
        chirp = np.exp(1j * np.pi * (t**2) / chirp_len)
        noise = (
            rng.normal(size=(self.n_pulses, self.samples_per_pulse))
            + 1j * rng.normal(size=(self.n_pulses, self.samples_per_pulse))
        ) / np.sqrt(2.0)
        amplitude = 10.0 ** (self.target_snr_db / 20.0)
        returns = noise.copy()
        for target_range in self.target_ranges:
            if target_range + chirp_len > self.samples_per_pulse:
                raise ValueError("target beyond pulse window")
            phase = rng.uniform(0, 2 * np.pi)
            echo = amplitude * chirp * np.exp(1j * phase)
            returns[:, target_range : target_range + chirp_len] += echo
        return returns, chirp


def matched_filter(returns: np.ndarray, chirp: np.ndarray) -> np.ndarray:
    """Pulse compression via FFT-based correlation with the chirp."""
    n = returns.shape[1]
    chirp_padded = np.zeros(n, dtype=complex)
    chirp_padded[: len(chirp)] = np.conj(chirp[::-1])
    spectrum = np.fft.fft(returns, axis=1) * np.fft.fft(chirp_padded)
    compressed = np.fft.ifft(spectrum, axis=1)
    # Align so a target at range r peaks at index r.
    return np.roll(compressed, -(len(chirp) - 1), axis=1)


def detect_targets(
    returns: np.ndarray,
    chirp: np.ndarray,
    decimation: int = 1,
    integration_pulses: int = 0,
    threshold_sigma: float = 5.0,
) -> Tuple[List[int], float]:
    """Detect targets; return (detected ranges, output SNR in dB).

    Parameters
    ----------
    decimation:
        Keep every ``decimation``-th sample before filtering (knob 1).
    integration_pulses:
        Coherently integrate only the first N pulses; 0 = all (knob 2).
    threshold_sigma:
        Detection threshold in noise standard deviations.
    """
    if decimation < 1:
        raise ValueError("decimation must be >= 1")
    pulses = returns
    if integration_pulses > 0:
        pulses = pulses[:integration_pulses]
    decimated = pulses[:, ::decimation]
    chirp_dec = chirp[::decimation]
    compressed = matched_filter(decimated, chirp_dec)
    integrated = np.abs(compressed.mean(axis=0))

    noise_floor = np.median(integrated)
    spread = np.median(np.abs(integrated - noise_floor)) * 1.4826 + 1e-12
    threshold = noise_floor + threshold_sigma * spread
    peaks = []
    for i in range(1, len(integrated) - 1):
        if (
            integrated[i] > threshold
            and integrated[i] >= integrated[i - 1]
            and integrated[i] >= integrated[i + 1]
        ):
            peaks.append(i * decimation)
    peak_power = integrated.max()
    snr_db = float(20.0 * np.log10(peak_power / (noise_floor + 1e-12)))
    return peaks, snr_db


def cfar_detect(
    integrated: np.ndarray,
    guard_cells: int = 2,
    training_cells: int = 12,
    threshold_factor: float = 4.0,
) -> List[int]:
    """Cell-averaging CFAR detection (constant false-alarm rate).

    For each cell, the noise level is estimated from ``training_cells``
    on each side (excluding ``guard_cells`` adjacent to the cell under
    test); a detection fires when the cell exceeds ``threshold_factor``
    times the local average.  Unlike the global-threshold detector, CFAR
    adapts to range-varying clutter.
    """
    if guard_cells < 0 or training_cells < 1:
        raise ValueError("invalid CFAR window")
    if threshold_factor <= 0:
        raise ValueError("threshold factor must be positive")
    n = len(integrated)
    window = guard_cells + training_cells
    peaks = []
    for cell in range(n):
        lo_train = integrated[
            max(0, cell - window) : max(0, cell - guard_cells)
        ]
        hi_train = integrated[
            min(n, cell + guard_cells + 1) : min(n, cell + window + 1)
        ]
        train = np.concatenate([lo_train, hi_train])
        if len(train) < training_cells // 2:
            continue
        noise = train.mean()
        if integrated[cell] > threshold_factor * noise:
            left = integrated[cell - 1] if cell > 0 else -np.inf
            right = integrated[cell + 1] if cell + 1 < n else -np.inf
            if integrated[cell] >= left and integrated[cell] >= right:
                peaks.append(cell)
    return peaks


@dataclass(frozen=True)
class PhasedArrayScene:
    """Multi-element array returns: targets at (range, bearing) pairs.

    Each of ``n_elements`` antenna elements (half-wavelength spacing)
    receives the same echoes with a per-element phase progression
    determined by the target's bearing — the structure beamforming
    exploits.
    """

    n_elements: int = 8
    n_pulses: int = 8
    samples_per_pulse: int = 512
    targets: Tuple[Tuple[int, float], ...] = ((120, 20.0), (350, -35.0))
    target_snr_db: float = -14.0
    spacing_wavelengths: float = 0.5
    seed: int = 0

    def generate(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (returns, chirp): returns is (elements, pulses, samples)."""
        rng = np.random.default_rng(self.seed)
        chirp_len = 32
        t = np.arange(chirp_len)
        chirp = np.exp(1j * np.pi * (t**2) / chirp_len)
        shape = (self.n_elements, self.n_pulses, self.samples_per_pulse)
        returns = (
            rng.normal(size=shape) + 1j * rng.normal(size=shape)
        ) / np.sqrt(2.0)
        amplitude = 10.0 ** (self.target_snr_db / 20.0)
        for target_range, bearing_deg in self.targets:
            if target_range + chirp_len > self.samples_per_pulse:
                raise ValueError("target beyond pulse window")
            phase0 = rng.uniform(0, 2 * np.pi)
            steering = steering_vector(
                self.n_elements, bearing_deg, self.spacing_wavelengths
            )
            echo = amplitude * chirp * np.exp(1j * phase0)
            for element in range(self.n_elements):
                returns[
                    element, :, target_range : target_range + chirp_len
                ] += echo * steering[element]
        return returns, chirp


def steering_vector(
    n_elements: int, bearing_deg: float, spacing_wavelengths: float = 0.5
) -> np.ndarray:
    """Narrowband uniform-linear-array steering vector for a bearing."""
    if n_elements < 1:
        raise ValueError("need at least one element")
    bearing = np.deg2rad(bearing_deg)
    phase_step = 2.0 * np.pi * spacing_wavelengths * np.sin(bearing)
    return np.exp(1j * phase_step * np.arange(n_elements))


def beamform(
    element_returns: np.ndarray,
    bearing_deg: float,
    spacing_wavelengths: float = 0.5,
) -> np.ndarray:
    """Delay-and-sum beamforming toward ``bearing_deg``.

    Coherently combines the (elements, pulses, samples) cube into a
    (pulses, samples) return with array gain at the steered bearing and
    attenuation elsewhere.
    """
    if element_returns.ndim != 3:
        raise ValueError("expected (elements, pulses, samples)")
    n_elements = element_returns.shape[0]
    weights = np.conj(
        steering_vector(n_elements, bearing_deg, spacing_wavelengths)
    )
    return np.tensordot(weights, element_returns, axes=(0, 0)) / n_elements


def detection_quality(
    detected: List[int],
    true_ranges: Tuple[int, ...],
    tolerance: int = 4,
) -> float:
    """F1 of detected vs. true target ranges within ``tolerance`` samples."""
    if not true_ranges:
        return 1.0 if not detected else 0.0
    matched_truth = set()
    true_positives = 0
    for peak in detected:
        for truth in true_ranges:
            if truth in matched_truth:
                continue
            if abs(peak - truth) <= tolerance:
                matched_truth.add(truth)
                true_positives += 1
                break
    if not detected:
        return 0.0
    precision = true_positives / len(detected)
    recall = true_positives / len(true_ranges)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
