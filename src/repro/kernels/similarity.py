"""Content-based similarity search (the ferret substrate).

ferret (PARSEC) answers image-similarity queries: extract features,
probe an index for candidates, rank candidates by full similarity.  Loop
Perforation skips part of the candidate-ranking loop, returning slightly
less similar results for less work (Table 2: 8 configurations, 1.24x
speedup, up to 18.2 % similarity loss).

This module implements the pipeline over synthetic feature vectors: a
database of clustered "image" descriptors, coarse candidate selection via
cluster probing, and exact ranking of a perforatable fraction of the
candidates.  Accuracy is the paper's: aggregate similarity of the
returned set relative to the exhaustive answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class FeatureDatabase:
    """Clustered synthetic feature vectors with a coarse cluster index."""

    n_items: int = 1000
    dim: int = 16
    n_clusters: int = 20
    spread: float = 0.25
    seed: int = 0
    vectors: np.ndarray = field(init=False)
    centroids: np.ndarray = field(init=False)
    assignments: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_items < self.n_clusters:
            raise ValueError("need at least one item per cluster")
        rng = np.random.default_rng(self.seed)
        self.centroids = rng.normal(0, 1, size=(self.n_clusters, self.dim))
        self.assignments = rng.integers(self.n_clusters, size=self.n_items)
        noise = rng.normal(0, self.spread, size=(self.n_items, self.dim))
        self.vectors = self.centroids[self.assignments] + noise

    def sample_query(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a query vector near a random cluster."""
        cluster = int(rng.integers(self.n_clusters))
        return self.centroids[cluster] + rng.normal(
            0, self.spread, size=self.dim
        )


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine similarity between query ``a`` (dim,) and rows of ``b``."""
    denom = np.linalg.norm(a) * np.linalg.norm(b, axis=1) + 1e-12
    return (b @ a) / denom


@dataclass
class SimilaritySearch:
    """Probe-then-rank similarity search with a perforatable ranking loop.

    ``rank_fraction`` in (0, 1] is the perforation knob: the share of the
    probed candidates that gets exact ranking.  ``n_probes`` selects how
    many nearest clusters are probed (a second, coarser knob).
    """

    database: FeatureDatabase
    n_probes: int = 4
    rank_fraction: float = 1.0
    top_k: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.rank_fraction <= 1.0:
            raise ValueError("rank_fraction must be in (0, 1]")
        if self.n_probes < 1 or self.top_k < 1:
            raise ValueError("probes and top_k must be >= 1")

    def query(self, vector: np.ndarray) -> Tuple[List[int], int]:
        """Return (top-k item ids, exact-similarity evaluations done)."""
        db = self.database
        centroid_sims = cosine_similarity(vector, db.centroids)
        probe_clusters = np.argsort(-centroid_sims)[: self.n_probes]
        candidate_mask = np.isin(db.assignments, probe_clusters)
        candidates = np.flatnonzero(candidate_mask)
        if len(candidates) == 0:
            return [], 0
        keep = max(1, int(round(len(candidates) * self.rank_fraction)))
        # Perforation drops the tail of the candidate list (arbitrary but
        # deterministic order, like skipping loop iterations).
        ranked_candidates = candidates[:keep]
        sims = cosine_similarity(vector, db.vectors[ranked_candidates])
        order = np.argsort(-sims)[: self.top_k]
        return [int(ranked_candidates[i]) for i in order], int(keep)


def exhaustive_top_k(
    database: FeatureDatabase, vector: np.ndarray, k: int
) -> List[int]:
    """Ground-truth top-k by exact similarity over the whole database."""
    sims = cosine_similarity(vector, database.vectors)
    return [int(i) for i in np.argsort(-sims)[:k]]


def result_similarity(
    database: FeatureDatabase,
    vector: np.ndarray,
    returned: List[int],
    reference: List[int],
) -> float:
    """Aggregate similarity of ``returned`` relative to ``reference``.

    The paper's ferret metric is the similarity of the returned results;
    we compute the ratio of summed cosine similarities, so returning
    slightly-worse neighbours loses a little accuracy and returning
    nothing loses all of it.
    """
    if not reference:
        return 1.0
    ref_total = float(
        cosine_similarity(vector, database.vectors[reference]).sum()
    )
    if ref_total <= 0:
        return 1.0
    if not returned:
        return 0.0
    got_total = float(
        cosine_similarity(vector, database.vectors[returned]).sum()
    )
    return max(0.0, min(1.0, got_total / ref_total))
