"""Synthetic document corpus and query stream.

The paper's swish++ experiment (Sec. 2, footnote 1) indexes public-domain
books from Project Gutenberg and issues queries drawn from the corpus
vocabulary "at random following a power law distribution".  Gutenberg
texts are not available offline, so this module synthesizes a corpus with
the same statistical structure: a Zipf-distributed vocabulary, documents
of varying length with topic skew, and a power-law query generator over
the non-stop-word vocabulary — which is what makes search results (and
hence precision/recall of truncated result lists) realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

#: Words this frequent are treated as stop words (excluded from queries,
#: mirroring the paper's setup).
STOP_WORD_COUNT = 25


def _word(i: int) -> str:
    """Deterministic pronounceable token for vocabulary id ``i``."""
    consonants = "bcdfghjklmnpqrstvwz"
    vowels = "aeiou"
    parts = []
    n = i
    while True:
        parts.append(consonants[n % len(consonants)])
        parts.append(vowels[(n // len(consonants)) % len(vowels)])
        n //= len(consonants) * len(vowels)
        if n == 0:
            break
    return "".join(parts) + str(i % 10)


@dataclass(frozen=True)
class Document:
    """One synthetic document: id, topic, and token sequence."""

    doc_id: int
    topic: int
    tokens: Tuple[str, ...]


@dataclass
class SyntheticCorpus:
    """Zipf-vocabulary, topic-skewed document collection.

    Parameters
    ----------
    n_docs:
        Number of documents.
    vocabulary_size:
        Distinct words (including stop words).
    n_topics:
        Topical clusters; a document draws a boosted share of its words
        from its topic's slice of the vocabulary, so different documents
        have genuinely different relevance for a query.
    mean_doc_len / doc_len_spread:
        Document length distribution (log-normal-ish).
    zipf_exponent:
        Word-frequency skew; ~1.1 matches natural language.
    seed:
        RNG seed; the corpus is fully deterministic given the seed.
    """

    n_docs: int = 200
    vocabulary_size: int = 2000
    n_topics: int = 8
    mean_doc_len: int = 400
    doc_len_spread: float = 0.35
    zipf_exponent: float = 1.1
    seed: int = 42
    documents: List[Document] = field(init=False)
    vocabulary: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_docs <= 0 or self.vocabulary_size <= STOP_WORD_COUNT:
            raise ValueError("corpus too small")
        rng = np.random.default_rng(self.seed)
        self.vocabulary = tuple(_word(i) for i in range(self.vocabulary_size))
        base_weights = 1.0 / np.arange(1, self.vocabulary_size + 1) ** (
            self.zipf_exponent
        )
        topic_size = self.vocabulary_size // self.n_topics
        docs = []
        for doc_id in range(self.n_docs):
            topic = int(rng.integers(self.n_topics))
            weights = base_weights.copy()
            lo = topic * topic_size
            weights[lo : lo + topic_size] *= 8.0
            weights /= weights.sum()
            length = max(
                20,
                int(
                    rng.lognormal(
                        np.log(self.mean_doc_len), self.doc_len_spread
                    )
                ),
            )
            ids = rng.choice(self.vocabulary_size, size=length, p=weights)
            tokens = tuple(self.vocabulary[i] for i in ids)
            docs.append(Document(doc_id=doc_id, topic=topic, tokens=tokens))
        self.documents = docs

    @property
    def stop_words(self) -> Tuple[str, ...]:
        """The most frequent words, excluded from query generation."""
        return self.vocabulary[:STOP_WORD_COUNT]


@dataclass
class QueryGenerator:
    """Power-law query stream over a corpus vocabulary (paper footnote 1).

    Queries select 1–``max_terms`` non-stop words with probability
    proportional to ``rank ** -exponent`` over the queryable vocabulary.
    """

    corpus: SyntheticCorpus
    max_terms: int = 3
    exponent: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        queryable = self.corpus.vocabulary[STOP_WORD_COUNT:]
        self._words = queryable
        weights = 1.0 / np.arange(1, len(queryable) + 1) ** self.exponent
        self._weights = weights / weights.sum()

    def next_query(self) -> List[str]:
        """Draw one query (a list of distinct terms)."""
        n_terms = int(self._rng.integers(1, self.max_terms + 1))
        ids = self._rng.choice(
            len(self._words), size=n_terms, replace=False, p=self._weights
        )
        return [self._words[i] for i in ids]

    def batch(self, n: int) -> List[List[str]]:
        """Draw ``n`` queries."""
        return [self.next_query() for _ in range(n)]
