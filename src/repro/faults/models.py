"""Seeded, composable fault models for the JouleGuard loop and service.

JouleGuard's guarantee (Eqns. 7–11) is a claim about behaviour *under
uncertainty*: noisy sensors, model error, workload phase changes.  The
happy-path simulator only exercises mild Gaussian noise; this module
supplies the unhappy paths as first-class, deterministic objects:

* **sensor faults** — dropout (a reading is simply unavailable),
  stuck-at (the register repeats a frozen value), and spikes (a reading
  is off by a large multiplicative factor);
* **measurement-channel faults** — stale delivery (the heartbeat the
  controller sees is an older one, as happens when telemetry queues
  back up);
* **budget revisions** — the global pool is re-negotiated mid-run (an
  operator cuts the datacenter budget, a battery reports less charge
  than forecast);
* **network faults** — requests or responses between client and daemon
  are dropped or delayed;
* **session crashes** — the daemon dies mid-session and restarts from
  its snapshot store.

Every model draws from its own :class:`numpy.random.SeedSequence`
spawn of the plan's seed, so a :class:`FaultPlan` is *replayable*: the
same plan and seed produce the same fault schedule, which is what lets
the chaos harness (:mod:`repro.faults.harness`) assert
decision-for-decision determinism under faults.

Fault models are pure wrappers: they perturb what flows *between*
components (sensor readings, measurements, requests) and never reach
into controller or accounting logic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.types import Measurement
from ..hw.sensors import PowerSensorLike, SensorReadError

__all__ = [
    "BudgetRevision",
    "ChannelFaults",
    "CrashFaults",
    "FaultPlan",
    "FaultyPowerSensor",
    "MeasurementChannel",
    "NetworkFaults",
    "RequestChaos",
    "SensorFaults",
    "shipped_plans",
]


def _probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1]")


def _scaled_prob(prob: float, severity: float) -> float:
    return min(1.0, prob * severity)


@dataclass(frozen=True)
class SensorFaults:
    """Faults applied to individual power-sensor readings.

    ``dropout_prob`` readings are unavailable (:class:`SensorReadError`),
    ``stuck_prob`` readings begin a window of ``stuck_hold`` readings
    repeating the last good value, and ``spike_prob`` readings are
    multiplied by ``spike_magnitude``.
    """

    dropout_prob: float = 0.0
    stuck_prob: float = 0.0
    stuck_hold: int = 5
    spike_prob: float = 0.0
    spike_magnitude: float = 5.0

    def __post_init__(self) -> None:
        _probability(self.dropout_prob, "dropout_prob")
        _probability(self.stuck_prob, "stuck_prob")
        _probability(self.spike_prob, "spike_prob")
        if self.stuck_hold < 1:
            raise ValueError("stuck_hold must be >= 1")
        if self.spike_magnitude <= 0:
            raise ValueError("spike_magnitude must be positive")

    def scaled(self, severity: float) -> "SensorFaults":
        return replace(
            self,
            dropout_prob=_scaled_prob(self.dropout_prob, severity),
            stuck_prob=_scaled_prob(self.stuck_prob, severity),
            spike_prob=_scaled_prob(self.spike_prob, severity),
        )


@dataclass(frozen=True)
class ChannelFaults:
    """Faults on the measurement channel between platform and runtime.

    With probability ``stale_prob`` the controller receives an *older*
    measurement instead of the current one; ``max_age`` bounds how far
    back the channel may reach (a bounded telemetry queue).
    """

    stale_prob: float = 0.0
    max_age: int = 3

    def __post_init__(self) -> None:
        _probability(self.stale_prob, "stale_prob")
        if self.max_age < 1:
            raise ValueError("max_age must be >= 1")

    def scaled(self, severity: float) -> "ChannelFaults":
        return replace(
            self, stale_prob=_scaled_prob(self.stale_prob, severity)
        )


@dataclass(frozen=True)
class BudgetRevision:
    """A mid-run revision of the energy budget.

    At iteration ``at_step`` the remaining budget is rescaled by
    ``scale`` (0.5 halves what is left, 1.5 grants half again more).
    The harness applies it through the accountant's transfer interface,
    which refuses to revoke already-spent joules — a revision can only
    reclaim energy that still exists.
    """

    at_step: int
    scale: float

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError("at_step must be non-negative")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def scaled(self, severity: float) -> "BudgetRevision":
        # Severity interpolates the revision toward the identity:
        # severity 0 leaves the budget alone, 1 applies the full cut.
        return replace(
            self, scale=1.0 + (self.scale - 1.0) * min(1.0, severity)
        )


@dataclass(frozen=True)
class NetworkFaults:
    """Faults on the client↔daemon transport.

    ``drop_request_prob`` requests are lost before the daemon processes
    them; ``drop_response_prob`` responses are lost *after* processing
    (the dangerous case — only idempotent request ids make a retry
    safe).  ``delay_prob``/``delay_s`` add slow-network jitter.
    """

    drop_request_prob: float = 0.0
    drop_response_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        _probability(self.drop_request_prob, "drop_request_prob")
        _probability(self.drop_response_prob, "drop_response_prob")
        _probability(self.delay_prob, "delay_prob")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    def scaled(self, severity: float) -> "NetworkFaults":
        return replace(
            self,
            drop_request_prob=_scaled_prob(
                self.drop_request_prob, severity
            ),
            drop_response_prob=_scaled_prob(
                self.drop_response_prob, severity
            ),
            delay_prob=_scaled_prob(self.delay_prob, severity),
        )


@dataclass(frozen=True)
class CrashFaults:
    """The daemon crashes after serving ``at_step`` steps of a session
    and restarts from its snapshot store."""

    at_step: int

    def __post_init__(self) -> None:
        if self.at_step < 1:
            raise ValueError("at_step must be >= 1")

    def scaled(self, severity: float) -> "CrashFaults":
        return self


@dataclass(frozen=True)
class FaultPlan:
    """One named, seeded, composable fault schedule.

    A plan combines any subset of the fault models; components left as
    ``None`` inject nothing.  ``seed`` pins every random draw the plan
    will ever make: the sensor, channel, and network streams each get
    their own :class:`numpy.random.SeedSequence` spawn so composing
    faults does not perturb each other's schedules.
    """

    name: str
    seed: int = 0
    sensor: Optional[SensorFaults] = None
    channel: Optional[ChannelFaults] = None
    budget: Optional[BudgetRevision] = None
    network: Optional[NetworkFaults] = None
    crash: Optional[CrashFaults] = None

    #: Fixed spawn indices: composing/removing one fault never shifts
    #: another fault's RNG stream.
    _STREAMS = {"sensor": 0, "channel": 1, "network": 2}

    def scaled(self, severity: float) -> "FaultPlan":
        """The same plan with fault intensities scaled by ``severity``.

        Severity 0 is fault-free, 1 is the plan as configured; values
        above 1 stress harder (probabilities saturate at 1).
        """
        if severity < 0:
            raise ValueError("severity must be non-negative")
        return replace(
            self,
            sensor=self.sensor.scaled(severity) if self.sensor else None,
            channel=(
                self.channel.scaled(severity) if self.channel else None
            ),
            budget=self.budget.scaled(severity) if self.budget else None,
            network=(
                self.network.scaled(severity) if self.network else None
            ),
        )

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same fault schedule shape under a different seed."""
        return replace(self, seed=seed)

    def _rng(self, stream: str) -> np.random.Generator:
        children = np.random.SeedSequence(self.seed).spawn(
            len(self._STREAMS)
        )
        return np.random.default_rng(children[self._STREAMS[stream]])

    # -- component factories ---------------------------------------------------
    def wrap_sensor(self, inner: PowerSensorLike) -> PowerSensorLike:
        """Wrap a power sensor with this plan's sensor faults (if any)."""
        if self.sensor is None:
            return inner
        return FaultyPowerSensor(
            inner=inner, faults=self.sensor, rng=self._rng("sensor")
        )

    def measurement_channel(self) -> "MeasurementChannel":
        """A measurement channel applying this plan's staleness faults."""
        return MeasurementChannel(
            faults=self.channel, rng=self._rng("channel")
        )

    def request_chaos(self) -> Optional["RequestChaos"]:
        """Transport chaos for the daemon, or None without network faults."""
        if self.network is None:
            return None
        return RequestChaos(
            faults=self.network, rng=self._rng("network")
        )


@dataclass
class FaultyPowerSensor:
    """A power sensor whose readings fail the way real registers fail.

    Wraps any object with ``read(true_power_w) -> float``.  Dropout
    raises :class:`~repro.hw.sensors.SensorReadError`; stuck-at windows
    repeat the last good value for ``stuck_hold`` readings; spikes
    multiply one reading by ``spike_magnitude``.  All draws come from
    the injected seeded generator, so a faulted run replays exactly.
    """

    inner: PowerSensorLike
    faults: SensorFaults
    rng: np.random.Generator
    reads: int = 0
    dropouts: int = 0
    spikes: int = 0
    stuck_windows: int = 0
    _stuck_left: int = 0
    _stuck_value: Optional[float] = None

    def read(self, true_package_power_w: float) -> float:
        self.reads += 1
        # Draw every stream decision each read so the schedule does not
        # depend on which fault fired previously (replayable schedule).
        draw_drop = float(self.rng.random())
        draw_stuck = float(self.rng.random())
        draw_spike = float(self.rng.random())
        if self._stuck_left > 0 and self._stuck_value is not None:
            self._stuck_left -= 1
            return self._stuck_value
        if draw_drop < self.faults.dropout_prob:
            self.dropouts += 1
            raise SensorReadError("sensor reading dropped (injected)")
        value = self.inner.read(true_package_power_w)
        if draw_stuck < self.faults.stuck_prob:
            self.stuck_windows += 1
            self._stuck_left = self.faults.stuck_hold
            self._stuck_value = value
        if draw_spike < self.faults.spike_prob:
            self.spikes += 1
            value *= self.faults.spike_magnitude
        return value


@dataclass
class MeasurementChannel:
    """Delivers measurements to the controller, possibly stale.

    With probability ``stale_prob`` the channel delivers the oldest
    queued measurement instead of the newest — the bounded-queue model
    of telemetry backpressure.  ``faults=None`` is a transparent wire.
    """

    faults: Optional[ChannelFaults] = None
    rng: Optional[np.random.Generator] = None
    stale_deliveries: int = 0
    _queue: Deque[Measurement] = field(default_factory=deque)

    def transmit(self, measurement: Measurement) -> Measurement:
        """Push the newest measurement; return the one delivered."""
        if self.faults is None or self.rng is None:
            return measurement
        self._queue.append(measurement)
        while len(self._queue) > self.faults.max_age:
            self._queue.popleft()
        if (
            len(self._queue) > 1
            and float(self.rng.random()) < self.faults.stale_prob
        ):
            self.stale_deliveries += 1
            return self._queue[0]
        return self._queue[-1]


@dataclass
class RequestChaos:
    """Seeded per-request transport decisions for the daemon.

    The server consults :meth:`on_request` once per request line:
    ``"deliver"`` serves normally, ``"drop_request"`` discards the
    request unprocessed, ``"drop_response"`` processes the request but
    loses the response (the connection is closed) — the case that makes
    retries unsafe without idempotent request ids.
    """

    faults: NetworkFaults
    rng: np.random.Generator
    delivered: int = 0
    dropped_requests: int = 0
    dropped_responses: int = 0
    delays: int = 0

    def on_request(self) -> str:
        draw = float(self.rng.random())
        if draw < self.faults.drop_request_prob:
            self.dropped_requests += 1
            return "drop_request"
        if (
            draw
            < self.faults.drop_request_prob
            + self.faults.drop_response_prob
        ):
            self.dropped_responses += 1
            return "drop_response"
        self.delivered += 1
        return "deliver"

    def delay_for(self) -> float:
        """Seconds of injected latency for this request (often 0)."""
        if self.faults.delay_s <= 0 or self.faults.delay_prob <= 0:
            return 0.0
        if float(self.rng.random()) < self.faults.delay_prob:
            self.delays += 1
            return self.faults.delay_s
        return 0.0

    def counters(self) -> Dict[str, int]:
        return {
            "delivered": self.delivered,
            "dropped_requests": self.dropped_requests,
            "dropped_responses": self.dropped_responses,
            "delays": self.delays,
        }


def shipped_plans(seed: int = 0) -> Dict[str, FaultPlan]:
    """The named fault plans the chaos suite and CI exercise.

    Each stresses one failure mode at a realistic intensity; compose
    your own :class:`FaultPlan` for combined scenarios (see
    ``docs/faults.md``).
    """
    plans: List[FaultPlan] = [
        FaultPlan(
            name="sensor-dropout",
            seed=seed,
            sensor=SensorFaults(dropout_prob=0.15),
        ),
        FaultPlan(
            name="sensor-stuck",
            seed=seed,
            sensor=SensorFaults(stuck_prob=0.05, stuck_hold=5),
        ),
        FaultPlan(
            name="sensor-spike",
            seed=seed,
            sensor=SensorFaults(spike_prob=0.05, spike_magnitude=4.0),
        ),
        FaultPlan(
            name="stale-measurements",
            seed=seed,
            channel=ChannelFaults(stale_prob=0.2, max_age=3),
        ),
        FaultPlan(
            name="budget-cut",
            seed=seed,
            budget=BudgetRevision(at_step=40, scale=0.7),
        ),
        FaultPlan(
            name="network-drop",
            seed=seed,
            network=NetworkFaults(
                drop_request_prob=0.05, drop_response_prob=0.05
            ),
        ),
        FaultPlan(
            name="crash-restart",
            seed=seed,
            crash=CrashFaults(at_step=10),
        ),
    ]
    return {plan.name: plan for plan in plans}
