"""Deterministic chaos harness: run fault plans, assert invariants.

The harness closes the loop the way
:func:`repro.runtime.harness.run_jouleguard` does, but with a
:class:`~repro.faults.models.FaultPlan` injected at every seam: the
power sensor is wrapped (fault injection + hold-over), measurements
flow through a possibly-stale channel, the budget may be revised
mid-run, and — for network/crash plans — the whole loop runs against a
real daemon with transport chaos in front of the dispatcher.

What makes this *chaos testing* rather than fuzzing is that every run
is seeded and replayable, so the harness can assert paper-level
invariants instead of merely "it did not crash":

1. **No silent overdraft** — accounted spend never exceeds the
   effective budget (beyond tolerance) unless the runtime *reported*
   the goal infeasible (Sec. 3.4.3's escape hatch).
2. **Pole stability** — every decision's pole stays inside ``[0, 1)``,
   the stability region of Eqn. 9's closed loop.
3. **Monotone degradation** — mean accuracy does not *improve* as
   fault severity rises (within tolerance): faults may cost accuracy,
   never conjure it.
4. **Determinism** — re-running a faulted plan under the same seed
   reproduces the decision trace exactly, decision for decision.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps import build_application
from ..core.bandit import SystemEnergyOptimizer
from ..core.budget import EnergyGoal
from ..core.jouleguard import JouleGuardRuntime
from ..core.types import Measurement
from ..hw import get_machine
from ..hw.sensors import (
    HoldoverPowerSensor,
    OnChipPowerSensor,
    SensorLostError,
)
from ..hw.simulator import NoiseModel, PlatformSimulator
from ..runtime.harness import prior_shapes
from ..runtime.oracle import default_energy_per_work
from .models import FaultPlan, shipped_plans

__all__ = [
    "ChaosInvariantError",
    "ChaosRunResult",
    "decision_fingerprint",
    "run_chaos",
    "run_chaos_suite",
    "run_enforcement_chaos",
    "run_restart_scenario",
    "run_service_chaos",
    "verify_plan",
]

#: Relative slack on the budget invariant (estimates are noisy).
BUDGET_TOLERANCE = 0.05

#: Absolute slack on the monotone-degradation invariant.
ACCURACY_TOLERANCE = 0.02


class ChaosInvariantError(AssertionError):
    """A fault plan violated one of the harness's invariants."""


@dataclass
class ChaosRunResult:
    """Everything one faulted closed-loop run produced."""

    plan_name: str
    severity: float
    steps: int
    effective_budget_j: float
    spent_j: float
    infeasible: bool
    mean_accuracy: float
    min_pole: float
    max_pole: float
    sensor_lost: bool
    fingerprint: Tuple[Tuple[int, int, float, float], ...]
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def overdrawn(self) -> bool:
        """Spend beyond tolerance without an infeasibility report."""
        limit = self.effective_budget_j * (1.0 + BUDGET_TOLERANCE)
        return self.spent_j > limit and not self.infeasible

    def as_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan_name,
            "severity": self.severity,
            "steps": self.steps,
            "effective_budget_j": self.effective_budget_j,
            "spent_j": self.spent_j,
            "infeasible": self.infeasible,
            "mean_accuracy": self.mean_accuracy,
            "min_pole": self.min_pole,
            "max_pole": self.max_pole,
            "sensor_lost": self.sensor_lost,
            "overdrawn": self.overdrawn,
            "counters": dict(self.counters),
        }


def decision_fingerprint(decisions) -> Tuple[Tuple[int, int, float, float], ...]:
    """A hashable digest of a decision trace for replay comparison."""
    return tuple(
        (
            decision.system_index,
            getattr(decision.app_config, "index", -1),
            round(decision.speedup_setpoint, 9),
            round(decision.pole, 9),
        )
        for decision in decisions
    )


def _apply_budget_revision(
    runtime: JouleGuardRuntime, scale: float
) -> float:
    """Rescale the *remaining* budget; return the applied delta (J).

    Routed through the accountant's transfer interface, which refuses
    to revoke already-spent joules — the clamp below keeps a cut inside
    what still exists.
    """
    accountant = runtime.accountant
    remaining_j = (
        accountant.effective_budget_j - accountant.energy_used_j
    )
    delta_j = remaining_j * (scale - 1.0)
    if delta_j < 0.0:
        delta_j = max(delta_j, -max(0.0, remaining_j))
    # Baselined JGF301: the injected fault *is* the one-sided entry —
    # the chaos log records the returned delta for replay.
    if delta_j != 0.0:  # jglint: disable=JG004
        accountant.adjust_budget(delta_j)
    return delta_j


def _crash_and_restore(
    runtime: JouleGuardRuntime, seed: int
) -> Optional[JouleGuardRuntime]:
    """Simulate a crash/restart: new runtime, learned state restored.

    Run-local state (accounting, decision trace) dies with the crash;
    the new runtime gets a goal covering only the remaining work and
    budget, exactly what a daemon grants a re-opened session.  Returns
    ``None`` when there is nothing left to run.
    """
    accountant = runtime.accountant
    remaining_work = accountant.remaining_work
    if remaining_work <= 0.0:
        return None
    learned = runtime.snapshot_learned()
    remaining_j = max(
        accountant.effective_budget_j - accountant.energy_used_j, 1e-9
    )
    restarted = JouleGuardRuntime(
        seo=type(runtime.seo).restore(learned["seo"], seed=seed),
        table=runtime.table,
        goal=EnergyGoal(
            total_work=remaining_work, budget_j=remaining_j
        ),
    )
    restarted.restore_learned(learned, seed=seed)
    return restarted


def run_chaos(
    plan: FaultPlan,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
    n_iterations: int = 120,
    seed: int = 0,
    severity: float = 1.0,
    max_consecutive_holds: int = 25,
) -> ChaosRunResult:
    """Run one faulted closed loop; return its measured outcome.

    Seeding matches :func:`repro.runtime.harness.run_jouleguard`
    (simulator ``seed``, SEO ``seed + 1``), with the plan's own streams
    layered on top, so the run is replayable end to end.
    """
    if n_iterations < 1:
        raise ValueError("need at least one iteration")
    scaled = plan.scaled(severity)
    machine_model = get_machine(machine)
    application = build_application(app)
    if not application.runs_on(machine_model.name):
        raise ValueError(f"{app} does not run on {machine}")

    base_sensor = OnChipPowerSensor(
        fixed_offset_w=machine_model.external_w,
        rng=np.random.default_rng(seed + 1),
    )
    sensor = HoldoverPowerSensor(
        inner=scaled.wrap_sensor(base_sensor),
        max_consecutive_holds=max_consecutive_holds,
    )
    simulator = PlatformSimulator(
        machine_model,
        application.resource_profile,
        noise=NoiseModel(),
        seed=seed,
        sensor=sensor,
    )
    channel = scaled.measurement_channel()

    work_per_iteration = application.work_per_iteration
    total_work = n_iterations * work_per_iteration
    default_epw = default_energy_per_work(machine_model, application)
    goal = EnergyGoal.from_factor(
        factor,
        total_work=total_work,
        default_energy_per_work=default_epw,
    )
    rate_shape, power_shape = prior_shapes(machine_model)
    runtime = JouleGuardRuntime(
        seo=SystemEnergyOptimizer(
            rate_shape, power_shape, seed=seed + 1
        ),
        table=application.table,
        goal=goal,
    )

    space = machine_model.space
    accuracies: List[float] = []
    poles: List[float] = []
    fingerprints: List[Any] = []
    sensor_lost = False
    spent_j = 0.0
    steps = 0
    infeasible = False
    for step in range(n_iterations):
        if (
            scaled.budget is not None
            and step == scaled.budget.at_step
        ):
            _apply_budget_revision(runtime, scaled.budget.scale)
        if (
            scaled.crash is not None
            and step == scaled.crash.at_step
        ):
            infeasible = (
                infeasible or runtime.goal_reported_infeasible
            )
            spent_j += runtime.accountant.energy_used_j
            restarted = _crash_and_restore(runtime, seed=seed + 1)
            if restarted is None:
                break
            runtime = restarted
        decision = runtime.current_decision
        try:
            result = simulator.run_iteration(
                config=space[decision.system_index],
                work=work_per_iteration,
                app_speedup=decision.app_config.speedup,
                app_power_factor=getattr(
                    decision.app_config, "power_factor", 1.0
                ),
            )
        except SensorLostError:
            # Persistent sensor loss: pin the known-safe fallback and
            # stop steering — the service layer's degradation path.
            runtime.pin_safe_fallback()
            sensor_lost = True
            break
        accuracies.append(decision.app_config.accuracy)
        measurement = channel.transmit(
            Measurement(
                work=result.work,
                energy_j=result.measured_power_w * result.time_s,
                rate=result.measured_rate,
                power_w=result.measured_power_w,
            )
        )
        next_decision = runtime.step(measurement)
        poles.append(next_decision.pole)
        fingerprints.append(next_decision)
        steps += 1

    spent_j += runtime.accountant.energy_used_j
    counters: Dict[str, int] = {"holds": sensor.holds}
    wrapped = sensor.inner
    for attr in ("dropouts", "spikes", "stuck_windows", "reads"):
        if hasattr(wrapped, attr):
            counters[attr] = getattr(wrapped, attr)
    counters["stale_deliveries"] = channel.stale_deliveries
    return ChaosRunResult(
        plan_name=plan.name,
        severity=severity,
        steps=steps,
        effective_budget_j=runtime.accountant.effective_budget_j,
        spent_j=spent_j,
        infeasible=(
            infeasible or runtime.goal_reported_infeasible
        ),
        mean_accuracy=(
            float(np.mean(accuracies)) if accuracies else 0.0
        ),
        min_pole=min(poles) if poles else 0.0,
        max_pole=max(poles) if poles else 0.0,
        sensor_lost=sensor_lost,
        fingerprint=decision_fingerprint(fingerprints),
        counters=counters,
    )


def verify_plan(
    plan: FaultPlan,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
    n_iterations: int = 120,
    seed: int = 0,
    severities: Sequence[float] = (0.0, 0.5, 1.0),
) -> Dict[str, Any]:
    """Run one plan across severities and check every invariant.

    Returns a report dict with ``passed`` and a (possibly empty)
    ``violations`` list; raises nothing — callers decide whether a
    violation is fatal (the chaos tests raise, the CLI reports).
    """
    violations: List[str] = []
    runs: List[ChaosRunResult] = []
    for severity in severities:
        result = run_chaos(
            plan,
            machine=machine,
            app=app,
            factor=factor,
            n_iterations=n_iterations,
            seed=seed,
            severity=severity,
        )
        runs.append(result)
        if result.overdrawn:
            violations.append(
                f"severity {severity:g}: spent {result.spent_j:.3f} J "
                f"of {result.effective_budget_j:.3f} J without "
                "reporting infeasibility"
            )
        if not 0.0 <= result.min_pole <= result.max_pole < 1.0:
            violations.append(
                f"severity {severity:g}: pole left [0, 1) "
                f"(range [{result.min_pole:.6f}, "
                f"{result.max_pole:.6f}])"
            )
    # Monotone degradation: accuracy must not improve with severity.
    for lighter, heavier in zip(runs, runs[1:]):
        if (
            heavier.mean_accuracy
            > lighter.mean_accuracy + ACCURACY_TOLERANCE
        ):
            violations.append(
                "accuracy improved under heavier faults: "
                f"{lighter.mean_accuracy:.4f} at severity "
                f"{lighter.severity:g} vs {heavier.mean_accuracy:.4f} "
                f"at severity {heavier.severity:g}"
            )
    # Determinism: the full-severity run replays decision for decision.
    replay = run_chaos(
        plan,
        machine=machine,
        app=app,
        factor=factor,
        n_iterations=n_iterations,
        seed=seed,
        severity=severities[-1],
    )
    if replay.fingerprint != runs[-1].fingerprint:
        violations.append(
            "replay diverged: same plan and seed produced a "
            "different decision trace"
        )
    return {
        "plan": plan.name,
        "passed": not violations,
        "violations": violations,
        "runs": [result.as_dict() for result in runs],
    }


# -- service-level chaos -------------------------------------------------------
def run_service_chaos(
    plan: FaultPlan,
    n_sessions: int = 3,
    steps: int = 25,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
    seed: int = 0,
    global_budget_j: float = 1e7,
) -> Dict[str, Any]:
    """Drive a multi-session workload against a chaotic daemon.

    The daemon gets the plan's :class:`RequestChaos` in front of its
    dispatcher; the client retries with backoff and idempotent request
    ids.  Returns a report including the pool-level budget invariants
    (the service-side analogue of "no silent overdraft").
    """
    from ..service.client import (
        RetryPolicy,
        ServiceClient,
        drive_synthetic_session,
    )
    from ..service.server import ServerThread
    from ..service.sessions import SessionManager

    chaos = plan.request_chaos()
    manager = SessionManager(
        global_budget_j=global_budget_j, rebalance_period=10
    )
    reports: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory() as tmp:
        sock = f"{tmp}/chaos.sock"
        with ServerThread(manager, unix_path=sock, chaos=chaos):
            client = ServiceClient(
                unix_path=sock,
                retry=RetryPolicy(
                    max_attempts=8, base_delay_s=0.01, seed=seed
                ),
            )
            try:
                for index in range(n_sessions):
                    run = drive_synthetic_session(
                        client,
                        machine=machine,
                        app=app,
                        factor=factor,
                        steps=steps,
                        seed=seed + index,
                        warm_start=False,
                        client_name=f"chaos-{index}",
                    )
                    reports.append(run.report)
            finally:
                retries = client.retries
                reconnects = client.reconnects
                client.close_connection()
    stats = manager.stats()
    pool_ok = (
        stats["available_budget_j"] >= -1e-6
        and stats["committed_budget_j"] - 1e-6
        <= stats["global_budget_j"]
    )
    return {
        "plan": plan.name,
        "sessions": len(reports),
        "reports": reports,
        "retries": retries,
        "reconnects": reconnects,
        "chaos": chaos.counters() if chaos is not None else {},
        "pool_ok": pool_ok,
        "passed": pool_ok and len(reports) == n_sessions,
        "stats": stats,
    }


def run_restart_scenario(
    plan: FaultPlan,
    steps_before: Optional[int] = None,
    steps_after: int = 30,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
    seed: int = 0,
    global_budget_j: float = 1e7,
    store_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Kill the daemon mid-session; restart it from its snapshot store.

    Phase one steps a session ``steps_before`` times (the plan's crash
    step by default), snapshots, then the daemon "crashes" (thread
    stopped — sessions die, learned state survives on disk).  Phase two
    starts a fresh daemon over the same store directory and re-opens
    the session warm.  A cold control run measures the convergence bar
    the restarted session must beat (or match).
    """
    from ..service.client import (
        RetryPolicy,
        ServiceClient,
        drive_synthetic_session,
    )
    from ..service.server import ServerThread
    from ..service.sessions import SessionManager
    from ..service.state import SnapshotStore

    if steps_before is None:
        steps_before = (
            plan.crash.at_step if plan.crash is not None else 10
        )
    with tempfile.TemporaryDirectory() as tmp:
        directory = store_dir if store_dir is not None else f"{tmp}/store"
        sock = f"{tmp}/restart.sock"
        retry = RetryPolicy(max_attempts=4, base_delay_s=0.01, seed=seed)

        manager1 = SessionManager(
            global_budget_j=global_budget_j,
            store=SnapshotStore(directory=directory),
        )
        with ServerThread(manager1, unix_path=sock):
            with ServiceClient(unix_path=sock, retry=retry) as client:
                first = drive_synthetic_session(
                    client,
                    machine=machine,
                    app=app,
                    factor=factor,
                    steps=steps_before,
                    seed=seed,
                    warm_start=False,
                    take_snapshot=True,
                    close=False,
                    client_name="pre-crash",
                )
        # The daemon is gone; its sessions died with it.  Learned state
        # lives on in the store directory.

        manager2 = SessionManager(
            global_budget_j=global_budget_j,
            store=SnapshotStore(directory=directory),
        )
        with ServerThread(manager2, unix_path=sock):
            with ServiceClient(unix_path=sock, retry=retry) as client:
                resumed = drive_synthetic_session(
                    client,
                    machine=machine,
                    app=app,
                    factor=factor,
                    steps=steps_after,
                    seed=seed,
                    warm_start=True,
                    client_name="post-crash",
                )

        # Cold control: same workload, no snapshot store to warm from.
        manager_cold = SessionManager(global_budget_j=global_budget_j)
        with ServerThread(manager_cold, unix_path=sock):
            with ServiceClient(unix_path=sock, retry=retry) as client:
                cold = drive_synthetic_session(
                    client,
                    machine=machine,
                    app=app,
                    factor=factor,
                    steps=steps_after,
                    seed=seed,
                    warm_start=False,
                    client_name="cold-control",
                )

    stats = manager2.stats()
    pool_ok = stats["available_budget_j"] >= -1e-6
    return {
        "plan": plan.name,
        "pre_crash_steps": first.steps,
        "warm_resumed": resumed.warm,
        "resumed_convergence": resumed.convergence_step(),
        "cold_convergence": cold.convergence_step(),
        "resumed_report": resumed.report,
        "cold_report": cold.report,
        "pool_ok": pool_ok,
        "passed": (
            resumed.warm
            and pool_ok
            and resumed.convergence_step() <= cold.convergence_step()
        ),
    }


def _drive_inflated_session(
    manager: Any,
    machine_model: Any,
    application: Any,
    factor: float,
    steps: int,
    seed: int,
    inflation: float,
) -> Dict[str, Any]:
    """One session whose reported energy is inflated by a fixed factor.

    Inflation 1.0 is an honest client; higher factors model a runaway
    workload (or rogue meter) burning through its grant faster than any
    in-budget trajectory allows.  Returns the final report plus whether
    the enforcement ladder killed the session.
    """
    from ..service.sessions import SessionKilled

    space = machine_model.space
    simulator = PlatformSimulator(
        machine_model,
        application.resource_profile,
        noise=NoiseModel(),
        seed=seed,
    )
    session = manager.open_session(
        machine_model.name,
        application.name,
        factor=factor,
        total_work=steps * application.work_per_iteration,
        seed=seed,
        warm_start=False,
        client=f"enforce-x{inflation:g}",
    )
    decision = session.runtime.current_decision
    killed = False
    report: Optional[Dict[str, Any]] = None
    for _ in range(steps):
        result = simulator.run_iteration(
            config=space[decision.system_index],
            work=application.work_per_iteration,
            app_speedup=decision.app_config.speedup,
            app_power_factor=getattr(
                decision.app_config, "power_factor", 1.0
            ),
        )
        measurement = Measurement(
            work=result.work,
            energy_j=inflation * result.measured_power_w * result.time_s,
            rate=result.measured_rate,
            power_w=inflation * result.measured_power_w,
        )
        try:
            decision = manager.step(session.session_id, measurement)
        except SessionKilled as exc:
            killed = True
            report = exc.report
            break
    if report is None:
        report = manager.close(session.session_id, reason="chaos")
    return {"inflation": inflation, "killed": killed, "report": report}


def run_enforcement_chaos(
    inflations: Sequence[float] = (1.0, 2.0, 3.5),
    steps: int = 40,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
    seed: int = 0,
    global_budget_j: float = 1e6,
) -> Dict[str, Any]:
    """Escalating runaway sessions against the enforcement ladder.

    One :class:`~repro.service.sessions.SessionManager` hosts a session
    per inflation factor and the harness checks the ladder's hard
    guarantees:

    1. **Hard-tier zero overdraft** — any session the ladder killed, or
       whose final tier is THROTTLE or worse, ends with *exactly* zero
       hard-budget overdraft (spend never exceeded its effective
       budget; the margin built into the predictive kill is the proof).
    2. **Honest sessions run free** — the inflation-1.0 session is
       never killed and never reaches a hard tier.
    3. **Monotone transitions** — every session's recorded ladder
       history climbs one rung at a time and KILL follows an attempted
       DEGRADE (:func:`repro.enforce.ladder.monotone_transitions`).
    4. **Pool conservation** — spent + committed + available equals the
       global budget after all sessions close (kills retire budget
       zero-sum, same path as a client close).
    5. **Determinism** — replaying the same inflations under the same
       seed reproduces every kill step and transition history.
    """
    from ..enforce.ladder import Tier, monotone_transitions
    from ..service.sessions import SessionManager
    from ..service.telemetry import ServiceTelemetry

    machine_model = get_machine(machine)
    application = build_application(app)

    def one_pass() -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        manager = SessionManager(
            global_budget_j=global_budget_j,
            telemetry=ServiceTelemetry.disabled(),
        )
        outcomes = [
            _drive_inflated_session(
                manager,
                machine_model,
                application,
                factor=factor,
                steps=steps,
                seed=seed,
                inflation=inflation,
            )
            for inflation in inflations
        ]
        return outcomes, manager.stats()

    outcomes, stats = one_pass()
    violations: List[str] = []
    hard_labels = (Tier.THROTTLE.label, Tier.KILL.label)
    for outcome in outcomes:
        report = outcome["report"]
        tag = f"inflation {outcome['inflation']:g}"
        # Sanctioned exact zero-guard: the invariant is *exactly*
        # zero (hard_overdraft_j is max(0, spent - budget) and a
        # predictive kill fires before spend reaches the budget), so
        # any nonzero value, however small, is a real violation.
        overdraft_j = report["hard_overdraft_j"]
        if (
            outcome["killed"] or report["tier"] in hard_labels
        ) and overdraft_j != 0.0:  # jglint: disable=JG004
            violations.append(
                f"{tag}: hard-tier session overdrafted "
                f"{overdraft_j:.6f} J"
            )
        enforcement = report["enforcement"] or {}
        ok, reason = monotone_transitions(
            enforcement.get("transitions", [])
        )
        if not ok:
            violations.append(f"{tag}: {reason}")
        # Inflation is a configured constant (the sweep's own input),
        # not a measured quantity: exact equality is the honest test.
        if outcome["inflation"] == 1.0:  # jglint: disable=JG004
            if outcome["killed"]:
                violations.append(f"{tag}: honest session was killed")
            reached = [Tier.NOMINAL.label] + [
                t["to"] for t in enforcement.get("transitions", [])
            ]
            if any(label in hard_labels for label in reached):
                violations.append(
                    f"{tag}: honest session reached a hard tier"
                )
    conserved = (
        stats["global_budget_j"]
        - stats["committed_budget_j"]
        - stats["available_budget_j"]
    )
    spent_j = global_budget_j - stats["available_budget_j"]
    if stats["available_budget_j"] < -1e-6:
        violations.append(
            f"pool overcommitted by {-stats['available_budget_j']:.6f} J"
        )
    if abs(conserved - spent_j) > 1e-6 * max(global_budget_j, 1.0):
        violations.append("pool accounting does not balance")
    replay, _ = one_pass()
    for first, second in zip(outcomes, replay):
        same = (
            first["killed"] == second["killed"]
            and first["report"]["steps"] == second["report"]["steps"]
            and first["report"]["enforcement"]
            == second["report"]["enforcement"]
        )
        if not same:
            violations.append(
                f"inflation {first['inflation']:g}: replay diverged"
            )
    return {
        "inflations": list(inflations),
        "steps": steps,
        "sessions": [
            {
                "inflation": outcome["inflation"],
                "killed": outcome["killed"],
                "tier": outcome["report"]["tier"],
                "steps": outcome["report"]["steps"],
                "hard_overdraft_j": outcome["report"][
                    "hard_overdraft_j"
                ],
                "transitions": (
                    outcome["report"]["enforcement"] or {}
                ).get("transitions", []),
            }
            for outcome in outcomes
        ],
        "stats": stats,
        "passed": not violations,
        "violations": violations,
    }


def run_chaos_suite(
    plan_names: Optional[Sequence[str]] = None,
    seed: int = 0,
    n_iterations: int = 120,
    steps: int = 25,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
) -> Dict[str, Any]:
    """Verify a set of shipped plans; the CLI's ``chaos`` entry point.

    Loop-level plans (sensor/channel/budget faults) go through
    :func:`verify_plan`; ``network``-bearing plans through
    :func:`run_service_chaos`; ``crash``-bearing plans through
    :func:`run_restart_scenario`.
    """
    plans = shipped_plans(seed=seed)
    if plan_names:
        unknown = sorted(set(plan_names) - set(plans))
        if unknown:
            raise KeyError(
                f"unknown plan(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(plans))}"
            )
        selected = {name: plans[name] for name in plan_names}
    else:
        selected = plans
    results: Dict[str, Any] = {}
    for name, plan in selected.items():
        if plan.network is not None:
            results[name] = run_service_chaos(
                plan,
                steps=steps,
                machine=machine,
                app=app,
                factor=factor,
                seed=seed,
            )
        elif plan.crash is not None:
            results[name] = run_restart_scenario(
                plan,
                machine=machine,
                app=app,
                factor=factor,
                seed=seed,
            )
        else:
            results[name] = verify_plan(
                plan,
                machine=machine,
                app=app,
                factor=factor,
                n_iterations=n_iterations,
                seed=seed,
            )
    return {
        "passed": all(r["passed"] for r in results.values()),
        "plans": results,
    }
