"""Fault injection and deterministic chaos testing for JouleGuard.

:mod:`repro.faults.models` defines seeded, composable fault models —
sensor dropout/stuck-at/spikes, stale measurement delivery, mid-run
budget revisions, request/response loss, session crashes — as pure
wrappers around the seams of the system.  :mod:`repro.faults.harness`
runs fault plans through the closed loop (and through a real daemon)
and checks the paper-level invariants that must survive chaos:
budgets are never silently overdrawn, the pole stays in its stability
region, accuracy degrades monotonically with fault severity, and every
faulted run replays decision for decision under its seed.
"""

from .harness import (
    ChaosInvariantError,
    ChaosRunResult,
    decision_fingerprint,
    run_chaos,
    run_chaos_suite,
    run_enforcement_chaos,
    run_restart_scenario,
    run_service_chaos,
    verify_plan,
)
from .models import (
    BudgetRevision,
    ChannelFaults,
    CrashFaults,
    FaultPlan,
    FaultyPowerSensor,
    MeasurementChannel,
    NetworkFaults,
    RequestChaos,
    SensorFaults,
    shipped_plans,
)

__all__ = [
    "BudgetRevision",
    "ChannelFaults",
    "ChaosInvariantError",
    "ChaosRunResult",
    "CrashFaults",
    "FaultPlan",
    "FaultyPowerSensor",
    "MeasurementChannel",
    "NetworkFaults",
    "RequestChaos",
    "SensorFaults",
    "decision_fingerprint",
    "run_chaos",
    "run_chaos_suite",
    "run_enforcement_chaos",
    "run_restart_scenario",
    "run_service_chaos",
    "shipped_plans",
    "verify_plan",
]
