"""Fleet-level telemetry: the ``jg_fleet_*`` metric families.

The simulator reports through the same
:class:`~repro.obs.registry.MetricsRegistry` the service daemon uses,
so fleet runs expose the identical Prometheus text format
(:func:`repro.obs.prom.render_text`) and JSON sample dumps as a live
deployment — budget violations per million sessions, accuracy and
burn-fraction distribution tails included.
"""

from __future__ import annotations

from typing import Optional

from ..obs.prom import render_text
from ..obs.registry import MetricsRegistry

__all__ = ["ACCURACY_BUCKETS", "BURN_BUCKETS", "FleetMetrics"]

#: Session-accuracy buckets: the interesting tail is the low end.
ACCURACY_BUCKETS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0)

#: Burn-fraction buckets: 1.0 is the hard budget bound.
BURN_BUCKETS = (0.25, 0.5, 0.75, 0.9, 0.95, 1.0, 1.05, 1.25, 1.5, 2.0)


class FleetMetrics:
    """The fleet simulator's metric families, registered once."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        r = self.registry
        self.opened = r.counter(
            "jg_fleet_sessions_opened_total",
            "Sessions admitted to the fleet.",
            ("cohort",),
        )
        self.retired = r.counter(
            "jg_fleet_sessions_retired_total",
            "Sessions retired, by outcome "
            "(completed / killed / churned / running).",
            ("cohort", "outcome"),
        )
        self.hard_overdraft = r.counter(
            "jg_fleet_hard_overdraft_total",
            "Sessions that reached a hard tier and still finished "
            "over their effective budget (the ladder guarantee says "
            "this stays zero).",
            ("cohort",),
        )
        self.budget_violations = r.counter(
            "jg_fleet_budget_violations_total",
            "Retired sessions whose spend exceeded the effective "
            "budget (any tier).",
            ("cohort",),
        )
        self.kills = r.counter(
            "jg_fleet_kills_total",
            "Sessions terminated by the enforcement ladder.",
            ("cohort",),
        )
        self.device_steps = r.counter(
            "jg_fleet_device_steps_total",
            "Alive-session steps executed across the fleet.",
        )
        self.epochs = r.counter(
            "jg_fleet_epochs_total",
            "Simulation epochs executed.",
        )
        self.alive = r.gauge(
            "jg_fleet_alive_sessions",
            "Currently alive sessions.",
            ("cohort",),
        )
        self.accuracy = r.histogram(
            "jg_fleet_session_accuracy",
            "Mean per-session accuracy at retirement.",
            ("cohort",),
            buckets=ACCURACY_BUCKETS,
        )
        self.burn = r.histogram(
            "jg_fleet_session_burn_fraction",
            "Energy spent over effective budget at retirement.",
            ("cohort",),
            buckets=BURN_BUCKETS,
        )

    def observe_accuracy(self, cohort: str, value: float) -> None:
        self.accuracy.labels(cohort).observe(value, self.accuracy.uppers)

    def observe_burn(self, cohort: str, value: float) -> None:
        self.burn.labels(cohort).observe(value, self.burn.uppers)

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_text(self.registry)
