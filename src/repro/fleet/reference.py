"""Scalar reference driver: one session the way the service runs it.

:class:`ScalarSessionLoop` replays the healthy-sensor step path of
``repro.service.sessions.SessionManager`` — the smoothing EWMAs, the
:class:`~repro.core.jouleguard.JouleGuardRuntime` step, the overdraft
signal, the :class:`~repro.enforce.ladder.EnforcementLadder`
observation, the DEGRADE pin, and the KILL — without the daemon
plumbing, so a :class:`~repro.fleet.pool.SessionPool` row can be
checked against it decision for decision.  :func:`run_lockstep` does
exactly that: it steps a pool and a list of scalar loops over shared
:class:`~repro.fleet.measure.CohortHardwareModel` measurements and
reports every field that diverges.

This module is also the benchmark baseline: ``bench_fleet`` times the
pool against these loops to measure the vectorization speedup.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..apps.base import ApproximateApplication
from ..core.bandit import SystemEnergyOptimizer
from ..core.budget import EnergyGoal
from ..core.jouleguard import Decision, JouleGuardRuntime
from ..core.types import Measurement
from ..enforce.ladder import (
    DEFAULT_LADDER,
    EnforcementLadder,
    KilledSessionError,
    LadderPolicy,
    Tier,
    overdraft_signal,
)
from ..hw.machine import Machine
from ..runtime.harness import prior_shapes
from ..runtime.oracle import default_energy_per_work
from .measure import CohortHardwareModel
from .pool import SessionPool

__all__ = ["ScalarSessionLoop", "run_lockstep"]


class ScalarSessionLoop:
    """One JouleGuard session, stepped the way the manager steps it."""

    def __init__(
        self,
        machine: Machine,
        app: ApproximateApplication,
        total_work: float,
        seed: int,
        factor: Optional[float] = None,
        budget_j: Optional[float] = None,
        policy: Optional[LadderPolicy] = DEFAULT_LADDER,
        smoothing: float = 0.25,
        feasibility_slack: float = 1.05,
    ) -> None:
        if (budget_j is None) == (factor is None):
            raise ValueError("pass exactly one of factor / budget_j")
        if budget_j is None:
            assert factor is not None
            if factor < 1.0:
                raise ValueError("factor must be >= 1")
            budget_j = (
                total_work
                * default_energy_per_work(machine, app)
                / factor
            )
        rate_shape, power_shape = prior_shapes(machine)
        # The session manager seeds exploration with ``seed + 1``.
        seo = SystemEnergyOptimizer(
            rate_shape, power_shape, seed=seed + 1
        )
        self.runtime = JouleGuardRuntime(
            seo=seo,
            table=app.table,
            goal=EnergyGoal(total_work=total_work, budget_j=budget_j),
            feasibility_slack=feasibility_slack,
        )
        self.ladder = (
            EnforcementLadder(policy=policy)
            if policy is not None
            else None
        )
        self.smoothing = smoothing
        self.steps = 0
        self.recent_epw: Optional[float] = None
        self.recent_step_energy_j: Optional[float] = None
        self.throttle_s = 0.0
        self.degraded = False
        self.killed = False
        self.kill_step = -1

    @property
    def decision(self) -> Decision:
        return self.runtime.current_decision

    @property
    def tier(self) -> Tier:
        return self.ladder.tier if self.ladder is not None else Tier.NOMINAL

    def step(self, measurement: Measurement) -> Decision:
        """One manager step: EWMAs, Algorithm 1, then the ladder."""
        if self.killed:
            raise KilledSessionError("session was killed")
        self.steps += 1
        if self.tier < Tier.DEGRADE:
            self.degraded = False
        epw = measurement.energy_j / measurement.work
        if self.recent_epw is None:
            self.recent_epw = epw
        else:
            self.recent_epw += self.smoothing * (epw - self.recent_epw)
        self.runtime.step(measurement)
        if self.recent_step_energy_j is None:
            self.recent_step_energy_j = measurement.energy_j
        else:
            self.recent_step_energy_j += self.smoothing * (
                measurement.energy_j - self.recent_step_energy_j
            )
        if self.ladder is not None:
            self._enforce()
        return self.runtime.current_decision

    def _enforce(self) -> None:
        assert self.ladder is not None
        signal = overdraft_signal(
            self.runtime.accountant,
            self.recent_epw,
            self.recent_step_energy_j,
        )
        tier = self.ladder.observe(signal, step=self.steps)
        if Tier.DEGRADE <= tier < Tier.KILL:
            self.degraded = True
            self.runtime.pin_safe_fallback()
        self.throttle_s = self.ladder.throttle_s()
        if tier is Tier.KILL:
            self.killed = True
            self.kill_step = self.steps


def run_lockstep(
    pool: SessionPool,
    loops: List[ScalarSessionLoop],
    model: CohortHardwareModel,
    n_steps: int,
    max_report: int = 20,
) -> List[str]:
    """Step a pool and scalar loops over shared measurements; return
    every divergence found (empty list = decision-for-decision equal).

    Row ``i`` of the pool and ``loops[i]`` must have been opened with
    the same work, budget, and seed (and the pool in ``"exact"`` mode
    for bit-exactness).  Each step both drivers read the *same* cached
    noise from ``model``; afterwards every decision field, ledger, and
    enforcement output is compared exactly — no tolerances.
    """
    if pool.n != len(loops):
        raise ValueError("pool rows and scalar loops must align")
    spec = pool.spec
    index_to_fpos = {
        int(index): position
        for position, index in enumerate(spec.frontier_indices)
    }
    mismatches: List[str] = []

    def note(message: str) -> None:
        if len(mismatches) < max_report:
            mismatches.append(message)

    for t in range(n_steps):
        if pool.alive_count == 0:
            break
        d_sys = pool.d_sys.copy()
        d_fpos = pool.d_fpos.copy()
        work, energy_j, rate, power_w = model.measurements(
            t, d_sys, d_fpos
        )
        for i, loop in enumerate(loops):
            if loop.killed or not bool(pool.alive[i]):
                continue
            sys_index = loop.decision.system_index
            fpos = index_to_fpos[loop.decision.app_config.index]
            if sys_index != int(d_sys[i]) or fpos != int(d_fpos[i]):
                note(
                    f"step {t} row {i}: pre-step decision diverged "
                    f"(scalar sys={sys_index} fpos={fpos}, "
                    f"pool sys={int(d_sys[i])} fpos={int(d_fpos[i])})"
                )
            loop.step(model.measurement_for(i, t, sys_index, fpos))
        pool.step(work, energy_j, rate, power_w)
        model.prune(t)

        for i, loop in enumerate(loops):
            if bool(pool.killed[i]) != loop.killed:
                note(
                    f"step {t} row {i}: kill status diverged "
                    f"(scalar={loop.killed}, pool={bool(pool.killed[i])})"
                )
                continue
            if loop.killed:
                if int(pool.kill_step[i]) != loop.kill_step:
                    note(
                        f"row {i}: kill step diverged "
                        f"(scalar={loop.kill_step}, "
                        f"pool={int(pool.kill_step[i])})"
                    )
                continue
            decision = loop.decision
            accountant = loop.runtime.accountant
            checks = (
                ("system_index", decision.system_index, int(pool.d_sys[i])),
                (
                    "app_index",
                    decision.app_config.index,
                    int(spec.frontier_indices[pool.d_fpos[i]]),
                ),
                (
                    "setpoint",
                    decision.speedup_setpoint,
                    float(pool.d_setpoint[i]),
                ),
                ("pole", decision.pole, float(pool.d_pole[i])),
                ("epsilon", decision.epsilon, float(pool.d_epsilon[i])),
                ("explored", decision.explored, bool(pool.d_explored[i])),
                ("feasible", decision.feasible, bool(pool.d_feasible[i])),
                ("tier", int(loop.tier), int(pool.tier[i])),
                ("throttle_s", loop.throttle_s, float(pool.throttle_s[i])),
                ("degraded", loop.degraded, bool(pool.degraded[i])),
                (
                    "work_done",
                    accountant.work_done,
                    float(pool.work_done[i]),
                ),
                (
                    "energy_used_j",
                    accountant.energy_used_j,
                    float(pool.energy_used_j[i]),
                ),
            )
            for label, scalar_value, pool_value in checks:
                if scalar_value != pool_value:
                    note(
                        f"step {t} row {i}: {label} diverged "
                        f"(scalar={scalar_value!r}, pool={pool_value!r})"
                    )
    return mismatches
