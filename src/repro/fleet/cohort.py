"""Cohort specification: what all sessions of a (machine, app) share.

A fleet is partitioned into *cohorts* — sessions running the same
application on the same Table 3 machine shape.  Everything Algorithm 1
needs that is constant across such sessions lives here as plain arrays:
the optimistic prior shapes (:func:`repro.runtime.harness.prior_shapes`),
the application's Pareto frontier in ascending-speedup order, and the
paper's learner/controller parameters.  The
:class:`~repro.fleet.pool.SessionPool` then holds only per-session
state, keyed into these shared tables.

Index conventions (load-bearing):

* system configuration ``j`` means ``machine.space[j]`` — the
  *enumeration* order the SEO and ``prior_shapes`` share, not
  ``ConfigSpace.linearized()``;
* frontier position ``p`` means ``table.pareto_frontier[p]`` — strictly
  increasing speedup, so Eqn. 6 is a ``searchsorted``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.base import ApproximateApplication
from ..core.contracts import check
from ..core.ewma import DEFAULT_ALPHA
from ..hw.machine import Machine
from ..runtime.harness import prior_shapes
from ..runtime.oracle import default_energy_per_work

__all__ = ["CohortSpec"]


@dataclass(frozen=True)
class CohortSpec:
    """Shared, immutable state for one (machine, app) cohort."""

    machine_name: str
    app_name: str
    rate_shape: np.ndarray
    power_shape: np.ndarray
    frontier_speedups: np.ndarray
    frontier_accuracies: np.ndarray
    frontier_power_factors: np.ndarray
    frontier_indices: np.ndarray
    default_epw: float
    alpha: float = DEFAULT_ALPHA
    optimism: float = 1.0
    vdbe_sigma: float = 5.0
    vdbe_alpha: float = DEFAULT_ALPHA
    vdbe_relative: bool = True
    vdbe_min_weight: float = 0.2
    pole_margin: float = 1.0
    pole_smoothing: float = 0.0
    feasibility_slack: float = 1.05

    def __post_init__(self) -> None:
        check(
            self.rate_shape.shape == self.power_shape.shape
            and self.rate_shape.ndim == 1
            and self.rate_shape.shape[0] > 0,
            "prior shapes must be equal-length 1-D arrays",
        )
        check(
            bool((self.rate_shape > 0).all())
            and bool((self.power_shape > 0).all()),
            "prior shapes must be positive",
        )
        check(
            self.frontier_speedups.ndim == 1
            and self.frontier_speedups.shape[0] > 0,
            "the frontier needs at least one configuration",
        )
        check(
            bool(np.all(np.diff(self.frontier_speedups) > 0)),
            "frontier speedups must be strictly increasing",
        )
        check(self.default_epw > 0, "default energy/work must be positive")
        check(0.0 < self.alpha <= 1.0, "alpha must be in (0, 1]")
        check(self.optimism >= 1.0, "optimism must be >= 1")
        check(
            self.feasibility_slack >= 1.0, "feasibility_slack must be >= 1"
        )

    @property
    def n_configs(self) -> int:
        """Size of the system configuration space."""
        return int(self.rate_shape.shape[0])

    @property
    def n_frontier(self) -> int:
        return int(self.frontier_speedups.shape[0])

    @property
    def min_speedup(self) -> float:
        """The controller clamp floor (frontier[0], Eqn. 5)."""
        return float(self.frontier_speedups[0])

    @property
    def max_speedup(self) -> float:
        """The controller clamp ceiling (Eqn. 6's last resort)."""
        return float(self.frontier_speedups[-1])

    @property
    def vdbe_weight(self) -> float:
        """The floored Eqn. 2 update weight, as :class:`Vdbe` computes."""
        return max(1.0 / self.n_configs, self.vdbe_min_weight)

    @classmethod
    def from_pair(
        cls, machine: Machine, app: ApproximateApplication
    ) -> "CohortSpec":
        """Build the spec for an application on a machine shape."""
        if not app.runs_on(machine.name):
            raise ValueError(
                f"{app.name} does not run on {machine.name}"
            )
        rate_shape, power_shape = prior_shapes(machine)
        rate_shape = rate_shape.astype(np.float64)
        power_shape = power_shape.astype(np.float64)
        rate_shape.setflags(write=False)
        power_shape.setflags(write=False)
        frontier = app.table.pareto_frontier
        speedups = np.asarray(
            [config.speedup for config in frontier], dtype=np.float64
        )
        accuracies = np.asarray(
            [config.accuracy for config in frontier], dtype=np.float64
        )
        power_factors = np.asarray(
            [config.power_factor for config in frontier],
            dtype=np.float64,
        )
        indices = np.asarray(
            [config.index for config in frontier], dtype=np.int64
        )
        for table in (speedups, accuracies, power_factors, indices):
            table.setflags(write=False)
        return cls(
            machine_name=machine.name,
            app_name=app.name,
            rate_shape=rate_shape,
            power_shape=power_shape,
            frontier_speedups=speedups,
            frontier_accuracies=accuracies,
            frontier_power_factors=power_factors,
            frontier_indices=indices,
            default_epw=default_energy_per_work(machine, app),
        )
