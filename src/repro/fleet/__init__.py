"""repro.fleet: the vectorized fleet engine and device simulator.

Steps whole cohorts of JouleGuard sessions as numpy struct-of-arrays
state instead of per-object loops — decision-for-decision equivalent
to the scalar :class:`~repro.core.jouleguard.JouleGuardRuntime` +
:class:`~repro.enforce.ladder.EnforcementLadder` pair (see
:mod:`repro.fleet.pool`), and fast enough to simulate million-device
fleets with arrivals, churn, warm starts, and fleet-level telemetry
(:mod:`repro.fleet.simulator`).
"""

from .cohort import CohortSpec
from .measure import CohortHardwareModel
from .metrics import FleetMetrics
from .pool import FleetError, SessionPool
from .reference import ScalarSessionLoop, run_lockstep
from .simulator import (
    CohortScenario,
    FleetReport,
    FleetScenario,
    FleetSimulator,
    preset_scenario,
)

__all__ = [
    "CohortHardwareModel",
    "CohortScenario",
    "CohortSpec",
    "FleetError",
    "FleetMetrics",
    "FleetReport",
    "FleetScenario",
    "FleetSimulator",
    "ScalarSessionLoop",
    "SessionPool",
    "preset_scenario",
    "run_lockstep",
]
