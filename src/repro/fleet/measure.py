"""Shared measurement synthesis for equivalence runs and benchmarks.

The equivalence contract of :class:`~repro.fleet.pool.SessionPool` is
only testable if the vectorized pool and the scalar reference loop see
*bit-identical* measurements.  :class:`CohortHardwareModel` guarantees
that: per-step noise vectors are drawn once (in step order, from an
:class:`~repro.hw.vector.Ar1NoiseBank`) and cached, and both the
vectorized path (:meth:`measurements`) and the per-row scalar path
(:meth:`measurement_for`) index the same cached ``float64`` arrays with
the same elementwise expression, operand order and all — so the two
drivers cannot diverge in the last ulp.

The model is fixed-capacity by design (rows are identities for the
whole run); the fleet simulator, whose population churns, uses the
noise bank directly instead.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.types import Measurement
from ..hw.vector import Ar1NoiseBank, MachineTables
from .cohort import CohortSpec

__all__ = ["CohortHardwareModel"]


class CohortHardwareModel:
    """Deterministic per-cohort hardware response, replayable per row.

    Parameters
    ----------
    tables:
        Per-system-configuration base rates and powers
        (:meth:`~repro.hw.vector.MachineTables.build`).
    spec:
        The cohort's frontier tables (speedups, power factors).
    n:
        Fixed row capacity.
    waste:
        Per-row energy multiplier (default all ones).  Rows with waste
        well above 1 burn through their grant and exercise the hard
        ladder tiers.
    difficulty:
        Optional per-step work-difficulty multipliers (scalar per
        step, cycled); difficulty divides the delivered rate.
    """

    def __init__(
        self,
        tables: MachineTables,
        spec: CohortSpec,
        n: int,
        waste: Optional[np.ndarray] = None,
        difficulty: Optional[Sequence[float]] = None,
        sigma_rate: float = 0.05,
        sigma_power: float = 0.02,
        correlation: float = 0.6,
        seed: int = 0,
        work_per_step: float = 1.0,
    ) -> None:
        if n <= 0:
            raise ValueError("the model needs at least one row")
        if work_per_step <= 0:
            raise ValueError("work per step must be positive")
        self.tables = tables
        self.spec = spec
        self.n = n
        self.work_per_step = work_per_step
        if waste is None:
            self.waste = np.ones(n, dtype=np.float64)
        else:
            self.waste = np.asarray(waste, dtype=np.float64)
            if self.waste.shape != (n,):
                raise ValueError("waste must have one entry per row")
            if not bool(np.all(self.waste > 0.0)):
                raise ValueError("waste multipliers must be positive")
        if difficulty is not None and (
            not difficulty or any(d <= 0 for d in difficulty)
        ):
            raise ValueError("difficulty multipliers must be positive")
        self.difficulty = (
            tuple(float(d) for d in difficulty) if difficulty else (1.0,)
        )
        self._bank = Ar1NoiseBank(
            n,
            sigma_rate=sigma_rate,
            sigma_power=sigma_power,
            correlation=correlation,
            seed=seed,
        )
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._next_step = 0

    def _noise(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """The (rate, power) noise vectors for ``step`` (cached).

        Draws are strictly sequential; asking for a step that was
        already pruned is a caller bug.
        """
        if step < 0:
            raise ValueError("step cannot be negative")
        while self._next_step <= step:
            self._cache[self._next_step] = self._bank.sample()
            self._next_step += 1
        try:
            return self._cache[step]
        except KeyError:
            raise ValueError(
                f"noise for step {step} was already pruned"
            ) from None

    def prune(self, before_step: int) -> None:
        """Drop cached noise for steps below ``before_step``."""
        for step in [s for s in self._cache if s < before_step]:
            del self._cache[step]

    def measurements(
        self, step: int, d_sys: np.ndarray, d_fpos: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized response: ``(work, energy_j, rate, power_w)``."""
        rate_mult, power_mult = self._noise(step)
        difficulty = self.difficulty[step % len(self.difficulty)]
        speedups = self.spec.frontier_speedups
        factors = self.spec.frontier_power_factors
        rate = (
            self.tables.base_rate[d_sys]
            * speedups[d_fpos]
            * rate_mult
            / difficulty
        )
        work = np.full(self.n, self.work_per_step, dtype=np.float64)
        elapsed = work / rate
        measured_rate = work / elapsed
        power_w = (
            self.tables.package_power_w[d_sys] * factors[d_fpos]
        ) * power_mult + self.tables.external_w
        energy_j = power_w * elapsed * self.waste
        return work, energy_j, measured_rate, power_w

    def measurement_for(
        self, row: int, step: int, sys_index: int, fpos: int
    ) -> Measurement:
        """Scalar response for one row — bit-identical to the row's
        slice of :meth:`measurements` for the same indices."""
        rate_mult, power_mult = self._noise(step)
        difficulty = self.difficulty[step % len(self.difficulty)]
        rate = (
            float(self.tables.base_rate[sys_index])
            * float(self.spec.frontier_speedups[fpos])
            * float(rate_mult[row])
            / difficulty
        )
        work = self.work_per_step
        elapsed = work / rate
        measured_rate = work / elapsed
        power_w = (
            float(self.tables.package_power_w[sys_index])
            * float(self.spec.frontier_power_factors[fpos])
        ) * float(power_mult[row]) + self.tables.external_w
        energy_j = power_w * elapsed * float(self.waste[row])
        return Measurement(
            work=work,
            energy_j=energy_j,
            rate=measured_rate,
            power_w=power_w,
        )
