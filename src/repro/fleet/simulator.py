"""The fleet simulator: a million devices against the pool engine.

A :class:`FleetScenario` describes the run declaratively — cohorts
(machine shape × application, Sec. 4.2's Table 3 platforms), an
arrival curve (steady / diurnal / bursty, built from
:mod:`repro.workloads.arrivals` on top of the workload phase
vocabulary), churn, budget-factor and work ranges, and a runaway
fraction (devices whose energy waste forces the enforcement ladder
through its hard tiers).  :class:`FleetSimulator` then runs every
cohort as one :class:`~repro.fleet.pool.SessionPool` in ``"fast"``
mode: each epoch admits the arrivals (warm-started from a
cohort-shared snapshot in a
:class:`~repro.service.state.SnapshotStore`), steps the pool over
AR(1)-noised Table-3 hardware responses, retires completed / churned /
killed sessions into the :class:`FleetReport` tallies, and compacts.

Concurrency is bounded by ``max_concurrent`` (arrivals beyond the
bound are shed and counted), so "a million devices" means a million
admissions over the run, not a million live rows.  Everything is
deterministic given the scenario seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..apps import build_application
from ..enforce.ladder import DEFAULT_LADDER, Tier
from ..hw import GENERIC_PROFILE, get_machine
from ..hw.vector import Ar1NoiseBank, MachineTables
from ..service.state import SnapshotStore
from ..workloads.arrivals import (
    ArrivalTrace,
    bursty_arrivals,
    diurnal_arrivals,
    steady_arrivals,
)
from .cohort import CohortSpec
from .metrics import FleetMetrics
from .pool import SessionPool

__all__ = [
    "CohortScenario",
    "FleetReport",
    "FleetScenario",
    "FleetSimulator",
    "preset_scenario",
]

#: Tolerance when testing spend against the budget: one part in 10^9,
#: so float accumulation order can never masquerade as an overdraft.
_OVERDRAFT_EPS = 1e-9


@dataclass(frozen=True)
class CohortScenario:
    """One cohort's slice of the fleet."""

    machine: str
    app: str
    weight: float = 1.0
    min_factor: float = 1.2
    max_factor: float = 2.5
    min_work: float = 40.0
    max_work: float = 80.0
    runaway_fraction: float = 0.0
    runaway_waste: float = 3.0
    runaway_work_multiplier: float = 5.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("cohort weight must be positive")
        if not 1.0 <= self.min_factor <= self.max_factor:
            raise ValueError("factors must satisfy 1 <= min <= max")
        if not 0.0 < self.min_work <= self.max_work:
            raise ValueError("work range must satisfy 0 < min <= max")
        if not 0.0 <= self.runaway_fraction <= 1.0:
            raise ValueError("runaway fraction is a probability")
        if self.runaway_waste < 1.0:
            raise ValueError("runaway waste must be >= 1")
        if self.runaway_work_multiplier < 1.0:
            raise ValueError("runaway work multiplier must be >= 1")

    @property
    def label(self) -> str:
        return f"{self.machine}/{self.app}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "app": self.app,
            "weight": self.weight,
            "min_factor": self.min_factor,
            "max_factor": self.max_factor,
            "min_work": self.min_work,
            "max_work": self.max_work,
            "runaway_fraction": self.runaway_fraction,
            "runaway_waste": self.runaway_waste,
            "runaway_work_multiplier": self.runaway_work_multiplier,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CohortScenario":
        return cls(**data)


@dataclass(frozen=True)
class FleetScenario:
    """A declarative fleet run; JSON round-trippable."""

    name: str
    cohorts: Tuple[CohortScenario, ...]
    devices: float = 10_000.0
    n_epochs: int = 48
    steps_per_epoch: int = 4
    arrivals: str = "diurnal"
    mean_lifetime_epochs: float = 16.0
    max_concurrent: int = 100_000
    warm_start: bool = True
    warmup_steps: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.cohorts:
            raise ValueError("a scenario needs at least one cohort")
        if self.devices <= 0:
            raise ValueError("expected device count must be positive")
        if self.n_epochs <= 0 or self.steps_per_epoch <= 0:
            raise ValueError("epochs and steps per epoch must be positive")
        if self.arrivals not in ("steady", "diurnal", "bursty"):
            raise ValueError(f"unknown arrival shape {self.arrivals!r}")
        if self.mean_lifetime_epochs <= 0:
            raise ValueError("mean lifetime must be positive")
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.warmup_steps < 0:
            raise ValueError("warmup steps cannot be negative")

    @property
    def total_steps(self) -> int:
        return self.n_epochs * self.steps_per_epoch

    def arrival_trace(self, seed_offset: int = 0) -> ArrivalTrace:
        """The scenario's arrival curve, scaled to ``devices``."""
        seed = self.seed + seed_offset
        if self.arrivals == "steady":
            trace = steady_arrivals(self.n_epochs, 1.0, seed=seed)
        elif self.arrivals == "diurnal":
            trace = diurnal_arrivals(self.n_epochs, 1.0, seed=seed)
        else:
            trace = bursty_arrivals(self.n_epochs, 1.0, seed=seed)
        return trace.scaled_to_total(self.devices)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cohorts": [cohort.as_dict() for cohort in self.cohorts],
            "devices": self.devices,
            "n_epochs": self.n_epochs,
            "steps_per_epoch": self.steps_per_epoch,
            "arrivals": self.arrivals,
            "mean_lifetime_epochs": self.mean_lifetime_epochs,
            "max_concurrent": self.max_concurrent,
            "warm_start": self.warm_start,
            "warmup_steps": self.warmup_steps,
            "seed": self.seed,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetScenario":
        payload = dict(data)
        payload["cohorts"] = tuple(
            CohortScenario.from_dict(entry)
            for entry in payload.get("cohorts", ())
        )
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "FleetScenario":
        return cls.from_dict(json.loads(text))


def _quantiles(values: List[float], qs: Tuple[float, ...]) -> Dict[str, float]:
    if not values:
        return {f"p{int(q * 100):02d}": 0.0 for q in qs}
    array = np.asarray(values, dtype=np.float64)
    return {
        f"p{int(q * 100):02d}": float(np.quantile(array, q)) for q in qs
    }


@dataclass
class FleetReport:
    """Aggregate outcome of one simulated fleet run."""

    scenario: str
    n_epochs: int = 0
    device_steps: int = 0
    opened: int = 0
    shed: int = 0
    completed: int = 0
    killed: int = 0
    churned: int = 0
    running: int = 0
    budget_violations: int = 0
    hard_tier_sessions: int = 0
    hard_tier_overdraft: int = 0
    warm_started: int = 0
    per_cohort: Dict[str, Dict[str, int]] = field(default_factory=dict)
    _burn: List[float] = field(default_factory=list)
    _accuracy: List[float] = field(default_factory=list)

    @property
    def retired(self) -> int:
        return self.completed + self.killed + self.churned

    @property
    def kills_per_million(self) -> float:
        if self.opened == 0:
            return 0.0
        return 1e6 * self.killed / self.opened

    @property
    def violations_per_million(self) -> float:
        if self.opened == 0:
            return 0.0
        return 1e6 * self.budget_violations / self.opened

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "n_epochs": self.n_epochs,
            "device_steps": self.device_steps,
            "opened": self.opened,
            "shed": self.shed,
            "completed": self.completed,
            "killed": self.killed,
            "churned": self.churned,
            "running": self.running,
            "budget_violations": self.budget_violations,
            "violations_per_million": self.violations_per_million,
            "kills_per_million": self.kills_per_million,
            "hard_tier_sessions": self.hard_tier_sessions,
            "hard_tier_overdraft": self.hard_tier_overdraft,
            "warm_started": self.warm_started,
            "burn_fraction": _quantiles(
                self._burn, (0.5, 0.95, 0.99)
            )
            | {"max": max(self._burn) if self._burn else 0.0},
            "accuracy": _quantiles(
                self._accuracy, (0.01, 0.05, 0.5)
            )
            | {
                "mean": (
                    float(np.mean(self._accuracy))
                    if self._accuracy
                    else 0.0
                )
            },
            "per_cohort": self.per_cohort,
        }


class _CohortState:
    """One cohort's live pieces inside the simulator."""

    def __init__(
        self,
        scenario: CohortScenario,
        spec: CohortSpec,
        tables: MachineTables,
        pool: SessionPool,
        bank: Ar1NoiseBank,
        rng: np.random.Generator,
    ) -> None:
        self.scenario = scenario
        self.spec = spec
        self.tables = tables
        self.pool = pool
        self.bank = bank
        self.rng = rng
        self.waste = np.zeros(0, dtype=np.float64)
        self.next_seed = 0


class FleetSimulator:
    """Run a :class:`FleetScenario` over per-cohort session pools."""

    def __init__(
        self,
        scenario: FleetScenario,
        metrics: Optional[FleetMetrics] = None,
        store: Optional[SnapshotStore] = None,
    ) -> None:
        self.scenario = scenario
        self.metrics = metrics if metrics is not None else FleetMetrics()
        self.store = store if store is not None else SnapshotStore()
        self.report = FleetReport(scenario=scenario.name)
        self._cohorts: List[_CohortState] = []
        total_weight = sum(c.weight for c in scenario.cohorts)
        self._shares = [
            c.weight / total_weight for c in scenario.cohorts
        ]
        for offset, cohort in enumerate(scenario.cohorts):
            machine = get_machine(cohort.machine)
            app = build_application(cohort.app)
            spec = CohortSpec.from_pair(machine, app)
            tables = MachineTables.build(machine, GENERIC_PROFILE)
            pool = SessionPool(
                spec,
                policy=DEFAULT_LADDER,
                mode="fast",
                seed=scenario.seed + 1000 + offset,
            )
            bank = Ar1NoiseBank(
                0, seed=scenario.seed + 2000 + offset
            )
            rng = np.random.default_rng(
                scenario.seed + 3000 + offset
            )
            self._cohorts.append(
                _CohortState(cohort, spec, tables, pool, bank, rng)
            )
            self.report.per_cohort[cohort.label] = {
                "opened": 0,
                "completed": 0,
                "killed": 0,
                "churned": 0,
                "hard_tier_overdraft": 0,
            }

    # -- warm start -----------------------------------------------------
    def _warm_up(self) -> None:
        """Pre-train one pathfinder session per cohort; share its
        learned state with every later arrival through the store."""
        for state in self._cohorts:
            if self.store.get(
                state.spec.machine_name, state.spec.app_name
            ):
                continue
            pool = SessionPool(
                state.spec,
                policy=None,
                mode="fast",
                seed=self.scenario.seed + 4000,
            )
            bank = Ar1NoiseBank(1, seed=self.scenario.seed + 4000)
            pool.open(
                total_work=np.asarray([1e9]),
                seeds=np.asarray([self.scenario.seed + 4000]),
                factors=np.asarray([1.1]),
            )
            for _ in range(self.scenario.warmup_steps):
                work, energy, rate, power = self._synthesize(
                    state, pool, bank, np.ones(1)
                )
                pool.step(work, energy, rate, power)
            self.store.put(pool.capture_snapshot(0))

    # -- measurement synthesis ------------------------------------------
    def _synthesize(
        self,
        state: _CohortState,
        pool: SessionPool,
        bank: Ar1NoiseBank,
        waste: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        rate_mult, power_mult = bank.sample()
        speedups = state.spec.frontier_speedups
        factors = state.spec.frontier_power_factors
        rate = (
            state.tables.base_rate[pool.d_sys]
            * speedups[pool.d_fpos]
            * rate_mult
        )
        work = np.ones(pool.n, dtype=np.float64)
        elapsed = work / rate
        power_w = (
            state.tables.package_power_w[pool.d_sys]
            * factors[pool.d_fpos]
        ) * power_mult + state.tables.external_w
        energy_j = power_w * elapsed * waste
        return work, energy_j, rate, power_w

    # -- lifecycle ------------------------------------------------------
    def _admit(self, state: _CohortState, count: int) -> None:
        if count <= 0:
            return
        scenario = state.scenario
        rng = state.rng
        work = rng.uniform(
            scenario.min_work, scenario.max_work, count
        )
        factors = rng.uniform(
            scenario.min_factor, scenario.max_factor, count
        )
        runaway = rng.random(count) < scenario.runaway_fraction
        waste = np.where(runaway, scenario.runaway_waste, 1.0)
        # Runaway devices model jobs that will not finish: heavy work
        # keeps the overdraft forecast alarming, so the ladder reaches
        # KILL while headroom remains (the zero-overdraft guarantee).
        work = np.where(
            runaway, work * scenario.runaway_work_multiplier, work
        )
        seeds = np.arange(
            state.next_seed, state.next_seed + count, dtype=np.int64
        )
        state.next_seed += count
        rows = state.pool.open(work, seeds, factors=factors)
        state.bank.extend(count)
        state.waste = np.concatenate([state.waste, waste])
        if self.scenario.warm_start:
            snapshot = self.store.get(
                state.spec.machine_name, state.spec.app_name
            )
            if snapshot is not None:
                state.pool.load_snapshot(rows, snapshot)
                self.report.warm_started += count
        label = scenario.label
        self.report.opened += count
        self.report.per_cohort[label]["opened"] += count
        self.metrics.opened.labels(label).inc(count)

    def _retire(
        self, state: _CohortState, churn_probability: float
    ) -> None:
        pool = state.pool
        label = state.scenario.label
        if pool.n == 0:
            return
        finished = pool.alive & pool.complete
        if bool(finished.any()):
            pool.close_rows(np.flatnonzero(finished))
        if churn_probability > 0.0 and bool(pool.alive.any()):
            churned = pool.alive & (
                state.rng.random(pool.n) < churn_probability
            )
            if bool(churned.any()):
                pool.close_rows(np.flatnonzero(churned))
        else:
            churned = np.zeros(pool.n, dtype=bool)

        dead = ~pool.alive
        if not bool(dead.any()):
            return
        report = self.report
        cohort_stats = report.per_cohort[label]
        budget = pool.budget_j + pool.adjustment_j
        burn = np.where(
            budget > 0.0, pool.energy_used_j / np.maximum(budget, 1e-12), 0.0
        )
        steps = np.maximum(pool.steps, 1)
        accuracy = pool.accuracy_sum / steps
        overdraft = pool.energy_used_j > budget * (1.0 + _OVERDRAFT_EPS)
        hard = pool.tier_peak >= int(Tier.THROTTLE)
        for row in np.flatnonzero(dead):
            if bool(pool.killed[row]):
                outcome = "killed"
                report.killed += 1
                cohort_stats["killed"] += 1
                self.metrics.kills.labels(label).inc()
            elif bool(finished[row]):
                outcome = "completed"
                report.completed += 1
                cohort_stats["completed"] += 1
            else:
                outcome = "churned"
                report.churned += 1
                cohort_stats["churned"] += 1
            self.metrics.retired.labels(label, outcome).inc()
            report._burn.append(float(burn[row]))
            report._accuracy.append(float(accuracy[row]))
            self.metrics.observe_burn(label, float(burn[row]))
            self.metrics.observe_accuracy(label, float(accuracy[row]))
            if bool(overdraft[row]):
                report.budget_violations += 1
                self.metrics.budget_violations.labels(label).inc()
            if bool(hard[row]):
                report.hard_tier_sessions += 1
                if bool(overdraft[row]):
                    report.hard_tier_overdraft += 1
                    cohort_stats["hard_tier_overdraft"] += 1
                    self.metrics.hard_overdraft.labels(label).inc()
        kept = pool.compact()
        state.bank.keep(~dead)
        state.waste = state.waste[~dead]
        assert kept.shape[0] == pool.n

    # -- the run --------------------------------------------------------
    def run(self) -> FleetReport:
        scenario = self.scenario
        if scenario.warm_start:
            self._warm_up()
        trace = scenario.arrival_trace()
        expected = np.asarray(trace.expected, dtype=np.float64)
        mean_expected = float(expected.mean()) if expected.size else 0.0
        # Each cohort draws its weighted slice of the arrival curve
        # from an independent seed.
        arrivals_by_cohort = [
            ArrivalTrace(
                name=trace.name,
                expected=tuple(
                    rate * share for rate in trace.expected
                ),
                seed=scenario.seed + 5000 + offset,
            ).sample()
            for offset, share in enumerate(self._shares)
        ]

        for epoch in range(scenario.n_epochs):
            load = (
                expected[epoch] / mean_expected
                if mean_expected > 0
                else 1.0
            )
            churn_probability = min(
                0.9, load / scenario.mean_lifetime_epochs
            )
            for offset, state in enumerate(self._cohorts):
                count = int(arrivals_by_cohort[offset][epoch])
                headroom = scenario.max_concurrent - state.pool.alive_count
                if count > headroom:
                    self.report.shed += count - headroom
                    count = max(0, headroom)
                self._admit(state, count)
            for _ in range(scenario.steps_per_epoch):
                for state in self._cohorts:
                    if state.pool.alive_count == 0:
                        continue
                    work, energy, rate, power = self._synthesize(
                        state, state.pool, state.bank, state.waste
                    )
                    state.pool.step(work, energy, rate, power)
                    self.report.device_steps += state.pool.alive_count
                    self.metrics.device_steps.inc(
                        state.pool.alive_count
                    )
                    # Completed and killed sessions leave right away —
                    # a finished session must not keep drawing budget.
                    self._retire(state, 0.0)
            for state in self._cohorts:
                self._retire(state, churn_probability)
                self.metrics.alive.labels(state.scenario.label).set(
                    state.pool.alive_count
                )
            self.report.n_epochs += 1
            self.metrics.epochs.inc()

        self.report.running = sum(
            state.pool.alive_count for state in self._cohorts
        )
        for state in self._cohorts:
            self.metrics.retired.labels(
                state.scenario.label, "running"
            ).inc(state.pool.alive_count)
        return self.report


def preset_scenario(name: str, seed: int = 0) -> FleetScenario:
    """The named scenario presets the CLI exposes.

    ``smoke``
        10k devices, 25 epochs × 2 steps (50 steps total), 10 %
        runaway devices — the CI gate.
    ``city``
        120k devices over a diurnal day, three cohorts.
    ``million``
        1.2M devices over four bursty days, concurrency capped at
        100k live rows.
    """
    # Runaway waste is set well past what compensation can absorb
    # (max speedup × the config space's efficiency spread), so the
    # hard tiers engage; the work multiplier keeps the overdraft
    # forecast alarming until the KILL lands.
    tablet = CohortScenario(
        machine="tablet",
        app="x264",
        weight=3.0,
        runaway_fraction=0.1,
        runaway_waste=25.0,
        runaway_work_multiplier=3.0,
    )
    mobile = CohortScenario(
        machine="mobile",
        app="swaptions",
        weight=2.0,
        runaway_fraction=0.05,
        runaway_waste=25.0,
        runaway_work_multiplier=3.0,
    )
    server = CohortScenario(
        machine="server",
        app="streamcluster",
        weight=1.0,
        min_work=80.0,
        max_work=160.0,
        runaway_fraction=0.02,
        runaway_waste=20.0,
        runaway_work_multiplier=3.0,
    )
    if name == "smoke":
        return FleetScenario(
            name="smoke",
            cohorts=(
                replace(tablet, min_work=20.0, max_work=40.0),
                replace(mobile, min_work=20.0, max_work=40.0),
            ),
            devices=10_000.0,
            n_epochs=25,
            steps_per_epoch=2,
            arrivals="diurnal",
            mean_lifetime_epochs=10.0,
            max_concurrent=20_000,
            seed=seed,
        )
    if name == "city":
        return FleetScenario(
            name="city",
            cohorts=(tablet, mobile, server),
            devices=120_000.0,
            n_epochs=48,
            steps_per_epoch=4,
            arrivals="diurnal",
            max_concurrent=60_000,
            seed=seed,
        )
    if name == "million":
        return FleetScenario(
            name="million",
            cohorts=(tablet, mobile),
            devices=1_200_000.0,
            n_epochs=96,
            steps_per_epoch=4,
            arrivals="bursty",
            mean_lifetime_epochs=12.0,
            max_concurrent=100_000,
            seed=seed,
        )
    raise ValueError(f"unknown preset {name!r}")
