"""SessionPool: a cohort of JouleGuard sessions as numpy arrays.

One :class:`SessionPool` steps every session of a cohort in a handful
of vectorized operations instead of one
:class:`~repro.core.jouleguard.JouleGuardRuntime` +
:class:`~repro.enforce.ladder.EnforcementLadder` object pair per
session.  The state is struct-of-arrays: ``(n,)`` scalars (epsilon,
pole error, controller integral, budget ledgers, enforcement tier,
Kalman mean/variance of the per-step energy) and ``(n, C)`` Q-tables
(per-configuration rate/power EWMAs and the visited mask).

Equivalence is the design contract, not an aspiration: every update
uses the same expressions, in the same operand order, as the scalar
code in ``repro.core`` / ``repro.enforce`` / ``repro.service``, so a
row fed the same measurements makes bit-identical decisions.  Two RNG
modes trade fidelity for speed:

* ``mode="exact"`` keeps one ``numpy`` Generator per session, seeded
  ``seed + 1`` like the session manager, draws in the scalar call
  order (``random()``, then ``integers`` only when exploring) and
  computes the Eqn. 2 exponential per row via :func:`math.exp` —
  bit-exact against ``SessionManager.step``; used by the equivalence
  tests and CI smoke.
* ``mode="fast"`` uses one pooled generator and ``np.exp``, and
  computes the arm-selection priors in a factored operand order —
  deterministic given the pool seed and open/compact schedule, but the
  exploration stream differs from per-session scalar runs and the
  exponential / prior arithmetic may differ in the last ulp.  This is
  the fleet-simulation mode: stepping is two pooled draws plus array
  math.

The enforcement ladder runs as elementwise tier arithmetic
(:mod:`repro.enforce.vector`); DEGRADE/THROTTLE re-pin the safe
fallback exactly like
:meth:`~repro.core.jouleguard.JouleGuardRuntime.pin_safe_fallback`,
and KILL drops the row from the alive mask (terminal, as in the
scalar ladder).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..core.budget import remaining_arrays, target_energy_per_work_array
from ..core.contracts import check
from ..core.kalman import KalmanBank
from ..core.pole import pole_for_error_array
from ..core.vdbe import vdbe_difference_array
from ..enforce.ladder import (
    DEFAULT_LADDER,
    EnforcementLadder,
    LadderPolicy,
    OverdraftSignal,
    Tier,
)
from ..enforce.vector import (
    desired_tier_array,
    ladder_observe_array,
    overdraft_signal_arrays,
)
from ..enforce.vector import throttle_s_array as _throttle_s_array
from ..service.state import STATE_VERSION, SnapshotError, validate_state
from .cohort import CohortSpec

__all__ = ["FleetError", "SessionPool"]


class FleetError(RuntimeError):
    """An invalid operation on a session pool."""


def _require_finite_positive(name: str, values: np.ndarray) -> None:
    if not bool(np.all(np.isfinite(values) & (values > 0.0))):
        raise FleetError(f"{name} must be finite and positive")


class SessionPool:
    """Struct-of-arrays state for one cohort of sessions.

    Parameters
    ----------
    spec:
        The shared cohort tables (:class:`~repro.fleet.cohort.CohortSpec`).
    policy:
        Enforcement ladder thresholds; ``None`` disables enforcement
        (every session then runs Algorithm 1 unguarded).
    smoothing:
        EWMA weight of the manager's energy-per-work / step-energy
        smoothers (``SessionManager`` default 0.25).
    mode:
        ``"exact"`` or ``"fast"`` (see the module docstring).
    seed:
        Pool-level seed for the pooled ``"fast"`` exploration stream.
    """

    def __init__(
        self,
        spec: CohortSpec,
        policy: Optional[LadderPolicy] = DEFAULT_LADDER,
        smoothing: float = 0.25,
        mode: str = "fast",
        seed: int = 0,
        kalman_process_variance: float = 1e-2,
        kalman_measurement_variance: float = 1e-1,
    ) -> None:
        check(0.0 < smoothing <= 1.0, "smoothing must be in (0, 1]")
        if mode not in ("exact", "fast"):
            raise FleetError(f"unknown RNG mode {mode!r}")
        self.spec = spec
        self.policy = policy
        self.smoothing = smoothing
        self.mode = mode
        self._pool_rng = np.random.default_rng(seed)
        self._gens: List[np.random.Generator] = []
        c = spec.n_configs
        # Fast-mode selection scratch: the per-config efficiency shape
        # (scale-free) and a reusable (n, C) efficiency buffer.
        self._shape_eff = spec.rate_shape / spec.power_shape
        self._eff_scratch: Optional[np.ndarray] = None
        self._fpos_by_index = {
            int(index): position
            for position, index in enumerate(spec.frontier_indices)
        }

        def f64(n: int = 0) -> np.ndarray:
            return np.zeros(n, dtype=np.float64)

        def i64(n: int = 0) -> np.ndarray:
            return np.zeros(n, dtype=np.int64)

        def boolean(n: int = 0) -> np.ndarray:
            return np.zeros(n, dtype=bool)

        # Identity and ledgers.
        self.seeds = i64()
        self.steps = i64()
        self.total_work = f64()
        self.budget_j = f64()
        self.adjustment_j = f64()
        self.work_done = f64()
        self.energy_used_j = f64()
        # Learner (SEO) state.
        self.epsilon = f64()
        self.updates = i64()
        self.last_rate_delta = f64()
        self.rate_scale = f64()
        self.power_scale = f64()
        self.has_scale = boolean()
        self.rate_est = np.zeros((0, c), dtype=np.float64)
        self.power_est = np.zeros((0, c), dtype=np.float64)
        self.visited = np.zeros((0, c), dtype=bool)
        # Pole + controller.
        self.pole_delta = f64()
        self.ctrl_speedup = f64()
        self.goal_infeasible = boolean()
        # Manager-side smoothers and Kalman telemetry.
        self.recent_epw = f64()
        self.has_epw = boolean()
        self.recent_step_energy_j = f64()
        self.has_step_energy = boolean()
        self.energy_kalman = KalmanBank(
            0,
            process_variance=kalman_process_variance,
            measurement_variance=kalman_measurement_variance,
        )
        # Enforcement ladder.
        self.tier = i64()
        self.calm_streak = i64()
        self.tier_peak = i64()
        self.transition_count = i64()
        self.degrade_attempted = boolean()
        self.degraded = boolean()
        self.throttle_s = f64()
        # Last ladder observation per row (for TierTransition synthesis
        # and scalar ``_last_signal`` reconstruction on :meth:`evict`).
        self.last_overrun = f64()
        self.last_burn = f64()
        self.last_headroom = f64()
        self.has_signal = boolean()
        # Lifecycle.
        self.alive = boolean()
        self.killed = boolean()
        self.kill_step = i64()
        self.warm = boolean()
        # Decision (what each session should currently be running).
        self.d_sys = i64()
        self.d_fpos = i64()
        self.d_setpoint = f64()
        self.d_pole = f64()
        self.d_epsilon = f64()
        self.d_explored = boolean()
        self.d_feasible = boolean()
        # Fleet telemetry accumulators.
        self.accuracy_sum = f64()

    # -- sizes ---------------------------------------------------------
    @property
    def n(self) -> int:
        """Rows currently held (alive + not-yet-compacted dead)."""
        return int(self.steps.shape[0])

    @property
    def alive_count(self) -> int:
        return int(self.alive.sum())

    # -- decision views ------------------------------------------------
    @property
    def app_index(self) -> np.ndarray:
        """Per-session application configuration index (Eqn. 6)."""
        result: np.ndarray = self.spec.frontier_indices[self.d_fpos]
        return result

    @property
    def accuracy(self) -> np.ndarray:
        """Per-session accuracy of the current application config."""
        result: np.ndarray = self.spec.frontier_accuracies[self.d_fpos]
        return result

    @property
    def applied_speedup(self) -> np.ndarray:
        """Speedup of the current application config (not the setpoint)."""
        result: np.ndarray = self.spec.frontier_speedups[self.d_fpos]
        return result

    @property
    def app_power_factor(self) -> np.ndarray:
        result: np.ndarray = self.spec.frontier_power_factors[self.d_fpos]
        return result

    @property
    def complete(self) -> np.ndarray:
        """Sessions whose work is done (scalar ``accountant.complete``)."""
        result: np.ndarray = (
            np.maximum(0.0, self.total_work - self.work_done) <= 0.0
        )
        return result

    def _cold_best_index(self) -> int:
        """``seo.best_index`` before any update (scale 1, nothing visited).

        Same expression as ``SystemEnergyOptimizer._all_*_estimates``
        with ``scale = 1.0``, so the cold decision matches bit-for-bit.
        """
        rates = self.spec.rate_shape * 1.0 * self.spec.optimism
        powers = self.spec.power_shape * 1.0 / self.spec.optimism
        return int((rates / powers).argmax())

    # -- lifecycle -----------------------------------------------------
    def open(
        self,
        total_work: np.ndarray,
        seeds: np.ndarray,
        factors: Optional[np.ndarray] = None,
        budget_j: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Admit a batch of sessions; return their row indices.

        Budgets come either from explicit ``budget_j`` or from
        energy-reduction ``factors`` via the manager's admission
        arithmetic ``total_work * default_epw / factor`` (identical
        expression, so grants match a ``SessionManager`` bit-for-bit).
        """
        work = np.asarray(total_work, dtype=np.float64)
        seed_arr = np.asarray(seeds, dtype=np.int64)
        k = int(work.shape[0])
        if seed_arr.shape != (k,):
            raise FleetError("seeds must match total_work in length")
        _require_finite_positive("total_work", work)
        if (budget_j is None) == (factors is None):
            raise FleetError("pass exactly one of factors / budget_j")
        if budget_j is not None:
            budgets = np.asarray(budget_j, dtype=np.float64)
        else:
            factor_arr = np.asarray(factors, dtype=np.float64)
            if bool((factor_arr < 1.0).any()):
                raise FleetError("factors must be >= 1")
            budgets = work * self.spec.default_epw / factor_arr
        if budgets.shape != (k,):
            raise FleetError("budgets must match total_work in length")
        _require_finite_positive("budget_j", budgets)

        start = self.n
        self._grow(k)
        rows = np.arange(start, start + k, dtype=np.int64)
        self.seeds[rows] = seed_arr
        self.total_work[rows] = work
        self.budget_j[rows] = budgets
        self.alive[rows] = True
        self.epsilon[rows] = 1.0
        self.kill_step[rows] = -1
        self.ctrl_speedup[rows] = self.spec.min_speedup
        self.d_sys[rows] = self._cold_best_index()
        self.d_fpos[rows] = 0
        self.d_setpoint[rows] = self.spec.min_speedup
        self.d_epsilon[rows] = 1.0
        self.d_feasible[rows] = True
        if self.mode == "exact":
            for seed in seed_arr:
                self._gens.append(
                    np.random.default_rng(int(seed) + 1)
                )
        return rows

    def _grow(self, k: int) -> None:
        c = self.spec.n_configs

        def cat(base: np.ndarray) -> np.ndarray:
            if base.ndim == 2:
                extra: np.ndarray = np.zeros((k, c), dtype=base.dtype)
            else:
                extra = np.zeros(k, dtype=base.dtype)
            return np.concatenate([base, extra])

        for name in _ROW_ARRAYS:
            setattr(self, name, cat(getattr(self, name)))
        self.energy_kalman.extend(k)

    def close_rows(self, rows: np.ndarray) -> None:
        """Retire sessions (client close / churn) — not a kill."""
        self.alive[rows] = False

    def compact(self) -> np.ndarray:
        """Drop dead rows; return the kept rows' previous indices."""
        keep = self.alive.copy()
        kept = np.flatnonzero(keep)
        for name in _ROW_ARRAYS:
            setattr(self, name, getattr(self, name)[keep])
        self.energy_kalman.keep(keep)
        if self.mode == "exact":
            self._gens = [
                gen for gen, k in zip(self._gens, keep) if bool(k)
            ]
        return kept

    # -- scalar <-> vector migration -----------------------------------
    def adopt(
        self,
        runtime: Any,
        *,
        seed: int = 0,
        steps: int = 0,
        ladder: Optional[EnforcementLadder] = None,
        recent_epw: Optional[float] = None,
        recent_step_energy_j: Optional[float] = None,
        degraded: bool = False,
        throttle_s: float = 0.0,
        warm: bool = False,
    ) -> int:
        """Lower a live scalar session into the pool; return its row.

        ``runtime`` is a :class:`~repro.core.jouleguard.JouleGuardRuntime`
        mid-life; its learner tables, scale calibration, pole error,
        controller integral, budget ledgers, and pending decision are
        copied into a fresh row, and — in ``"exact"`` mode — its
        exploration Generator is *transferred* into the pool so the
        pooled draws continue the scalar stream bit-for-bit (the pool
        draws in the scalar call order).  ``ladder`` and the keyword
        smoothers carry the manager-side state
        (:class:`~repro.service.sessions.SessionManager` step path).
        :meth:`evict` reverses the move; the round trip is exact, so a
        session can migrate between representations mid-life without
        perturbing its trajectory.

        Raises :class:`FleetError` when the session cannot be
        represented by this cohort's shared tables (mismatched priors,
        frontier, learner parameters, or ladder policy) — callers fall
        back to scalar stepping.
        """
        spec = self.spec
        seo = runtime.seo
        if seo.n_configs != spec.n_configs:
            raise FleetError(
                "session's configuration space does not match the cohort"
            )
        if (
            seo.alpha != spec.alpha
            or seo.optimism != spec.optimism
            or not np.array_equal(seo._rate_shape, spec.rate_shape)
            or not np.array_equal(seo._power_shape, spec.power_shape)
        ):
            raise FleetError(
                "session's SEO priors do not match the cohort spec"
            )
        vdbe = seo.vdbe
        if (
            vdbe.sigma != spec.vdbe_sigma
            or vdbe.alpha != spec.vdbe_alpha
            or vdbe.relative != spec.vdbe_relative
            or vdbe.min_weight != spec.vdbe_min_weight
        ):
            raise FleetError(
                "session's VDBE parameters do not match the cohort spec"
            )
        pole = runtime.pole_adapter
        if (
            pole.margin != spec.pole_margin
            or pole.smoothing != spec.pole_smoothing
        ):
            raise FleetError(
                "session's pole parameters do not match the cohort spec"
            )
        controller = runtime.controller
        if (
            controller.min_speedup != spec.min_speedup
            or controller.max_speedup != spec.max_speedup
        ):
            raise FleetError(
                "session's controller clamp does not match the cohort spec"
            )
        if runtime.feasibility_slack != spec.feasibility_slack:
            raise FleetError(
                "session's feasibility slack does not match the cohort spec"
            )
        frontier = runtime.table.pareto_frontier
        if len(frontier) != spec.n_frontier or any(
            config.index != int(spec.frontier_indices[p])
            or config.speedup != float(spec.frontier_speedups[p])
            for p, config in enumerate(frontier)
        ):
            raise FleetError(
                "session's application frontier does not match the cohort"
            )
        if (ladder is None) != (self.policy is None) or (
            ladder is not None and ladder.policy != self.policy
        ):
            raise FleetError(
                "session's ladder policy does not match the pool"
            )
        decision = runtime.current_decision
        fpos = self._fpos_by_index.get(
            int(getattr(decision.app_config, "index", -1))
        )
        if fpos is None:
            raise FleetError(
                "session's application configuration is not on the frontier"
            )

        row = self.n
        self._grow(1)
        goal = runtime.accountant.goal
        self.seeds[row] = int(seed)
        self.steps[row] = int(steps)
        self.total_work[row] = goal.total_work
        self.budget_j[row] = goal.budget_j
        self.adjustment_j[row] = runtime.accountant.adjustment_j
        self.work_done[row] = runtime.accountant.work_done
        self.energy_used_j[row] = runtime.accountant.energy_used_j
        self.rate_est[row] = seo._rate_est
        self.power_est[row] = seo._power_est
        self.visited[row] = seo._visited
        has_scale = seo._rate_scale is not None
        self.has_scale[row] = has_scale
        self.rate_scale[row] = seo._rate_scale if has_scale else 0.0
        self.power_scale[row] = seo._power_scale if has_scale else 0.0
        self.epsilon[row] = vdbe.epsilon
        self.updates[row] = seo.updates
        self.last_rate_delta[row] = seo.last_rate_delta
        self.pole_delta[row] = pole.delta
        self.ctrl_speedup[row] = controller.speedup
        self.goal_infeasible[row] = bool(runtime.goal_reported_infeasible)
        self.recent_epw[row] = (
            0.0 if recent_epw is None else float(recent_epw)
        )
        self.has_epw[row] = recent_epw is not None
        self.recent_step_energy_j[row] = (
            0.0
            if recent_step_energy_j is None
            else float(recent_step_energy_j)
        )
        self.has_step_energy[row] = recent_step_energy_j is not None
        if ladder is not None:
            self.tier[row] = int(ladder.tier)
            self.calm_streak[row] = ladder._calm_streak
            self.tier_peak[row] = int(ladder.tier)
            self.transition_count[row] = len(ladder.transitions)
            self.degrade_attempted[row] = ladder.degrade_attempted
            signal = ladder._last_signal
            if signal is not None:
                self.last_overrun[row] = signal.projected_overrun
                self.last_burn[row] = signal.burn_fraction
                self.last_headroom[row] = signal.headroom_steps
                self.has_signal[row] = True
        self.degraded[row] = bool(degraded)
        self.throttle_s[row] = float(throttle_s)
        self.alive[row] = True
        self.kill_step[row] = -1
        self.warm[row] = bool(warm)
        self.d_sys[row] = decision.system_index
        self.d_fpos[row] = fpos
        self.d_setpoint[row] = decision.speedup_setpoint
        self.d_pole[row] = decision.pole
        self.d_epsilon[row] = decision.epsilon
        self.d_explored[row] = decision.explored
        self.d_feasible[row] = decision.feasible
        if self.mode == "exact":
            self._gens.append(seo._rng)
        return row

    def evict(
        self,
        row: int,
        runtime: Any,
        ladder: Optional[EnforcementLadder] = None,
    ) -> Dict[str, Any]:
        """Raise a row back into its scalar objects; retire the row.

        The inverse of :meth:`adopt`: learner tables, scales, epsilon,
        pole error, controller integral, ledgers, and the pending
        decision are written back into ``runtime`` (and the tier /
        calm-streak / last-signal into ``ladder``), the exploration
        Generator is handed back in ``"exact"`` mode, and the row is
        marked dead for the next :meth:`compact`.  Returns the
        manager-side fields the caller owns (step count, smoothers,
        degraded/throttle flags, kill status).

        Works on killed rows too, so a session killed while pooled can
        be written back before its close/report.  Per-step artifacts the
        pool does not keep — the accountant's energy trace, the decision
        history, per-transition ladder records — are the caller's to
        maintain while the session is pooled (the service engine writes
        them through per flush); only the *latest* state is restored
        here.
        """
        if not 0 <= row < self.n:
            raise FleetError(f"row {row} out of range")
        from ..core.jouleguard import Decision

        seo = runtime.seo
        seo._rate_est = self.rate_est[row].copy()
        seo._power_est = self.power_est[row].copy()
        seo._visited = self.visited[row].copy()
        if bool(self.has_scale[row]):
            seo._rate_scale = float(self.rate_scale[row])
            seo._power_scale = float(self.power_scale[row])
        else:
            seo._rate_scale = None
            seo._power_scale = None
        seo.vdbe.epsilon = float(self.epsilon[row])
        seo.updates = int(self.updates[row])
        seo.last_rate_delta = float(self.last_rate_delta[row])
        if self.mode == "exact":
            seo._rng = self._gens[row]
        runtime.pole_adapter._delta = float(self.pole_delta[row])
        runtime.controller.speedup = float(self.ctrl_speedup[row])
        accountant = runtime.accountant
        accountant.work_done = float(self.work_done[row])
        accountant.energy_used_j = float(self.energy_used_j[row])
        accountant.adjustment_j = float(self.adjustment_j[row])
        runtime.goal_reported_infeasible = bool(self.goal_infeasible[row])
        decision = Decision(
            system_index=int(self.d_sys[row]),
            app_config=runtime.table.pareto_frontier[
                int(self.d_fpos[row])
            ],
            speedup_setpoint=float(self.d_setpoint[row]),
            pole=float(self.d_pole[row]),
            epsilon=float(self.d_epsilon[row]),
            explored=bool(self.d_explored[row]),
            feasible=bool(self.d_feasible[row]),
        )
        runtime._decision = decision
        runtime._decisions.append(decision)
        if ladder is not None:
            ladder.tier = Tier(int(self.tier[row]))
            ladder._calm_streak = int(self.calm_streak[row])
            ladder.degrade_attempted = bool(self.degrade_attempted[row])
            signal = self.last_signal(row)
            if signal is not None:
                ladder._last_signal = signal
        self.alive[row] = False
        return {
            "steps": int(self.steps[row]),
            "recent_epw": (
                float(self.recent_epw[row])
                if bool(self.has_epw[row])
                else None
            ),
            "recent_step_energy_j": (
                float(self.recent_step_energy_j[row])
                if bool(self.has_step_energy[row])
                else None
            ),
            "degraded": bool(self.degraded[row]),
            "throttle_s": float(self.throttle_s[row]),
            "killed": bool(self.killed[row]),
            "kill_step": int(self.kill_step[row]),
        }

    def last_signal(self, row: int) -> Optional[OverdraftSignal]:
        """The row's last ladder observation as a scalar signal."""
        if not bool(self.has_signal[row]):
            return None
        return OverdraftSignal(
            projected_overrun=float(self.last_overrun[row]),
            burn_fraction=float(self.last_burn[row]),
            headroom_steps=float(self.last_headroom[row]),
        )

    # -- Algorithm 1 + ladder, vectorized ------------------------------
    def step(
        self,
        work: np.ndarray,
        energy_j: np.ndarray,
        rate: np.ndarray,
        power_w: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Fold one measurement per alive session; advance every loop.

        Mirrors ``SessionManager.step`` (healthy-sensor path) +
        ``JouleGuardRuntime.step`` + the enforcement ladder, phase by
        phase; dead rows' inputs are ignored.  An optional ``mask``
        restricts the step to a subset of rows (the vectorized service
        backend steps only sessions with a pending request); unmasked
        rows are untouched, exactly as dead rows are.  In ``"fast"``
        mode the pooled exploration stream still consumes one draw per
        row regardless of the mask, so it depends only on the
        open/compact schedule.
        """
        m = self.alive
        if mask is not None:
            m = m & np.asarray(mask, dtype=bool)
        if not bool(m.any()):
            raise FleetError("no live sessions to step")
        spec = self.spec
        n = self.n
        rows = np.flatnonzero(m)
        work = np.where(m, np.asarray(work, dtype=np.float64), 1.0)
        energy_j = np.where(
            m, np.asarray(energy_j, dtype=np.float64), 1.0
        )
        rate = np.where(m, np.asarray(rate, dtype=np.float64), 1.0)
        power_w = np.where(
            m, np.asarray(power_w, dtype=np.float64), 1.0
        )
        _require_finite_positive("work", work)
        _require_finite_positive("rate", rate)
        _require_finite_positive("power_w", power_w)
        if not bool(np.all(np.isfinite(energy_j) & (energy_j >= 0.0))):
            raise FleetError("energy_j must be finite and >= 0")

        self.steps = np.where(m, self.steps + 1, self.steps)
        # Healthy feedback below DEGRADE clears the degraded flag, as
        # the session manager does at the top of its step.
        self.degraded = self.degraded & ~(
            m & (self.tier < int(Tier.DEGRADE))
        )

        # Manager smoothing: energy-per-work EWMA (before the runtime).
        epw = energy_j / work
        self.recent_epw = np.where(
            m,
            np.where(
                self.has_epw,
                self.recent_epw + self.smoothing * (epw - self.recent_epw),
                epw,
            ),
            self.recent_epw,
        )
        self.has_epw = self.has_epw | m

        # 1. Update models at the previously selected arm (Eqn. 1).
        j = self.d_sys
        every_row = np.arange(n)
        applied = spec.frontier_speedups[self.d_fpos]
        system_rate = rate / applied
        vis_j = self.visited[every_row, j]
        est_r_j = self.rate_est[every_row, j]
        est_p_j = self.power_est[every_row, j]
        scale_r = np.where(self.has_scale, self.rate_scale, 1.0)
        scale_p = np.where(self.has_scale, self.power_scale, 1.0)
        prior_rate = np.where(
            vis_j, est_r_j, spec.rate_shape[j] * scale_r * spec.optimism
        )
        prior_power = np.where(
            vis_j, est_p_j, spec.power_shape[j] * scale_p / spec.optimism
        )
        estimated_eff = prior_rate / prior_power
        last_delta = np.abs(system_rate / prior_rate - 1.0)
        self.last_rate_delta = np.where(
            m, last_delta, self.last_rate_delta
        )

        # Global scale calibration (blend 0.25 after the first sample).
        rate_ratio = system_rate / spec.rate_shape[j]
        power_ratio = power_w / spec.power_shape[j]
        blend = 0.25
        self.rate_scale = np.where(
            m,
            np.where(
                self.has_scale,
                self.rate_scale + blend * (rate_ratio - self.rate_scale),
                rate_ratio,
            ),
            self.rate_scale,
        )
        self.power_scale = np.where(
            m,
            np.where(
                self.has_scale,
                self.power_scale
                + blend * (power_ratio - self.power_scale),
                power_ratio,
            ),
            self.power_scale,
        )
        self.has_scale = self.has_scale | m

        # Per-arm EWMA seeded from the calibrated prior.
        seeded_r = np.where(vis_j, est_r_j, prior_rate)
        seeded_p = np.where(vis_j, est_p_j, prior_power)
        q_rate = seeded_r + spec.alpha * (system_rate - seeded_r)
        q_power = seeded_p + spec.alpha * (power_w - seeded_p)
        self.rate_est[rows, j[rows]] = q_rate[rows]
        self.power_est[rows, j[rows]] = q_power[rows]
        self.visited[rows, j[rows]] = True

        # Eqn. 2: VDBE epsilon.
        measured_eff = system_rate / power_w
        difference = vdbe_difference_array(
            measured_eff, estimated_eff, relative=spec.vdbe_relative
        )
        exponent = -np.abs(spec.vdbe_alpha * difference) / spec.vdbe_sigma
        if self.mode == "exact":
            x = np.empty(n, dtype=np.float64)
            x[rows] = [math.exp(exponent[i]) for i in rows]
            x[~m] = 1.0
        else:
            x = np.exp(exponent)
        rho = (1.0 - x) / (1.0 + x)
        w = spec.vdbe_weight
        self.epsilon = np.where(
            m, w * rho + (1.0 - w) * self.epsilon, self.epsilon
        )
        self.updates = self.updates + m.astype(np.int64)

        # Eqns. 10-11: adaptive pole from the learner's error.
        self.pole_delta = np.where(
            m,
            spec.pole_smoothing * self.pole_delta
            + (1.0 - spec.pole_smoothing) * last_delta,
            self.pole_delta,
        )
        pole = pole_for_error_array(self.pole_delta, spec.pole_margin)

        # Budget bookkeeping (accountant.record + Kalman telemetry).
        self.work_done = np.where(m, self.work_done + work, self.work_done)
        self.energy_used_j = np.where(
            m, self.energy_used_j + energy_j, self.energy_used_j
        )
        self.energy_kalman.update(energy_j, mask=m)

        # 2. Select the next arm (Eqn. 3 with epsilon-greedy VDBE).
        rand, rand_index = self._draw(m)
        explored = rand < self.epsilon
        scale_r = np.where(self.has_scale, self.rate_scale, 1.0)
        scale_p = np.where(self.has_scale, self.power_scale, 1.0)
        if self.mode == "exact":
            # Bit-exact operand order: build the full prior matrices
            # exactly as ``SystemEnergyOptimizer`` does per session.
            rate_all = (
                spec.rate_shape[None, :]
                * scale_r[:, None]
                * spec.optimism
            )
            power_all = (
                spec.power_shape[None, :]
                * scale_p[:, None]
                / spec.optimism
            )
            rate_all = np.where(self.visited, self.rate_est, rate_all)
            power_all = np.where(self.visited, self.power_est, power_all)
            best = (rate_all / power_all).argmax(axis=1).astype(np.int64)
            selected = np.where(explored, rand_index, best)
            est_rate = rate_all[every_row, selected]
            est_power = power_all[every_row, selected]
        else:
            # Fast path: the unvisited prior efficiency factors into a
            # per-config shape times a per-row scale multiplier, so one
            # (n, C) buffer is filled with two masked writes instead of
            # materializing both prior matrices.  Algebraically equal
            # to the exact path; may differ in the last ulp.
            eff = self._eff_scratch
            if eff is None or eff.shape != self.visited.shape:
                eff = np.empty_like(self.rate_est)
                self._eff_scratch = eff
            np.divide(
                self.rate_est, self.power_est, out=eff, where=self.visited
            )
            prior_mult = (scale_r / scale_p) * (
                spec.optimism * spec.optimism
            )
            np.multiply(
                self._shape_eff[None, :],
                prior_mult[:, None],
                out=eff,
                where=~self.visited,
            )
            best = eff.argmax(axis=1).astype(np.int64)
            selected = np.where(explored, rand_index, best)
            sel_vis = self.visited[every_row, selected]
            est_rate = np.where(
                sel_vis,
                self.rate_est[every_row, selected],
                spec.rate_shape[selected] * scale_r * spec.optimism,
            )
            est_power = np.where(
                sel_vis,
                self.power_est[every_row, selected],
                spec.power_shape[selected] * scale_p / spec.optimism,
            )

        # 4. Remaining-budget target -> required rate -> Eqn. 5.
        remaining_work, remaining_energy = remaining_arrays(
            self.total_work,
            self.work_done,
            self.budget_j + self.adjustment_j,
            self.energy_used_j,
        )
        target, complete, exhausted = target_energy_per_work_array(
            remaining_work, remaining_energy
        )
        needed = est_power / np.where(target > 0.0, target, 1.0)
        reachable = est_rate * spec.max_speedup * spec.feasibility_slack
        saturate = (~complete) & (~exhausted) & (needed > reachable)
        integrate = (~complete) & (~exhausted) & ~(needed > reachable)
        error = needed - rate
        unclamped = self.ctrl_speedup + (1.0 - pole) * error / est_rate
        stepped = np.minimum(
            np.maximum(unclamped, spec.min_speedup), spec.max_speedup
        )
        new_ctrl = np.where(
            saturate,
            spec.max_speedup,
            np.where(integrate, stepped, self.ctrl_speedup),
        )
        self.ctrl_speedup = np.where(m, new_ctrl, self.ctrl_speedup)
        setpoint = np.where(
            complete,
            self.ctrl_speedup,
            np.where(
                exhausted | saturate, spec.max_speedup, stepped
            ),
        )
        feasible = np.where(
            complete, self.d_feasible, ~(exhausted | saturate)
        )
        self.goal_infeasible = self.goal_infeasible | (
            m & (~complete) & (exhausted | saturate)
        )

        # 5. Eqn. 6: most accurate frontier config at the setpoint.
        fpos = np.minimum(
            np.searchsorted(
                spec.frontier_speedups, setpoint, side="left"
            ),
            spec.n_frontier - 1,
        ).astype(np.int64)
        fpos = np.where(complete, self.d_fpos, fpos)

        self.d_sys = np.where(m, selected, self.d_sys)
        self.d_fpos = np.where(m, fpos, self.d_fpos)
        self.d_setpoint = np.where(m, setpoint, self.d_setpoint)
        self.d_pole = np.where(m, pole, self.d_pole)
        self.d_epsilon = np.where(m, self.epsilon, self.d_epsilon)
        self.d_explored = np.where(m, explored, self.d_explored)
        self.d_feasible = np.where(m, feasible, self.d_feasible)

        if self.policy is not None:
            self._enforce(m, rows, energy_j, best)

        self.accuracy_sum = np.where(
            m,
            self.accuracy_sum + spec.frontier_accuracies[self.d_fpos],
            self.accuracy_sum,
        )

    def _draw(
        self, m: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Exploration draws: (uniform, candidate index) per row.

        ``exact`` replays each session's private stream in the scalar
        call order; ``fast`` consumes one pooled vector of each kind
        for the whole pool (dead rows included, so the stream only
        depends on the open/compact schedule).
        """
        n = self.n
        c = self.spec.n_configs
        if self.mode == "fast":
            rand = self._pool_rng.random(n)
            rand_index = self._pool_rng.integers(
                0, c, size=n, dtype=np.int64
            )
            return rand, rand_index
        rand = np.ones(n, dtype=np.float64)
        rand_index = np.zeros(n, dtype=np.int64)
        for i in np.flatnonzero(m):
            gen = self._gens[i]
            value = float(gen.random())
            rand[i] = value
            if value < self.epsilon[i]:
                rand_index[i] = int(gen.integers(c))
        return rand, rand_index

    def _enforce(
        self,
        m: np.ndarray,
        rows: np.ndarray,
        energy_j: np.ndarray,
        best: np.ndarray,
    ) -> None:
        """One ladder observation per alive row; apply the tier."""
        assert self.policy is not None
        spec = self.spec
        self.recent_step_energy_j = np.where(
            m,
            np.where(
                self.has_step_energy,
                self.recent_step_energy_j
                + self.smoothing
                * (energy_j - self.recent_step_energy_j),
                energy_j,
            ),
            self.recent_step_energy_j,
        )
        self.has_step_energy = self.has_step_energy | m

        remaining_work, remaining_energy = remaining_arrays(
            self.total_work,
            self.work_done,
            self.budget_j + self.adjustment_j,
            self.energy_used_j,
        )
        overrun, burn, headroom = overdraft_signal_arrays(
            self.budget_j + self.adjustment_j,
            self.energy_used_j,
            remaining_work,
            remaining_energy,
            self.recent_epw,
            self.recent_step_energy_j,
        )
        self.last_overrun = np.where(m, overrun, self.last_overrun)
        self.last_burn = np.where(m, burn, self.last_burn)
        self.last_headroom = np.where(m, headroom, self.last_headroom)
        self.has_signal = self.has_signal | m
        desired = desired_tier_array(self.policy, overrun, burn, headroom)
        new_tier, new_calm = ladder_observe_array(
            self.policy, self.tier, self.calm_streak, desired
        )
        changed = m & (new_tier != self.tier)
        self.transition_count = self.transition_count + changed.astype(
            np.int64
        )
        self.tier = np.where(m, new_tier, self.tier)
        self.calm_streak = np.where(m, new_calm, self.calm_streak)
        self.tier_peak = np.maximum(self.tier_peak, self.tier)
        self.degrade_attempted = self.degrade_attempted | (
            m & (self.tier >= int(Tier.DEGRADE))
        )

        # DEGRADE/THROTTLE: re-pin the safe fallback every enforced
        # step (pin_safe_fallback), exactly as the manager does.
        pinned = (
            m
            & (self.tier >= int(Tier.DEGRADE))
            & (self.tier < int(Tier.KILL))
        )
        if bool(pinned.any()):
            self.degraded = self.degraded | pinned
            self.ctrl_speedup = np.where(
                pinned, spec.max_speedup, self.ctrl_speedup
            )
            self.d_sys = np.where(pinned, best, self.d_sys)
            self.d_fpos = np.where(
                pinned, spec.n_frontier - 1, self.d_fpos
            )
            self.d_setpoint = np.where(
                pinned, spec.max_speedup, self.d_setpoint
            )
            self.d_explored = np.where(pinned, False, self.d_explored)

        self.throttle_s = np.where(
            m,
            _throttle_s_array(self.policy, self.tier, overrun),
            self.throttle_s,
        )

        killing = m & (self.tier == int(Tier.KILL))
        if bool(killing.any()):
            self.killed = self.killed | killing
            self.kill_step = np.where(killing, self.steps, self.kill_step)
            self.alive = self.alive & ~killing

    # -- snapshots ------------------------------------------------------
    def capture_snapshot(self, row: int) -> Dict[str, Any]:
        """One session's learned state as a warm-start document.

        Interoperates with :mod:`repro.service.state`: the result
        passes ``validate_state`` and can warm-start a scalar
        :class:`~repro.core.jouleguard.JouleGuardRuntime` via
        ``apply_state`` (and vice versa via :meth:`load_snapshot`).
        """
        spec = self.spec
        seo: Dict[str, Any] = {
            "alpha": spec.alpha,
            "optimism": spec.optimism,
            "rate_shape": spec.rate_shape.tolist(),
            "power_shape": spec.power_shape.tolist(),
            "rate_est": self.rate_est[row].tolist(),
            "power_est": self.power_est[row].tolist(),
            "visited": [bool(flag) for flag in self.visited[row]],
            "rate_scale": (
                float(self.rate_scale[row])
                if bool(self.has_scale[row])
                else None
            ),
            "power_scale": (
                float(self.power_scale[row])
                if bool(self.has_scale[row])
                else None
            ),
            "vdbe": {
                "n_configs": spec.n_configs,
                "sigma": spec.vdbe_sigma,
                "alpha": spec.vdbe_alpha,
                "relative": spec.vdbe_relative,
                "min_weight": spec.vdbe_min_weight,
                "epsilon": float(self.epsilon[row]),
            },
            "updates": int(self.updates[row]),
            "last_rate_delta": float(self.last_rate_delta[row]),
            "rng_state": None,
        }
        return {
            "version": STATE_VERSION,
            "machine": spec.machine_name,
            "app": spec.app_name,
            "n_configs": spec.n_configs,
            "updates": int(self.updates[row]),
            "learned": {
                "seo": seo,
                "pole": {
                    "margin": spec.pole_margin,
                    "smoothing": spec.pole_smoothing,
                    "delta": float(self.pole_delta[row]),
                },
                "controller": {
                    "min_speedup": spec.min_speedup,
                    "max_speedup": spec.max_speedup,
                    "speedup": float(self.ctrl_speedup[row]),
                },
            },
        }

    def load_snapshot(
        self, rows: np.ndarray, state: Mapping[str, Any]
    ) -> None:
        """Warm-start rows from a learned-state document.

        The cohort analogue of ``apply_state`` + ``restore_learned``:
        learner tables, scales, epsilon, pole error, and the
        controller integral are broadcast to every row, and the
        pending decision is refreshed to the learned argmax.  The
        snapshot's learner parameters must match the cohort spec —
        the pool stores those per cohort, not per session.
        """
        spec = self.spec
        document = validate_state(state)
        if document["machine"] != spec.machine_name:
            raise SnapshotError(
                f"snapshot is for machine {document['machine']!r}, "
                f"not {spec.machine_name!r}"
            )
        if document["app"] != spec.app_name:
            raise SnapshotError(
                f"snapshot is for app {document['app']!r}, "
                f"not {spec.app_name!r}"
            )
        if int(document["n_configs"]) != spec.n_configs:
            raise SnapshotError(
                "snapshot covers a different configuration space "
                f"({document['n_configs']} vs {spec.n_configs} configs)"
            )
        learned = document["learned"]
        seo = learned["seo"]
        vdbe = seo["vdbe"]
        pole = learned["pole"]
        mismatches = [
            ("alpha", float(seo["alpha"]), spec.alpha),
            ("optimism", float(seo["optimism"]), spec.optimism),
            ("vdbe.sigma", float(vdbe["sigma"]), spec.vdbe_sigma),
            ("vdbe.alpha", float(vdbe["alpha"]), spec.vdbe_alpha),
            (
                "vdbe.min_weight",
                float(vdbe["min_weight"]),
                spec.vdbe_min_weight,
            ),
            ("pole.margin", float(pole["margin"]), spec.pole_margin),
            (
                "pole.smoothing",
                float(pole["smoothing"]),
                spec.pole_smoothing,
            ),
        ]
        for label, got, expected in mismatches:
            if got != expected:
                raise SnapshotError(
                    f"snapshot {label} {got!r} does not match the "
                    f"cohort spec value {expected!r}"
                )
        if bool(vdbe["relative"]) != spec.vdbe_relative:
            raise SnapshotError(
                "snapshot vdbe.relative does not match the cohort spec"
            )
        rate_est = np.asarray(seo["rate_est"], dtype=np.float64)
        power_est = np.asarray(seo["power_est"], dtype=np.float64)
        visited = np.asarray(seo["visited"], dtype=bool)
        if rate_est.shape != (spec.n_configs,):
            raise SnapshotError(
                "snapshot tables do not match the configuration space"
            )
        self.rate_est[rows] = rate_est
        self.power_est[rows] = power_est
        self.visited[rows] = visited
        has_scale = seo["rate_scale"] is not None
        self.has_scale[rows] = has_scale
        self.rate_scale[rows] = (
            float(seo["rate_scale"]) if has_scale else 0.0
        )
        self.power_scale[rows] = (
            float(seo["power_scale"]) if has_scale else 0.0
        )
        self.epsilon[rows] = float(vdbe["epsilon"])
        self.updates[rows] = int(seo["updates"])
        self.last_rate_delta[rows] = float(seo["last_rate_delta"])
        self.pole_delta[rows] = float(pole["delta"])
        controller = learned["controller"]
        speedup = float(
            min(
                max(float(controller["speedup"]), spec.min_speedup),
                spec.max_speedup,
            )
        )
        self.ctrl_speedup[rows] = speedup
        self.warm[rows] = True
        # Refresh the pending decision, as restore_learned does.
        scale_r = self.rate_scale[rows] if has_scale else 1.0
        scale_p = self.power_scale[rows] if has_scale else 1.0
        rate_all = (
            spec.rate_shape[None, :]
            * np.atleast_1d(scale_r)[:, None]
            * spec.optimism
        )
        power_all = (
            spec.power_shape[None, :]
            * np.atleast_1d(scale_p)[:, None]
            / spec.optimism
        )
        rate_all = np.where(self.visited[rows], self.rate_est[rows], rate_all)
        power_all = np.where(
            self.visited[rows], self.power_est[rows], power_all
        )
        best = (rate_all / power_all).argmax(axis=1).astype(np.int64)
        self.d_sys[rows] = best
        fpos = min(
            int(
                np.searchsorted(
                    spec.frontier_speedups, speedup, side="left"
                )
            ),
            spec.n_frontier - 1,
        )
        self.d_fpos[rows] = fpos
        self.d_setpoint[rows] = speedup
        self.d_pole[rows] = pole_for_error_array(
            self.pole_delta[rows], spec.pole_margin
        )
        self.d_epsilon[rows] = self.epsilon[rows]
        self.d_explored[rows] = False
        self.d_feasible[rows] = True


#: Per-row state arrays resized together on open/compact.
_ROW_ARRAYS = (
    "seeds",
    "steps",
    "total_work",
    "budget_j",
    "adjustment_j",
    "work_done",
    "energy_used_j",
    "epsilon",
    "updates",
    "last_rate_delta",
    "rate_scale",
    "power_scale",
    "has_scale",
    "rate_est",
    "power_est",
    "visited",
    "pole_delta",
    "ctrl_speedup",
    "goal_infeasible",
    "recent_epw",
    "has_epw",
    "recent_step_energy_j",
    "has_step_energy",
    "tier",
    "calm_streak",
    "tier_peak",
    "transition_count",
    "degrade_attempted",
    "degraded",
    "throttle_s",
    "last_overrun",
    "last_burn",
    "last_headroom",
    "has_signal",
    "alive",
    "killed",
    "kill_step",
    "warm",
    "d_sys",
    "d_fpos",
    "d_setpoint",
    "d_pole",
    "d_epsilon",
    "d_explored",
    "d_feasible",
    "accuracy_sum",
)
