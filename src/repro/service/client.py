"""Blocking client library and load generator for the daemon.

:class:`ServiceClient` is the reference protocol implementation for
callers that live outside the daemon's event loop: it speaks the
JSON-lines protocol over TCP or a Unix socket with a timeout on every
operation, raises :class:`ServiceError` with the server's structured
error code, and exposes one method per request type.

On top of it, :func:`drive_synthetic_session` closes the loop the way
:func:`repro.runtime.harness.run_jouleguard` does — but with the
*client* owning the (simulated) platform and the *daemon* owning the
controller — and :func:`run_load` drives N such clients concurrently
to measure sessions/sec and step-latency percentiles.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..apps import build_application
from ..core.types import Measurement
from ..hw import PlatformSimulator, get_machine
from ..hw.simulator import NoiseModel
from ..runtime.oracle import default_energy_per_work
from .protocol import (
    MAX_BATCH_STEPS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    measurement_payload,
)

__all__ = [
    "BatchStepResult",
    "LoadReport",
    "OpenedSession",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "SessionKilledError",
    "SessionRun",
    "drive_synthetic_session",
    "run_load",
]


class ServiceError(RuntimeError):
    """A structured error returned by the daemon."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class SessionKilledError(ServiceError):
    """The daemon's enforcement ladder terminated the session.

    Raised by :meth:`ServiceClient.step` when the step response says
    ``killed``.  The session is already closed daemon-side with its
    budget retired; :attr:`report` is its final report.
    """

    def __init__(self, report: Dict[str, Any]) -> None:
        session = report.get("session", "?")
        super().__init__(
            "session_killed",
            f"session {session} was killed by the enforcement ladder",
        )
        self.report = report


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter for lossy transports.

    Attempt *n* (zero-based) sleeps ``base_delay_s * 2**n`` capped at
    ``max_delay_s``, shrunk by up to ``jitter`` (a fraction in [0, 1])
    drawn from a ``random.Random(seed)`` stream so retry schedules are
    reproducible.  Only transport failures are retried; structured
    :class:`ServiceError` responses mean the daemon answered and are
    raised immediately.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError(
                "delays must satisfy 0 <= base_delay_s <= max_delay_s"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """The backoff before retry ``attempt`` (zero-based)."""
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        return delay * (1.0 - self.jitter * rng.random())


@dataclass(frozen=True)
class OpenedSession:
    """The daemon's answer to ``open_session``."""

    session: str
    warm: bool
    granted_budget_j: float
    decision: Dict[str, Any]


@dataclass(frozen=True)
class BatchStepResult:
    """The daemon's answer to one ``batch_step`` frame (protocol v3).

    ``decisions`` holds one decision payload (with its ``enforcement``
    attached, like :meth:`ServiceClient.step` returns) per *applied*
    measurement.  A mid-batch KILL truncates the batch: ``killed`` is
    True, ``report`` carries the final (budget-retired) session
    report, and ``decisions`` covers only the heartbeats the session
    survived.
    """

    decisions: List[Dict[str, Any]]
    killed: bool = False
    report: Optional[Dict[str, Any]] = None

    @property
    def completed(self) -> int:
        """Heartbeats applied (the kill entry does not count)."""
        return len(self.decisions)


class ServiceClient:
    """Blocking JSON-lines client for one daemon connection.

    Parameters
    ----------
    host / port:
        TCP address of the daemon (mutually exclusive with
        ``unix_path``).
    unix_path:
        Unix-socket path of the daemon.
    timeout_s:
        Socket timeout applied to connect and to every request.
    handshake:
        Send ``hello`` on connect and verify the protocol version.
    retry:
        Optional :class:`RetryPolicy`.  When given, every request
        carries an idempotency id (``rid``), transport failures trigger
        reconnect + resend with exponential backoff, and the daemon's
        rid cache guarantees a retried ``step`` is not executed twice.
        ``None`` (the default) keeps the historical fail-fast behavior:
        a dropped connection raises :class:`ConnectionError`.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout_s: float = 30.0,
        handshake: bool = True,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if (unix_path is None) == (host is None):
            raise ValueError(
                "give either host/port (TCP) or unix_path, not both"
            )
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if host is not None and port is None:
            raise ValueError("TCP needs an explicit port")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout_s = timeout_s
        self.retry = retry
        self.retries = 0
        self.reconnects = 0
        self._retry_rng = (
            random.Random(retry.seed) if retry is not None else None
        )
        self._rid_token = uuid.uuid4().hex[:12]
        self._rid_counter = itertools.count()
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._connect()
        self.server_stats: Dict[str, Any] = {}
        if handshake:
            self.server_stats = self.hello()

    # -- transport -------------------------------------------------------------
    def _connect(self) -> None:
        if self.unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self.timeout_s)
            self._sock.connect(self.unix_path)
        else:
            assert self.port is not None
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        self._file = self._sock.makefile("rwb")

    def _drop_connection(self) -> None:
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        # Teardown of an already-broken transport: close errors carry
        # no information the caller can act on.
        if file is not None:
            with contextlib.suppress(OSError):
                file.close()
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    def _next_rid(self) -> str:
        return f"{self._rid_token}-{next(self._rid_counter)}"

    def _request_once(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip on the live connection."""
        if self._file is None:
            self._connect()
            self.reconnects += 1
        assert self._file is not None
        self._file.write(encode_message(payload))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = decode_message(line)
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("code", "internal")),
                str(error.get("message", "unspecified error")),
            )
        return response

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip; raises on error envelopes.

        With a :class:`RetryPolicy`, a ``rid`` is attached and transport
        failures (dropped connections, timeouts) are retried with
        backoff; resends reuse the same ``rid`` so the daemon replays
        the cached response rather than re-executing the operation.
        """
        if self.retry is None:
            return self._request_once(payload)
        assert self._retry_rng is not None
        payload = dict(payload)
        payload.setdefault("rid", self._next_rid())
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.retries += 1
                time.sleep(self.retry.delay_s(attempt - 1, self._retry_rng))
            try:
                return self._request_once(payload)
            except ServiceError:
                raise  # the daemon answered; retrying cannot help
            except OSError as exc:  # includes ConnectionError, timeouts
                last_error = exc
                self._drop_connection()
        raise ConnectionError(
            f"request failed after {self.retry.max_attempts} attempts"
        ) from last_error

    def close_connection(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close_connection()

    # -- one method per request type -------------------------------------------
    def hello(self) -> Dict[str, Any]:
        return self.request(
            {"type": "hello", "version": PROTOCOL_VERSION}
        )

    def open_session(
        self,
        machine: str,
        app: str,
        factor: float,
        total_work: float,
        seed: int = 0,
        warm_start: bool = True,
        client_name: str = "",
    ) -> OpenedSession:
        response = self.request(
            {
                "type": "open_session",
                "machine": machine,
                "app": app,
                "factor": factor,
                "total_work": total_work,
                "seed": seed,
                "warm_start": warm_start,
                "client": client_name,
            }
        )
        return OpenedSession(
            session=response["session"],
            warm=response["warm"],
            granted_budget_j=response["granted_budget_j"],
            decision=response["decision"],
        )

    def step(
        self, session: str, measurement: Measurement
    ) -> Dict[str, Any]:
        """Send one heartbeat; return the next decision payload.

        Raises :class:`SessionKilledError` (carrying the final report)
        when the daemon's enforcement ladder terminated the session
        instead of answering with a decision.
        """
        response = self.request(
            {
                "type": "step",
                "session": session,
                "measurement": measurement_payload(measurement),
            }
        )
        if response.get("killed", False):
            raise SessionKilledError(response.get("report", {}))
        decision = dict(response["decision"])
        decision["enforcement"] = response.get(
            "enforcement", {"tier": "nominal", "throttle_s": 0.0}
        )
        return decision

    def step_batch(
        self,
        session: str,
        measurements: List[Measurement],
        sensor_ok: Optional[List[bool]] = None,
    ) -> BatchStepResult:
        """Send N heartbeats in one frame (protocol v3).

        Returns a :class:`BatchStepResult` rather than raising on a
        kill: a mid-batch KILL still carries the decisions of the
        heartbeats that were applied, which the caller usually wants.
        """
        if not measurements:
            raise ValueError("need at least one measurement")
        if len(measurements) > MAX_BATCH_STEPS:
            raise ValueError(
                f"batch of {len(measurements)} exceeds the protocol "
                f"limit of {MAX_BATCH_STEPS}"
            )
        if sensor_ok is not None and len(sensor_ok) != len(measurements):
            raise ValueError(
                "sensor_ok must have one flag per measurement"
            )
        payload = [
            measurement_payload(
                measurement,
                sensor_ok=True if sensor_ok is None else sensor_ok[i],
            )
            for i, measurement in enumerate(measurements)
        ]
        response = self.request(
            {
                "type": "batch_step",
                "session": session,
                "measurements": payload,
            }
        )
        decisions: List[Dict[str, Any]] = []
        report: Optional[Dict[str, Any]] = None
        for entry in response.get("results", []):
            if entry.get("killed", False):
                report = entry.get("report", {})
                break
            decision = dict(entry["decision"])
            decision["enforcement"] = entry.get(
                "enforcement", {"tier": "nominal", "throttle_s": 0.0}
            )
            decisions.append(decision)
        return BatchStepResult(
            decisions=decisions,
            killed=bool(response.get("killed", False)),
            report=report,
        )

    def request_pipeline(
        self, payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Write K requests back-to-back, then read the K responses.

        Protocol v3 guarantees responses arrive in request order, so
        the result list lines up with ``payloads`` by position.  Raw
        response envelopes are returned — including error envelopes —
        because with several requests in flight, raising on the first
        error would discard the answers behind it.  Retry policies do
        not apply here: a transport failure mid-pipeline raises
        :class:`ConnectionError` and the caller decides what to replay.
        """
        if not payloads:
            return []
        if self._file is None:
            self._connect()
            self.reconnects += 1
        assert self._file is not None
        for payload in payloads:
            self._file.write(encode_message(payload))
        self._file.flush()
        responses: List[Dict[str, Any]] = []
        for _ in payloads:
            line = self._file.readline(MAX_LINE_BYTES + 2)
            if not line:
                raise ConnectionError(
                    "daemon closed the connection mid-pipeline"
                )
            responses.append(decode_message(line))
        return responses

    def report(self, session: str) -> Dict[str, Any]:
        return self.request({"type": "report", "session": session})[
            "report"
        ]

    def snapshot(self, session: str) -> Dict[str, Any]:
        """Ask the daemon to persist this session's learned state."""
        return self.request({"type": "snapshot", "session": session})[
            "state"
        ]

    def close(self, session: str) -> Dict[str, Any]:
        return self.request({"type": "close", "session": session})[
            "report"
        ]

    def metrics(self) -> List[Dict[str, Any]]:
        """The daemon's metric samples (name/labels/value dicts)."""
        return self.request({"type": "metrics"})["samples"]

    def events(
        self, since: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Events newer than ``since``; returns ``(events, cursor)``.

        Pass the returned cursor back as ``since`` to poll without
        re-reading (the dashboard's loop).
        """
        response = self.request({"type": "events", "since": since})
        return response["events"], int(response["next"])


# -- synthetic closed loop ----------------------------------------------------
@dataclass
class SessionRun:
    """Outcome of one synthetic client session.

    ``steps`` is what was *requested*; ``steps_completed`` counts the
    heartbeats the daemon actually applied (fewer on a kill).  With
    batching, ``step_latencies_s`` holds one round-trip latency per
    *frame*, not per heartbeat — divide by the batch size for an
    amortized per-step figure.
    """

    session: str
    warm: bool
    steps: int
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    step_latencies_s: List[float] = field(default_factory=list)
    report: Dict[str, Any] = field(default_factory=dict)
    state: Optional[Dict[str, Any]] = None
    killed: bool = False
    steps_completed: int = 0

    def convergence_step(self, epsilon_threshold: float = 0.2) -> int:
        """First step whose decision has ε below the threshold.

        Counts the iterations spent exploring before the learner
        settles; a warm-started session should converge in strictly
        fewer iterations than a cold one.  Returns ``steps`` when the
        run never converged.
        """
        for index, decision in enumerate(self.decisions):
            if decision["epsilon"] < epsilon_threshold:
                return index
        return self.steps


class _SimMeasurements:
    """Full-fidelity client platform: one simulator iteration per step."""

    def __init__(
        self,
        machine: str,
        app: str,
        seed: int,
        noise: Optional[NoiseModel],
    ) -> None:
        machine_model = get_machine(machine)
        application = build_application(app)
        self._simulator = PlatformSimulator(
            machine_model,
            application.resource_profile,
            noise=noise if noise is not None else NoiseModel(),
            seed=seed,
        )
        self._space = machine_model.space
        self.work_per_iteration = application.work_per_iteration

    def next(self, decision: Dict[str, Any]) -> Measurement:
        result = self._simulator.run_iteration(
            config=self._space[decision["system_index"]],
            work=self.work_per_iteration,
            app_speedup=decision["app_speedup"],
            app_power_factor=decision["app_power_factor"],
        )
        return Measurement(
            work=result.work,
            energy_j=result.measured_power_w * result.time_s,
            rate=result.measured_rate,
            power_w=result.measured_power_w,
        )


class _FastMeasurements:
    """Cheap load-generation heartbeats (microseconds, not a simulator).

    Throughput benchmarking wants the *daemon* on the critical path,
    not the load generator's platform simulation — the same reason
    HTTP load tools replay canned requests instead of rendering pages.
    Heartbeats spend a seeded jitter around 90% of the session's
    per-work budget, so sessions stay comfortably inside their energy
    goal (no kills or throttles distorting the measurement) while the
    controller still sees plausible, varying feedback.
    """

    def __init__(
        self, machine: str, app: str, factor: float, seed: int
    ) -> None:
        machine_model = get_machine(machine)
        application = build_application(app)
        self.work_per_iteration = application.work_per_iteration
        epw = default_energy_per_work(machine_model, application)
        self._target_epw = epw / max(factor, 1.0) * 0.9
        self._rng = random.Random(seed)
        self._slice_s = 0.05

    def next(self, decision: Dict[str, Any]) -> Measurement:
        work = self.work_per_iteration
        jitter = 0.95 + 0.1 * self._rng.random()
        energy_j = self._target_epw * work * jitter
        return Measurement(
            work=work,
            energy_j=energy_j,
            rate=work / self._slice_s,
            power_w=energy_j / self._slice_s,
        )


def drive_synthetic_session(
    client: ServiceClient,
    machine: str,
    app: str,
    factor: float,
    steps: int,
    seed: int = 0,
    warm_start: bool = True,
    take_snapshot: bool = False,
    close: bool = True,
    noise: Optional[NoiseModel] = None,
    client_name: str = "synthetic",
    batch: int = 1,
    fast: bool = False,
) -> SessionRun:
    """Run one closed loop with the daemon deciding, the client acting.

    The client simulates the platform locally (seeded with ``seed``,
    exactly like the in-process harness) and feeds measured heartbeats
    to the daemon, which answers with the next decision.  ``seed``
    therefore pins the *whole* loop: same seed, same daemon state →
    identical decision trace, replicating
    :func:`repro.runtime.repeat.replicate` against the service.

    ``batch > 1`` switches to protocol v3 batched frames: the client
    runs up to ``batch`` iterations under the current decision, ships
    them in one ``batch_step``, and actuates the last returned
    decision — amortized control, trading per-heartbeat reactivity
    for round trips.  ``fast=True`` swaps the platform simulator for
    a cheap seeded heartbeat source (load generation only; see
    :class:`_FastMeasurements`).
    """
    if steps < 1:
        raise ValueError("need at least one step")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    source = (
        _FastMeasurements(machine, app, factor, seed)
        if fast
        else _SimMeasurements(machine, app, seed, noise)
    )

    opened = client.open_session(
        machine=machine,
        app=app,
        factor=factor,
        total_work=steps * source.work_per_iteration,
        seed=seed,
        warm_start=warm_start,
        client_name=client_name,
    )
    run = SessionRun(
        session=opened.session, warm=opened.warm, steps=steps
    )
    decision = opened.decision
    run.decisions.append(decision)
    remaining = steps
    while remaining > 0:
        chunk = min(batch, remaining)
        measurements = [source.next(decision) for _ in range(chunk)]
        sent_s = time.perf_counter()
        if chunk == 1:
            try:
                decision = client.step(run.session, measurements[0])
            except SessionKilledError as exc:
                # The daemon terminated the session (hard budget
                # bound); its final report is the run's report.
                run.killed = True
                run.report = exc.report
                run.step_latencies_s.append(
                    time.perf_counter() - sent_s
                )
                return run
            run.step_latencies_s.append(time.perf_counter() - sent_s)
            run.decisions.append(decision)
            run.steps_completed += 1
        else:
            result = client.step_batch(run.session, measurements)
            run.step_latencies_s.append(time.perf_counter() - sent_s)
            run.decisions.extend(result.decisions)
            run.steps_completed += result.completed
            if result.killed:
                run.killed = True
                run.report = result.report or {}
                return run
            if result.decisions:
                decision = result.decisions[-1]
        remaining -= chunk
    if take_snapshot:
        run.state = client.snapshot(run.session)
    if close:
        run.report = client.close(run.session)
    else:
        run.report = client.report(run.session)
    return run


# -- load generation ----------------------------------------------------------
@dataclass(frozen=True)
class LoadReport:
    """Aggregate results of one load-generation run.

    ``client_steps_per_s`` is each client's own throughput (its step
    count over the wall-clock of the whole run); the spread between
    min and max exposes unfair scheduling that the aggregate
    ``steps_per_s`` hides.

    ``elapsed_s`` — and every rate derived from it — covers only the
    *measurement window*: all clients connect and handshake first,
    rendezvous on a barrier, and the clock starts when the barrier
    releases.  Connection setup (reported separately as ``setup_s``)
    scales with client count, so folding it into the window would make
    the 1-client and 32-client rows incomparable.  With ``batch > 1``
    the latency percentiles are per *frame* (one round trip carrying
    ``batch`` heartbeats), not per heartbeat.
    """

    n_clients: int
    steps_per_client: int
    total_steps: int
    elapsed_s: float
    sessions_per_s: float
    steps_per_s: float
    p50_step_latency_s: float
    p95_step_latency_s: float
    p99_step_latency_s: float
    client_steps_per_s: List[float]
    errors: int
    batch: int = 1
    setup_s: float = 0.0

    @property
    def mean_client_steps_per_s(self) -> float:
        if not self.client_steps_per_s:
            return 0.0
        return sum(self.client_steps_per_s) / len(
            self.client_steps_per_s
        )

    def as_dict(self) -> Dict[str, Any]:
        per_client = self.client_steps_per_s
        return {
            "n_clients": self.n_clients,
            "steps_per_client": self.steps_per_client,
            "batch": self.batch,
            "total_steps": self.total_steps,
            "elapsed_s": self.elapsed_s,
            "setup_s": self.setup_s,
            "sessions_per_s": self.sessions_per_s,
            "steps_per_s": self.steps_per_s,
            "p50_step_latency_ms": self.p50_step_latency_s * 1e3,
            "p95_step_latency_ms": self.p95_step_latency_s * 1e3,
            "p99_step_latency_ms": self.p99_step_latency_s * 1e3,
            "client_steps_per_s_mean": self.mean_client_steps_per_s,
            "client_steps_per_s_min": min(per_client, default=0.0),
            "client_steps_per_s_max": max(per_client, default=0.0),
            "errors": self.errors,
        }


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _connect_kwargs(
    host: Optional[str],
    port: Optional[int],
    unix_path: Optional[str],
    timeout_s: float,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    return {
        "host": host,
        "port": port,
        "unix_path": unix_path,
        "timeout_s": timeout_s,
        "retry": retry,
    }


def run_load(
    n_clients: int,
    steps: int,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
    host: Optional[str] = None,
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    base_seed: int = 0,
    timeout_s: float = 60.0,
    retry: Optional[RetryPolicy] = None,
    batch: int = 1,
    fast: bool = False,
) -> LoadReport:
    """Drive ``n_clients`` concurrent synthetic sessions; aggregate.

    Each client thread connects and handshakes first, then all threads
    rendezvous on a barrier before any session opens — the measurement
    clock starts at the barrier release, so ``elapsed_s`` (and every
    derived rate) excludes connection setup.  Each thread runs one
    session (seeded ``base_seed + index`` so runs replicate), steps it
    to completion, and closes.  Latency percentiles are over all step
    round trips (per batched frame when ``batch > 1``).
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    steps_done = [0] * n_clients
    failures: List[Optional[str]] = [None] * n_clients
    # n_clients workers + the coordinating thread; a worker that fails
    # to connect still waits (in its finally) so nobody deadlocks.
    barrier = threading.Barrier(n_clients + 1)

    def _one(index: int) -> None:
        client: Optional[ServiceClient] = None
        try:
            client = ServiceClient(
                **_connect_kwargs(host, port, unix_path, timeout_s, retry)
            )
        except (ServiceError, ConnectionError, OSError) as exc:
            failures[index] = str(exc)
        finally:
            barrier.wait()
        if client is None:
            return
        try:
            run = drive_synthetic_session(
                client,
                machine=machine,
                app=app,
                factor=factor,
                steps=steps,
                seed=base_seed + index,
                client_name=f"load-{index}",
                batch=batch,
                fast=fast,
            )
            latencies[index] = run.step_latencies_s
            steps_done[index] = run.steps_completed
        except (ServiceError, ConnectionError, OSError) as exc:
            failures[index] = str(exc)
        finally:
            client.close_connection()

    threads = [
        threading.Thread(target=_one, args=(index,), daemon=True)
        for index in range(n_clients)
    ]
    setup_started_s = time.perf_counter()
    for thread in threads:
        thread.start()
    barrier.wait()
    started_s = time.perf_counter()
    setup_s = started_s - setup_started_s
    for thread in threads:
        thread.join()
    elapsed_s = max(time.perf_counter() - started_s, 1e-9)

    flat = [value for chunk in latencies for value in chunk]
    total_steps = sum(steps_done)
    completed = sum(1 for failure in failures if failure is None)
    return LoadReport(
        n_clients=n_clients,
        steps_per_client=steps,
        total_steps=total_steps,
        elapsed_s=elapsed_s,
        sessions_per_s=completed / elapsed_s,
        steps_per_s=total_steps / elapsed_s,
        p50_step_latency_s=_percentile(flat, 0.50),
        p95_step_latency_s=_percentile(flat, 0.95),
        p99_step_latency_s=_percentile(flat, 0.99),
        client_steps_per_s=[
            count / elapsed_s for count in steps_done
        ],
        errors=sum(1 for failure in failures if failure is not None),
        batch=batch,
        setup_s=setup_s,
    )
