"""Blocking client library and load generator for the daemon.

:class:`ServiceClient` is the reference protocol implementation for
callers that live outside the daemon's event loop: it speaks the
JSON-lines protocol over TCP or a Unix socket with a timeout on every
operation, raises :class:`ServiceError` with the server's structured
error code, and exposes one method per request type.

On top of it, :func:`drive_synthetic_session` closes the loop the way
:func:`repro.runtime.harness.run_jouleguard` does — but with the
*client* owning the (simulated) platform and the *daemon* owning the
controller — and :func:`run_load` drives N such clients concurrently
to measure sessions/sec and step-latency percentiles.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..apps import build_application
from ..core.types import Measurement
from ..hw import PlatformSimulator, get_machine
from ..hw.simulator import NoiseModel
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    measurement_payload,
)

__all__ = [
    "LoadReport",
    "OpenedSession",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "SessionKilledError",
    "SessionRun",
    "drive_synthetic_session",
    "run_load",
]


class ServiceError(RuntimeError):
    """A structured error returned by the daemon."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class SessionKilledError(ServiceError):
    """The daemon's enforcement ladder terminated the session.

    Raised by :meth:`ServiceClient.step` when the step response says
    ``killed``.  The session is already closed daemon-side with its
    budget retired; :attr:`report` is its final report.
    """

    def __init__(self, report: Dict[str, Any]) -> None:
        session = report.get("session", "?")
        super().__init__(
            "session_killed",
            f"session {session} was killed by the enforcement ladder",
        )
        self.report = report


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter for lossy transports.

    Attempt *n* (zero-based) sleeps ``base_delay_s * 2**n`` capped at
    ``max_delay_s``, shrunk by up to ``jitter`` (a fraction in [0, 1])
    drawn from a ``random.Random(seed)`` stream so retry schedules are
    reproducible.  Only transport failures are retried; structured
    :class:`ServiceError` responses mean the daemon answered and are
    raised immediately.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError(
                "delays must satisfy 0 <= base_delay_s <= max_delay_s"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """The backoff before retry ``attempt`` (zero-based)."""
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        return delay * (1.0 - self.jitter * rng.random())


@dataclass(frozen=True)
class OpenedSession:
    """The daemon's answer to ``open_session``."""

    session: str
    warm: bool
    granted_budget_j: float
    decision: Dict[str, Any]


class ServiceClient:
    """Blocking JSON-lines client for one daemon connection.

    Parameters
    ----------
    host / port:
        TCP address of the daemon (mutually exclusive with
        ``unix_path``).
    unix_path:
        Unix-socket path of the daemon.
    timeout_s:
        Socket timeout applied to connect and to every request.
    handshake:
        Send ``hello`` on connect and verify the protocol version.
    retry:
        Optional :class:`RetryPolicy`.  When given, every request
        carries an idempotency id (``rid``), transport failures trigger
        reconnect + resend with exponential backoff, and the daemon's
        rid cache guarantees a retried ``step`` is not executed twice.
        ``None`` (the default) keeps the historical fail-fast behavior:
        a dropped connection raises :class:`ConnectionError`.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout_s: float = 30.0,
        handshake: bool = True,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if (unix_path is None) == (host is None):
            raise ValueError(
                "give either host/port (TCP) or unix_path, not both"
            )
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if host is not None and port is None:
            raise ValueError("TCP needs an explicit port")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout_s = timeout_s
        self.retry = retry
        self.retries = 0
        self.reconnects = 0
        self._retry_rng = (
            random.Random(retry.seed) if retry is not None else None
        )
        self._rid_token = uuid.uuid4().hex[:12]
        self._rid_counter = itertools.count()
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._connect()
        self.server_stats: Dict[str, Any] = {}
        if handshake:
            self.server_stats = self.hello()

    # -- transport -------------------------------------------------------------
    def _connect(self) -> None:
        if self.unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self.timeout_s)
            self._sock.connect(self.unix_path)
        else:
            assert self.port is not None
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        self._file = self._sock.makefile("rwb")

    def _drop_connection(self) -> None:
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        # Teardown of an already-broken transport: close errors carry
        # no information the caller can act on.
        if file is not None:
            with contextlib.suppress(OSError):
                file.close()
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()

    def _next_rid(self) -> str:
        return f"{self._rid_token}-{next(self._rid_counter)}"

    def _request_once(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip on the live connection."""
        if self._file is None:
            self._connect()
            self.reconnects += 1
        assert self._file is not None
        self._file.write(encode_message(payload))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = decode_message(line)
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("code", "internal")),
                str(error.get("message", "unspecified error")),
            )
        return response

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip; raises on error envelopes.

        With a :class:`RetryPolicy`, a ``rid`` is attached and transport
        failures (dropped connections, timeouts) are retried with
        backoff; resends reuse the same ``rid`` so the daemon replays
        the cached response rather than re-executing the operation.
        """
        if self.retry is None:
            return self._request_once(payload)
        assert self._retry_rng is not None
        payload = dict(payload)
        payload.setdefault("rid", self._next_rid())
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.retries += 1
                time.sleep(self.retry.delay_s(attempt - 1, self._retry_rng))
            try:
                return self._request_once(payload)
            except ServiceError:
                raise  # the daemon answered; retrying cannot help
            except OSError as exc:  # includes ConnectionError, timeouts
                last_error = exc
                self._drop_connection()
        raise ConnectionError(
            f"request failed after {self.retry.max_attempts} attempts"
        ) from last_error

    def close_connection(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close_connection()

    # -- one method per request type -------------------------------------------
    def hello(self) -> Dict[str, Any]:
        return self.request(
            {"type": "hello", "version": PROTOCOL_VERSION}
        )

    def open_session(
        self,
        machine: str,
        app: str,
        factor: float,
        total_work: float,
        seed: int = 0,
        warm_start: bool = True,
        client_name: str = "",
    ) -> OpenedSession:
        response = self.request(
            {
                "type": "open_session",
                "machine": machine,
                "app": app,
                "factor": factor,
                "total_work": total_work,
                "seed": seed,
                "warm_start": warm_start,
                "client": client_name,
            }
        )
        return OpenedSession(
            session=response["session"],
            warm=response["warm"],
            granted_budget_j=response["granted_budget_j"],
            decision=response["decision"],
        )

    def step(
        self, session: str, measurement: Measurement
    ) -> Dict[str, Any]:
        """Send one heartbeat; return the next decision payload.

        Raises :class:`SessionKilledError` (carrying the final report)
        when the daemon's enforcement ladder terminated the session
        instead of answering with a decision.
        """
        response = self.request(
            {
                "type": "step",
                "session": session,
                "measurement": measurement_payload(measurement),
            }
        )
        if response.get("killed", False):
            raise SessionKilledError(response.get("report", {}))
        decision = dict(response["decision"])
        decision["enforcement"] = response.get(
            "enforcement", {"tier": "nominal", "throttle_s": 0.0}
        )
        return decision

    def report(self, session: str) -> Dict[str, Any]:
        return self.request({"type": "report", "session": session})[
            "report"
        ]

    def snapshot(self, session: str) -> Dict[str, Any]:
        """Ask the daemon to persist this session's learned state."""
        return self.request({"type": "snapshot", "session": session})[
            "state"
        ]

    def close(self, session: str) -> Dict[str, Any]:
        return self.request({"type": "close", "session": session})[
            "report"
        ]

    def metrics(self) -> List[Dict[str, Any]]:
        """The daemon's metric samples (name/labels/value dicts)."""
        return self.request({"type": "metrics"})["samples"]

    def events(
        self, since: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Events newer than ``since``; returns ``(events, cursor)``.

        Pass the returned cursor back as ``since`` to poll without
        re-reading (the dashboard's loop).
        """
        response = self.request({"type": "events", "since": since})
        return response["events"], int(response["next"])


# -- synthetic closed loop ----------------------------------------------------
@dataclass
class SessionRun:
    """Outcome of one synthetic client session."""

    session: str
    warm: bool
    steps: int
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    step_latencies_s: List[float] = field(default_factory=list)
    report: Dict[str, Any] = field(default_factory=dict)
    state: Optional[Dict[str, Any]] = None
    killed: bool = False

    def convergence_step(self, epsilon_threshold: float = 0.2) -> int:
        """First step whose decision has ε below the threshold.

        Counts the iterations spent exploring before the learner
        settles; a warm-started session should converge in strictly
        fewer iterations than a cold one.  Returns ``steps`` when the
        run never converged.
        """
        for index, decision in enumerate(self.decisions):
            if decision["epsilon"] < epsilon_threshold:
                return index
        return self.steps


def drive_synthetic_session(
    client: ServiceClient,
    machine: str,
    app: str,
    factor: float,
    steps: int,
    seed: int = 0,
    warm_start: bool = True,
    take_snapshot: bool = False,
    close: bool = True,
    noise: Optional[NoiseModel] = None,
    client_name: str = "synthetic",
) -> SessionRun:
    """Run one closed loop with the daemon deciding, the client acting.

    The client simulates the platform locally (seeded with ``seed``,
    exactly like the in-process harness) and feeds measured heartbeats
    to the daemon, which answers with the next decision.  ``seed``
    therefore pins the *whole* loop: same seed, same daemon state →
    identical decision trace, replicating
    :func:`repro.runtime.repeat.replicate` against the service.
    """
    if steps < 1:
        raise ValueError("need at least one step")
    machine_model = get_machine(machine)
    application = build_application(app)
    simulator = PlatformSimulator(
        machine_model,
        application.resource_profile,
        noise=noise if noise is not None else NoiseModel(),
        seed=seed,
    )
    space = machine_model.space

    opened = client.open_session(
        machine=machine,
        app=app,
        factor=factor,
        total_work=steps * application.work_per_iteration,
        seed=seed,
        warm_start=warm_start,
        client_name=client_name,
    )
    run = SessionRun(
        session=opened.session, warm=opened.warm, steps=steps
    )
    decision = opened.decision
    run.decisions.append(decision)
    for _ in range(steps):
        result = simulator.run_iteration(
            config=space[decision["system_index"]],
            work=application.work_per_iteration,
            app_speedup=decision["app_speedup"],
            app_power_factor=decision["app_power_factor"],
        )
        measurement = Measurement(
            work=result.work,
            energy_j=result.measured_power_w * result.time_s,
            rate=result.measured_rate,
            power_w=result.measured_power_w,
        )
        sent_s = time.perf_counter()
        try:
            decision = client.step(run.session, measurement)
        except SessionKilledError as exc:
            # The daemon terminated the session (hard budget bound);
            # its final report is the run's report.
            run.killed = True
            run.report = exc.report
            run.step_latencies_s.append(time.perf_counter() - sent_s)
            return run
        run.step_latencies_s.append(time.perf_counter() - sent_s)
        run.decisions.append(decision)
    if take_snapshot:
        run.state = client.snapshot(run.session)
    if close:
        run.report = client.close(run.session)
    else:
        run.report = client.report(run.session)
    return run


# -- load generation ----------------------------------------------------------
@dataclass(frozen=True)
class LoadReport:
    """Aggregate results of one load-generation run.

    ``client_steps_per_s`` is each client's own throughput (its step
    count over the wall-clock of the whole run); the spread between
    min and max exposes unfair scheduling that the aggregate
    ``steps_per_s`` hides.
    """

    n_clients: int
    steps_per_client: int
    total_steps: int
    elapsed_s: float
    sessions_per_s: float
    steps_per_s: float
    p50_step_latency_s: float
    p95_step_latency_s: float
    p99_step_latency_s: float
    client_steps_per_s: List[float]
    errors: int

    @property
    def mean_client_steps_per_s(self) -> float:
        if not self.client_steps_per_s:
            return 0.0
        return sum(self.client_steps_per_s) / len(
            self.client_steps_per_s
        )

    def as_dict(self) -> Dict[str, Any]:
        per_client = self.client_steps_per_s
        return {
            "n_clients": self.n_clients,
            "steps_per_client": self.steps_per_client,
            "total_steps": self.total_steps,
            "elapsed_s": self.elapsed_s,
            "sessions_per_s": self.sessions_per_s,
            "steps_per_s": self.steps_per_s,
            "p50_step_latency_ms": self.p50_step_latency_s * 1e3,
            "p95_step_latency_ms": self.p95_step_latency_s * 1e3,
            "p99_step_latency_ms": self.p99_step_latency_s * 1e3,
            "client_steps_per_s_mean": self.mean_client_steps_per_s,
            "client_steps_per_s_min": min(per_client, default=0.0),
            "client_steps_per_s_max": max(per_client, default=0.0),
            "errors": self.errors,
        }


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _connect_kwargs(
    host: Optional[str],
    port: Optional[int],
    unix_path: Optional[str],
    timeout_s: float,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, Any]:
    return {
        "host": host,
        "port": port,
        "unix_path": unix_path,
        "timeout_s": timeout_s,
        "retry": retry,
    }


def run_load(
    n_clients: int,
    steps: int,
    machine: str = "tablet",
    app: str = "x264",
    factor: float = 1.5,
    host: Optional[str] = None,
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    base_seed: int = 0,
    timeout_s: float = 60.0,
    retry: Optional[RetryPolicy] = None,
) -> LoadReport:
    """Drive ``n_clients`` concurrent synthetic sessions; aggregate.

    Each client thread opens its own connection and session (seeded
    ``base_seed + index`` so runs replicate), steps it to completion,
    and closes.  Latency percentiles are over all step round trips.
    """
    if n_clients < 1:
        raise ValueError("need at least one client")
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    failures: List[Optional[str]] = [None] * n_clients

    def _one(index: int) -> None:
        try:
            with ServiceClient(
                **_connect_kwargs(host, port, unix_path, timeout_s, retry)
            ) as client:
                run = drive_synthetic_session(
                    client,
                    machine=machine,
                    app=app,
                    factor=factor,
                    steps=steps,
                    seed=base_seed + index,
                    client_name=f"load-{index}",
                )
                latencies[index] = run.step_latencies_s
        except (ServiceError, ConnectionError, OSError) as exc:
            failures[index] = str(exc)

    threads = [
        threading.Thread(target=_one, args=(index,), daemon=True)
        for index in range(n_clients)
    ]
    started_s = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = max(time.perf_counter() - started_s, 1e-9)

    flat = [value for chunk in latencies for value in chunk]
    completed = sum(1 for failure in failures if failure is None)
    return LoadReport(
        n_clients=n_clients,
        steps_per_client=steps,
        total_steps=len(flat),
        elapsed_s=elapsed_s,
        sessions_per_s=completed / elapsed_s,
        steps_per_s=len(flat) / elapsed_s,
        p50_step_latency_s=_percentile(flat, 0.50),
        p95_step_latency_s=_percentile(flat, 0.95),
        p99_step_latency_s=_percentile(flat, 0.99),
        client_steps_per_s=[
            len(chunk) / elapsed_s for chunk in latencies
        ],
        errors=sum(1 for failure in failures if failure is not None),
    )
