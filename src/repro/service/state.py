"""Warm-start snapshots of learned JouleGuard state.

The expensive part of a JouleGuard run is what the SEO *learns*: the
per-configuration rate/power tables (Eqn. 1), the calibrated prior
scales, the VDBE exploration state (Eqn. 2), and the adaptive pole
(Eqns. 10–11).  A one-shot harness throws all of it away; the daemon
captures it here, keyed by ``(machine, app)``, so a new session for a
known pair starts from the learned efficiency argmax instead of
re-exploring the configuration space.

A snapshot is a plain JSON document::

    {"version": 1, "machine": "tablet", "app": "x264",
     "n_configs": 32, "updates": 183, "learned": {...}}

``version`` is the snapshot *format* version — :func:`loads_state` and
:func:`validate_state` reject documents from a different format, and
:func:`apply_state` additionally rejects identity or configuration-space
mismatches, so a daemon never silently warm-starts from foreign state.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.jouleguard import JouleGuardRuntime

__all__ = [
    "STATE_VERSION",
    "SnapshotError",
    "SnapshotStore",
    "SnapshotVersionError",
    "apply_state",
    "capture_state",
    "dumps_state",
    "loads_state",
    "validate_state",
]

#: Format version of learned-state snapshots.
STATE_VERSION = 1

_REQUIRED_FIELDS = ("version", "machine", "app", "n_configs", "learned")


class SnapshotError(ValueError):
    """A snapshot that cannot be applied (shape/identity mismatch)."""


class SnapshotVersionError(SnapshotError):
    """A snapshot from a different format version."""


def capture_state(
    runtime: JouleGuardRuntime, machine: str, app: str
) -> Dict[str, Any]:
    """Wrap a runtime's learned state with identity and version."""
    return {
        "version": STATE_VERSION,
        "machine": machine,
        "app": app,
        "n_configs": runtime.seo.n_configs,
        "updates": runtime.seo.updates,
        "learned": runtime.snapshot_learned(),
    }


def validate_state(state: Any) -> Dict[str, Any]:
    """Check a snapshot document's envelope; return it as a dict.

    Raises :class:`SnapshotVersionError` on a format-version mismatch
    and :class:`SnapshotError` on a malformed document.
    """
    if not isinstance(state, Mapping):
        raise SnapshotError("snapshot must be a JSON object")
    missing = [key for key in _REQUIRED_FIELDS if key not in state]
    if missing:
        raise SnapshotError(
            "snapshot is missing fields: " + ", ".join(missing)
        )
    version = state["version"]
    if version != STATE_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {version!r} != "
            f"supported version {STATE_VERSION}"
        )
    return dict(state)


def apply_state(
    runtime: JouleGuardRuntime,
    state: Mapping[str, Any],
    machine: Optional[str] = None,
    app: Optional[str] = None,
    seed: Optional[int] = None,
) -> None:
    """Warm-start ``runtime`` from a captured snapshot.

    ``machine``/``app``, when given, must match the snapshot's identity;
    ``seed`` reseeds SEO exploration so replicated sessions stay
    deterministic even when warm-started.
    """
    document = validate_state(state)
    for label, expected in (("machine", machine), ("app", app)):
        if expected is not None and document[label] != expected:
            raise SnapshotError(
                f"snapshot is for {label} {document[label]!r}, "
                f"not {expected!r}"
            )
    if int(document["n_configs"]) != runtime.seo.n_configs:
        raise SnapshotError(
            "snapshot covers a different system configuration space "
            f"({document['n_configs']} configs vs "
            f"{runtime.seo.n_configs})"
        )
    try:
        runtime.restore_learned(document["learned"], seed=seed)
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"corrupt learned state: {exc}") from exc


def dumps_state(state: Mapping[str, Any]) -> str:
    """Serialize a snapshot document to compact JSON."""
    return json.dumps(validate_state(state), separators=(",", ":"))


def loads_state(text: str) -> Dict[str, Any]:
    """Parse and validate a snapshot document (round-trip of dumps)."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"invalid snapshot JSON: {exc}") from exc
    return validate_state(document)


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


class SnapshotStore:
    """Warm-start snapshots keyed by ``(machine, app)``.

    In-memory by default; give a ``directory`` to persist each snapshot
    as ``<machine>__<app>.json`` so learned state survives daemon
    restarts.  Thread-safe: the daemon's event loop and a blocking
    caller (tests, tools) may share one store.

    A directory may also be shared by *several processes* (shard
    workers all pointed at one ``--state-dir``): writes go through an
    atomic same-directory rename, so a concurrent reader sees either
    the old or the new document — never a torn file — and
    :meth:`get` falls through to disk on a memory miss, so a snapshot
    taken by one worker warm-starts sessions on every other (and on a
    crashed worker's restarted successor).
    """

    def __init__(
        self, directory: Optional[pathlib.Path] = None
    ) -> None:
        self._lock = threading.Lock()
        self._states: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.skipped_files = 0
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load_directory()

    def _path_for(self, machine: str, app: str) -> pathlib.Path:
        assert self.directory is not None
        return self.directory / f"{_slug(machine)}__{_slug(app)}.json"

    def _load_directory(self) -> None:
        assert self.directory is not None
        for path in sorted(self.directory.glob("*.json")):
            try:
                state = loads_state(path.read_text(encoding="utf-8"))
            except (OSError, SnapshotError):
                # Foreign or stale file: skip it, but keep count so a
                # store that silently lost snapshots is observable.
                self.skipped_files += 1
                continue
            key = (str(state["machine"]), str(state["app"]))
            self._states[key] = state

    # -- mapping interface ----------------------------------------------------
    def put(self, state: Mapping[str, Any]) -> None:
        """Store (and optionally persist) one validated snapshot.

        Persistence is write-new-then-rename: ``os.replace`` within the
        store directory is atomic on POSIX, so two shard workers
        snapshotting the same ``(machine, app)`` pair cannot clobber
        each other into a torn file — last full document wins.
        """
        document = validate_state(state)
        key = (str(document["machine"]), str(document["app"]))
        with self._lock:
            self._states[key] = document
            if self.directory is not None:
                path = self._path_for(*key)
                scratch = path.with_suffix(
                    f".tmp-{os.getpid()}-{threading.get_ident()}"
                )
                scratch.write_text(
                    dumps_state(document), encoding="utf-8"
                )
                os.replace(scratch, path)

    def get(
        self, machine: str, app: str
    ) -> Optional[Dict[str, Any]]:
        """The stored snapshot for a pair, or None.

        With a directory configured, a memory miss re-reads the disk
        file: another process sharing the directory may have written
        the snapshot after this store loaded it (the cross-worker
        warm-start path).  A newer on-disk document also refreshes a
        stale memory copy only via this re-read when missing — within
        one process, memory is authoritative.
        """
        with self._lock:
            state = self._states.get((machine, app))
            if state is not None or self.directory is None:
                return state
            try:
                state = loads_state(
                    self._path_for(machine, app).read_text(
                        encoding="utf-8"
                    )
                )
            except FileNotFoundError:  # jglint: disable=JG009
                # Routine cold start: no snapshot for the pair yet.
                return None
            except (OSError, SnapshotError):
                # Unreadable or corrupt disk entry: a cold start too,
                # but counted like the directory-load skips.
                self.skipped_files += 1
                return None
            self._states[(machine, app)] = state
            return state

    def keys(self) -> List[Tuple[str, str]]:
        with self._lock:
            return sorted(self._states)

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        with self._lock:
            return key in self._states
