"""The JouleGuard daemon: an asyncio JSON-lines server.

One process hosts one :class:`~repro.service.sessions.SessionManager`
and serves the :mod:`repro.service.protocol` over TCP and/or a Unix
socket.  All session state lives on the event loop thread; request
handling is synchronous between awaits, so no locking is needed.  A
background reaper closes idle sessions on a fixed cadence.

Three entry points:

* :class:`ServiceServer` — the asyncio server object (``await
  server.start()`` inside a running loop);
* :func:`serve` — blocking convenience for the CLI (``python -m repro
  serve``), runs until interrupted;
* :class:`ServerThread` — context manager running a daemon in a
  background thread, for tests, benchmarks, and notebooks.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..obs.http import MetricsHTTPServer
from .protocol import (
    ProtocolError,
    batch_measurements_from_payload,
    decision_payload,
    decode_message,
    encode_message,
    error_response,
    measurement_from_payload,
    negotiate_version,
    ok_response,
    parse_request,
    request_id_of,
    sensor_ok_from_payload,
)
from .sessions import SessionError, SessionKilled, SessionManager
from .vexec import VexecEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.models import RequestChaos

__all__ = [
    "RID_CACHE_MAX",
    "ServerThread",
    "ServiceServer",
    "serve",
]

#: Upper bound on cached idempotent responses (oldest evicted first).
RID_CACHE_MAX = 1024


class ServiceServer:
    """Serves one :class:`SessionManager` over TCP and/or Unix sockets.

    Parameters
    ----------
    manager:
        The session manager to expose.
    host / port:
        TCP listening address; ``port=0`` picks a free port (see
        :attr:`tcp_address` after :meth:`start`).  ``host=None``
        disables TCP.
    unix_path:
        Unix-socket path; ``None`` disables the Unix listener.
    reap_interval_s:
        Cadence of the idle-session reaper.
    chaos:
        Optional :class:`~repro.faults.models.RequestChaos` injecting
        deterministic request/response drops and delays in front of the
        dispatcher (fault-injection testing only; ``None`` in
        production).
    metrics_host / metrics_port:
        When ``metrics_host`` is given, an HTTP endpoint serving
        ``GET /metrics`` (Prometheus text format, from the manager's
        telemetry registry) is hosted alongside the protocol listeners;
        ``metrics_port=0`` picks a free port (see
        :attr:`metrics_address` after :meth:`start`).
    admin:
        Serve the ``admin_*`` verbs (protocol v3) the shard router
        uses to lease budget and drive the global rebalance.  Enabled
        only on shard workers, whose sockets face the router rather
        than untrusted clients.
    exec_mode:
        ``"scalar"`` (default) steps sessions one at a time through
        the synchronous dispatch; ``"vector"`` attaches a
        :class:`~repro.service.vexec.VexecEngine` that micro-batches
        concurrent ``step``/``batch_step`` heartbeats into vectorized
        :class:`~repro.fleet.pool.SessionPool` steps (``mode="exact"``
        — bit-identical decisions, A/B-able in production).
    vexec_max_batch / vexec_max_delay_us / vexec_solo_after:
        Gather-window and solo fast-path tuning for
        ``exec_mode="vector"`` (see
        :class:`~repro.service.vexec.VexecEngine`).
    """

    def __init__(
        self,
        manager: SessionManager,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
        reap_interval_s: float = 5.0,
        chaos: Optional["RequestChaos"] = None,
        metrics_host: Optional[str] = None,
        metrics_port: int = 0,
        admin: bool = False,
        exec_mode: str = "scalar",
        vexec_max_batch: int = 64,
        vexec_max_delay_us: float = 150.0,
        vexec_solo_after: Optional[int] = None,
    ) -> None:
        if host is None and unix_path is None:
            raise ValueError("need a TCP host and/or a unix socket path")
        if reap_interval_s <= 0:
            raise ValueError("reap interval must be positive")
        if exec_mode not in ("scalar", "vector"):
            raise ValueError(
                f"exec_mode must be 'scalar' or 'vector', "
                f"not {exec_mode!r}"
            )
        self.manager = manager
        self.exec_mode = exec_mode
        self.vexec: Optional[VexecEngine] = None
        self._vexec_max_batch = vexec_max_batch
        self._vexec_max_delay_us = vexec_max_delay_us
        self._vexec_solo_after = vexec_solo_after
        self._rid_inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.reap_interval_s = reap_interval_s
        self.chaos = chaos
        self.admin = admin
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        self._metrics_http: Optional[MetricsHTTPServer] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._unix_server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self.connections = 0
        self.connection_errors = 0
        self.replayed_responses = 0
        self.chaos_dropped_requests = 0
        self.chaos_dropped_responses = 0
        self._rid_cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Bind listeners and start the reaper (loop must be running)."""
        if self.exec_mode == "vector":
            kwargs = {}
            if self._vexec_solo_after is not None:
                kwargs["solo_after"] = self._vexec_solo_after
            self.vexec = VexecEngine(
                self.manager,
                max_batch=self._vexec_max_batch,
                max_delay_us=self._vexec_max_delay_us,
                **kwargs,
            )
            self.vexec.start()
        if self.host is not None:
            self._tcp_server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            # Baselined JGF101: start() runs once, before any other
            # coroutine of this server exists, so writing the bound
            # port back across the await cannot race.
            self.port = self._tcp_server.sockets[0].getsockname()[1]
        if self.unix_path is not None:
            self._unix_server = await asyncio.start_unix_server(
                self._serve_connection, path=self.unix_path
            )
        if self.metrics_host is not None:
            self._metrics_http = MetricsHTTPServer(
                self.manager.telemetry.registry,
                host=self.metrics_host,
                port=self.metrics_port,
            )
            await self._metrics_http.start()
            self.metrics_port = self._metrics_http.address[1]
        self._reaper = asyncio.get_running_loop().create_task(
            self._reap_forever()
        )

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """The bound ``(host, port)``, once started with TCP enabled."""
        if self.host is None:
            return None
        return (self.host, self.port)

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """The bound metrics ``(host, port)``, when enabled."""
        if self.metrics_host is None:
            return None
        return (self.metrics_host, self.metrics_port)

    async def aclose(self) -> None:
        """Stop listeners, the reaper, and close every live session.

        The handles are captured and cleared *before* any await
        (jgflow JGF101): a second ``aclose`` racing this one on the
        event loop then sees ``None`` everywhere and is a no-op,
        instead of cancelling/closing the same handles twice.
        """
        reaper, self._reaper = self._reaper, None
        servers = (self._tcp_server, self._unix_server)
        self._tcp_server = None
        self._unix_server = None
        metrics_http, self._metrics_http = self._metrics_http, None
        vexec, self.vexec = self.vexec, None
        if reaper is not None:
            reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await reaper
        for server in servers:
            if server is not None:
                server.close()
                await server.wait_closed()
        if metrics_http is not None:
            await metrics_http.aclose()
        if vexec is not None:
            await vexec.aclose()
        if self.unix_path is not None and os.path.exists(self.unix_path):
            os.unlink(self.unix_path)
        self.manager.close_all()

    async def _reap_forever(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval_s)
            self.manager.reap_idle()

    # -- connection handling ---------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    self.connection_errors += 1
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                action = "deliver"
                if self.chaos is not None:
                    action = self.chaos.on_request()
                    delay_s = self.chaos.delay_for()
                    if delay_s > 0.0:
                        await asyncio.sleep(delay_s)
                if action == "drop_request":
                    # The request "never arrived": no processing, and the
                    # connection dies so the client sees a reset.
                    self.chaos_dropped_requests += 1
                    break
                if self.vexec is not None:
                    response = await self.handle_line_async(line)
                else:
                    response = self.handle_line(line)
                if action == "drop_response":
                    # Processed, but the answer is "lost on the wire".
                    # The rid cache is what lets a retry recover this.
                    self.chaos_dropped_responses += 1
                    break
                # THROTTLE tier: duty-cycle the session's step loop by
                # holding the response back — the client cannot send
                # its next heartbeat until this one is answered.
                throttle_s = _throttle_of(response)
                if throttle_s > 0.0:
                    await asyncio.sleep(throttle_s)
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    self.connection_errors += 1
                    break
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    # -- dispatch (synchronous: one request, one response) ---------------------
    def handle_line(self, line: bytes) -> Dict[str, Any]:
        """Decode, dispatch, and answer one request line.

        Requests carrying a ``rid`` are idempotent: the first execution's
        response is cached (bounded by :data:`RID_CACHE_MAX`) and a
        retried ``rid`` is answered from the cache without re-executing.
        Error envelopes are never cached — a retry should re-attempt the
        operation, since the failure may have been transient.
        """
        started_s = time.perf_counter()
        request_type = "invalid"
        rid: Optional[str] = None
        cache = True
        try:
            message = decode_message(line)
            rid = request_id_of(message)
            if rid is not None and rid in self._rid_cache:
                self.replayed_responses += 1
                self._rid_cache.move_to_end(rid)
                return self._rid_cache[rid]
            request_type, fields = parse_request(message)
            response = self._dispatch(request_type, fields)
        except ProtocolError as exc:
            cache = False
            response = error_response(exc.code, exc.message)
        except SessionError as exc:
            cache = False
            response = error_response(exc.code, exc.message, exc.data)
        except Exception as exc:  # daemon must answer every request
            cache = False
            response = error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        if cache and rid is not None:
            response = dict(response)
            response["rid"] = rid
            self._rid_cache[rid] = response
            while len(self._rid_cache) > RID_CACHE_MAX:
                self._rid_cache.popitem(last=False)
        self.manager.telemetry.record_request(
            request_type,
            bool(response.get("ok", False)),
            time.perf_counter() - started_s,
        )
        return response

    async def handle_line_async(self, line: bytes) -> Dict[str, Any]:
        """Async twin of :meth:`handle_line` for the vector backend.

        ``step``/``batch_step`` suspend at the gather window, so this
        path can interleave requests from many connections — which is
        exactly what fills the micro-batches.  Because execution now
        spans awaits, a ``rid`` is *reserved* before the first suspend
        (the shard router's idiom): a concurrent retry of an in-flight
        rid awaits the original execution's future instead of
        re-executing the step.  The reservation is dropped on every
        exit path — including cancellation — so an abandoned request
        can never park a rid forever.  A waiter woken by an abandoned
        original re-checks the cache and the in-flight map before
        falling through: another parked retry may have re-reserved
        the rid first, and a second execution would double-step the
        session.
        """
        started_s = time.perf_counter()
        try:
            message = decode_message(line)
            rid = request_id_of(message)
        except ProtocolError as exc:
            self.manager.telemetry.record_request(
                "invalid", False, time.perf_counter() - started_s
            )
            return error_response(exc.code, exc.message)
        if rid is None:
            return await self._execute_line_async(
                message, None, started_s
            )
        while True:
            if rid in self._rid_cache:
                self.replayed_responses += 1
                self._rid_cache.move_to_end(rid)
                return self._rid_cache[rid]
            inflight = self._rid_inflight.get(rid)
            if inflight is None:
                break
            self.replayed_responses += 1
            try:
                return await asyncio.shield(inflight)
            except asyncio.CancelledError:
                if not inflight.cancelled():
                    raise  # this waiter was cancelled
                # The original execution was abandoned (its
                # connection closed mid-flight); loop to re-check
                # the maps before executing fresh.
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._rid_inflight[rid] = future
        try:
            response = await self._execute_line_async(
                message, rid, started_s
            )
            if not future.done():
                future.set_result(response)
            return response
        finally:
            if self._rid_inflight.get(rid) is future:
                del self._rid_inflight[rid]
            if not future.done():
                # Cancelled mid-execution: wake any duplicate
                # waiters rather than leaving them parked forever.
                future.cancel()

    async def _execute_line_async(
        self,
        message: Dict[str, Any],
        rid: Optional[str],
        started_s: float,
    ) -> Dict[str, Any]:
        """Dispatch one decoded request; cache ok responses by rid."""
        request_type = "invalid"
        cache = True
        try:
            request_type, fields = parse_request(message)
            if request_type in ("step", "batch_step"):
                response = await self._dispatch_vexec(
                    request_type, fields
                )
            else:
                response = self._dispatch(request_type, fields)
        except ProtocolError as exc:
            cache = False
            response = error_response(exc.code, exc.message)
        except SessionError as exc:
            cache = False
            response = error_response(
                exc.code, exc.message, exc.data
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # daemon must answer every request
            cache = False
            response = error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        if cache and rid is not None:
            response = dict(response)
            response["rid"] = rid
            self._rid_cache[rid] = response
            while len(self._rid_cache) > RID_CACHE_MAX:
                self._rid_cache.popitem(last=False)
        self.manager.telemetry.record_request(
            request_type,
            bool(response.get("ok", False)),
            time.perf_counter() - started_s,
        )
        return response

    async def _dispatch_vexec(
        self, request_type: str, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        """step/batch_step through the vectorized gather window."""
        if request_type == "step":
            return await self._handle_step_vexec(fields)
        return await self._handle_batch_step_vexec(fields)

    async def _handle_step_vexec(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        assert self.vexec is not None
        session_id = self._require_session(fields)
        payload = fields.get("measurement")
        measurement = measurement_from_payload(payload)
        entry = await self.vexec.step_one(
            session_id, measurement, sensor_ok_from_payload(payload)
        )
        if entry.get("killed"):
            return ok_response(
                "step",
                killed=True,
                report=entry["report"],
                enforcement=entry["enforcement"],
            )
        return ok_response(
            "step",
            decision=entry["decision"],
            enforcement=entry["enforcement"],
        )

    async def _handle_batch_step_vexec(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Vector twin of :meth:`_handle_batch_step`.

        A batch is sequential *for its session* (each heartbeat feeds
        the previous decision), so the entries flow through the gather
        window one at a time — interleaving with other sessions'
        heartbeats, which is what keeps the pool batches full under
        concurrent batched load.  Validation, kill truncation, and the
        summed throttle match the scalar handler exactly.
        """
        assert self.vexec is not None
        session_id = self._require_session(fields)
        entries = batch_measurements_from_payload(
            fields.get("measurements")
        )
        # The whole frame goes to the engine as one pending: one
        # future for 128 heartbeats instead of 128, with the engine
        # interleaving frames across sessions flush by flush.
        results = await self.vexec.step_many(session_id, entries)
        killed = bool(results) and bool(results[-1].get("killed"))
        # The killed entry's throttle is 0.0, so summing all entries
        # matches the scalar handler's sum-then-break.
        throttle_total = sum(
            float(entry["enforcement"].get("throttle_s", 0.0))
            for entry in results
        )
        return ok_response(
            "batch_step",
            results=results,
            completed=len(results),
            killed=killed,
            enforcement={
                "tier": results[-1]["enforcement"]["tier"],
                "throttle_s": throttle_total,
            },
        )

    def _dispatch(
        self, request_type: str, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        handler = getattr(self, f"_handle_{request_type}")
        return handler(fields)

    def _handle_hello(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        version = negotiate_version(fields.get("version"))
        return ok_response(
            "hello",
            version=version,
            server="repro.service",
            **self.manager.stats(),
        )

    def _handle_open_session(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        try:
            machine = str(fields["machine"])
            app = str(fields["app"])
            factor = float(fields["factor"])
            total_work = float(fields["total_work"])
        except KeyError as exc:
            raise ProtocolError(
                "bad_request", f"open_session is missing field {exc}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad_request", f"invalid open_session field: {exc}"
            ) from exc
        seed = fields.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(
                "bad_request", "'seed' must be an integer"
            )
        session = self.manager.open_session(
            machine_name=machine,
            app_name=app,
            factor=factor,
            total_work=total_work,
            seed=seed,
            warm_start=bool(fields.get("warm_start", True)),
            client=str(fields.get("client", "")),
        )
        return ok_response(
            "open_session",
            session=session.session_id,
            warm=session.warm_started,
            granted_budget_j=session.granted_budget_j,
            decision=decision_payload(session.decision),
        )

    def _require_session(self, fields: Dict[str, Any]) -> str:
        session_id = fields.get("session")
        if not isinstance(session_id, str):
            raise ProtocolError(
                "bad_request", "request needs a string 'session'"
            )
        return session_id

    def _handle_step(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        session_id = self._require_session(fields)
        payload = fields.get("measurement")
        measurement = measurement_from_payload(payload)
        try:
            decision = self.manager.step(
                session_id,
                measurement,
                sensor_ok=sensor_ok_from_payload(payload),
            )
        except SessionKilled as exc:
            # The kill already closed the session and retired its
            # budget; answer ok (and rid-cacheable, so a retried step
            # replays the same outcome) with the final report.
            return ok_response(
                "step",
                killed=True,
                report=exc.report,
                enforcement={"tier": "kill", "throttle_s": 0.0},
            )
        return ok_response(
            "step",
            decision=decision_payload(decision),
            enforcement=self.manager.enforcement_of(session_id),
        )

    def _handle_batch_step(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        """N measurements in, N decisions + enforcement tiers out.

        The whole batch is validated before the first measurement is
        applied, so an error response always means no controller state
        changed (the rid cache never stores errors — a retried failed
        batch re-executes from scratch, safely).  A mid-batch KILL
        truncates the results with a terminal killed entry; the
        response is still ``ok`` (and rid-cacheable) because state
        *did* change.  The response-level ``enforcement.throttle_s``
        is the sum over entries: one batch of N throttled heartbeats
        sleeps as long as N single steps would have.
        """
        session_id = self._require_session(fields)
        entries = batch_measurements_from_payload(
            fields.get("measurements")
        )
        results = []
        throttle_total = 0.0
        killed = False
        for measurement, sensor_ok in entries:
            try:
                decision = self.manager.step(
                    session_id, measurement, sensor_ok=sensor_ok
                )
            except SessionKilled as exc:
                results.append(
                    {
                        "killed": True,
                        "report": exc.report,
                        "enforcement": {
                            "tier": "kill",
                            "throttle_s": 0.0,
                        },
                    }
                )
                killed = True
                break
            enforcement = self.manager.enforcement_of(session_id)
            throttle_total += float(
                enforcement.get("throttle_s", 0.0)
            )
            results.append(
                {
                    "decision": decision_payload(decision),
                    "enforcement": enforcement,
                }
            )
        return ok_response(
            "batch_step",
            results=results,
            completed=len(results),
            killed=killed,
            enforcement={
                "tier": results[-1]["enforcement"]["tier"],
                "throttle_s": throttle_total,
            },
        )

    def _handle_report(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        session_id = self._require_session(fields)
        return ok_response(
            "report", report=self.manager.report(session_id)
        )

    def _handle_snapshot(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        session_id = self._require_session(fields)
        state = self.manager.snapshot(session_id)
        return ok_response("snapshot", state=state)

    def _handle_close(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        session_id = self._require_session(fields)
        return ok_response(
            "close", report=self.manager.close(session_id)
        )

    # -- admin verbs (shard workers only) --------------------------------------
    def _require_admin(self) -> None:
        if not self.admin:
            raise ProtocolError(
                "bad_request",
                "admin verbs are disabled on this listener",
            )

    def _handle_admin_lease(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Grow or shrink this worker's budget lease by ``delta_j``.

        The router moves joules between its unleased pool and workers
        with this verb; shrinks are clamped by
        :meth:`SessionManager.revise_global_budget` (never below spend
        + commitments), and the *applied* delta is reported back so
        the router's ledger mirrors what actually moved.
        """
        self._require_admin()
        delta_j = fields.get("delta_j")
        if not isinstance(delta_j, (int, float)) or isinstance(
            delta_j, bool
        ):
            raise ProtocolError(
                "bad_request", "'delta_j' must be a number"
            )
        previous_j = self.manager.global_budget_j
        target_j = previous_j + float(delta_j)
        if target_j <= 0.0:
            raise ProtocolError(
                "bad_request",
                f"lease delta {delta_j:g} J would leave a non-positive "
                f"budget ({target_j:g} J)",
            )
        applied_j = self.manager.revise_global_budget(target_j)
        return ok_response(
            "admin_lease",
            budget_j=applied_j,
            applied_delta_j=applied_j - previous_j,
            committed_j=self.manager.committed_budget_j,
            available_j=self.manager.available_budget_j,
        )

    def _handle_admin_rebalance_inputs(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Per-session rebalance inputs, for the router's global plan."""
        self._require_admin()
        surpluses, overdrafts = self.manager.rebalance_inputs()
        return ok_response(
            "admin_rebalance_inputs",
            surpluses=surpluses,
            overdrafts=overdrafts,
        )

    def _handle_admin_rebalance_apply(
        self, fields: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Apply this worker's slice of a daemon-wide transfer plan."""
        self._require_admin()
        deltas = fields.get("deltas")
        if not isinstance(deltas, dict):
            raise ProtocolError(
                "bad_request", "'deltas' must be an object"
            )
        plan: Dict[str, float] = {}
        for session_id, delta_j in deltas.items():
            if not isinstance(delta_j, (int, float)) or isinstance(
                delta_j, bool
            ):
                raise ProtocolError(
                    "bad_request",
                    f"delta for {session_id!r} must be a number",
                )
            plan[str(session_id)] = float(delta_j)
        applied = self.manager.apply_rebalance(plan)
        return ok_response(
            "admin_rebalance_apply",
            applied=applied,
            net_j=sum(applied.values()),
            available_j=self.manager.available_budget_j,
        )

    def _handle_metrics(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        registry = self.manager.telemetry.registry
        return ok_response(
            "metrics",
            samples=[sample.as_dict() for sample in registry.samples()],
        )

    def _handle_events(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        since = fields.get("since", 0)
        if not isinstance(since, int) or isinstance(since, bool):
            raise ProtocolError(
                "bad_request", "'since' must be an integer cursor"
            )
        log = self.manager.telemetry.events
        events = log.since(max(0, since))
        return ok_response(
            "events",
            events=[event.as_dict() for event in events],
            next=log.next_seq - 1,
        )


def _throttle_of(response: Dict[str, Any]) -> float:
    """The duty-cycle sleep a response asks the server to inject."""
    enforcement = response.get("enforcement")
    if not isinstance(enforcement, dict):
        return 0.0
    throttle_s = enforcement.get("throttle_s", 0.0)
    if not isinstance(throttle_s, (int, float)):
        return 0.0
    return max(0.0, float(throttle_s))


async def _serve_until_cancelled(server: ServiceServer) -> None:
    await server.start()
    try:
        await asyncio.Event().wait()  # sleep until cancelled
    finally:
        await server.aclose()


def serve(
    manager: SessionManager,
    host: Optional[str] = None,
    port: int = 0,
    unix_path: Optional[str] = None,
    reap_interval_s: float = 5.0,
    ready: Optional[Any] = None,
    metrics_host: Optional[str] = None,
    metrics_port: int = 0,
    admin: bool = False,
    exec_mode: str = "scalar",
    vexec_solo_after: Optional[int] = None,
) -> None:
    """Run a daemon in the foreground until interrupted.

    ``ready``, when given, is an object with a ``set()`` method
    (e.g. :class:`threading.Event`) signalled once listeners are bound.
    """
    server = ServiceServer(
        manager,
        host=host,
        port=port,
        unix_path=unix_path,
        reap_interval_s=reap_interval_s,
        metrics_host=metrics_host,
        metrics_port=metrics_port,
        admin=admin,
        exec_mode=exec_mode,
        vexec_solo_after=vexec_solo_after,
    )

    async def _main() -> None:
        await server.start()
        if ready is not None:
            ready.set()
        try:
            await asyncio.Event().wait()
        finally:
            await server.aclose()

    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_main())


class ServerThread:
    """A daemon running in a background thread (tests and benchmarks).

    >>> manager = SessionManager(global_budget_j=1e6)
    >>> with ServerThread(manager, unix_path="/tmp/jg.sock") as handle:
    ...     client = ServiceClient(unix_path=handle.unix_path)

    The manager stays accessible for white-box assertions; remember
    that it mutates on the server thread, so inspect it only while no
    request is in flight.
    """

    def __init__(
        self,
        manager: SessionManager,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
        reap_interval_s: float = 5.0,
        chaos: Optional["RequestChaos"] = None,
        metrics_host: Optional[str] = None,
        metrics_port: int = 0,
        admin: bool = False,
        exec_mode: str = "scalar",
        vexec_solo_after: Optional[int] = None,
    ) -> None:
        self.manager = manager
        self.server = ServiceServer(
            manager,
            host=host,
            port=port,
            unix_path=unix_path,
            reap_interval_s=reap_interval_s,
            chaos=chaos,
            metrics_host=metrics_host,
            metrics_port=metrics_port,
            admin=admin,
            exec_mode=exec_mode,
            vexec_solo_after=vexec_solo_after,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def unix_path(self) -> Optional[str]:
        return self.server.unix_path

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        return self.server.tcp_address

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        return self.server.metrics_address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.server.aclose())
        finally:
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="jouleguard-service", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
