"""repro.service: a multi-tenant JouleGuard daemon.

One long-running process hosts many concurrent controller sessions —
each an independent :class:`~repro.core.jouleguard.JouleGuardRuntime` —
under one shared global energy budget, and speaks a small versioned
JSON-lines protocol over TCP or Unix sockets.  Learned state (SEO
tables, VDBE exploration, pole adaptation) can be snapshotted per
``(machine, app)`` pair and used to warm-start later sessions.

Layers, bottom to top:

* :mod:`~repro.service.protocol` — wire format, error codes, payload
  codecs;
* :mod:`~repro.service.state` — learned-state snapshots and the
  :class:`SnapshotStore`;
* :mod:`~repro.service.telemetry` — the daemon's metrics registry and
  event log (the :mod:`repro.obs` glue);
* :mod:`~repro.service.sessions` — the :class:`SessionManager`:
  admission control, the shared budget pool, cross-session rebalance,
  and the per-session enforcement ladder (:mod:`repro.enforce`);
* :mod:`~repro.service.server` — the asyncio daemon (:func:`serve`,
  :class:`ServerThread`);
* :mod:`~repro.service.vexec` — the vectorized execution backend
  (``serve --exec vector``): the :class:`VexecEngine` micro-batches
  concurrent heartbeats into exact-mode
  :class:`~repro.fleet.pool.SessionPool` steps;
* :mod:`~repro.service.client` — the blocking :class:`ServiceClient`
  and the :func:`run_load` load generator;
* :mod:`~repro.service.lease` / :mod:`~repro.service.shard` — the
  sharded deployment: a :class:`ShardRouter` consistent-hashing
  sessions onto pinned worker processes, with the shared budget kept
  coherent by the zero-sum :class:`LeaseLedger`.
"""

from .client import (
    BatchStepResult,
    LoadReport,
    OpenedSession,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    SessionKilledError,
    SessionRun,
    drive_synthetic_session,
    run_load,
)
from .lease import LeaseLedger, LedgerError
from .protocol import (
    ADMIN_TYPES,
    ERROR_CODES,
    MAX_BATCH_STEPS,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    SUPPORTED_VERSIONS,
    ProtocolError,
    batch_measurements_from_payload,
    decision_payload,
    decode_message,
    encode_message,
    error_response,
    measurement_from_payload,
    measurement_payload,
    negotiate_version,
    ok_response,
    parse_request,
    request_id_of,
    sensor_ok_from_payload,
)
from .server import RID_CACHE_MAX, ServerThread, ServiceServer, serve
from .sessions import (
    Session,
    SessionError,
    SessionKilled,
    SessionManager,
    plan_rebalance,
)
from .shard import (
    LEASE_FLOOR_J,
    ShardRouter,
    ShardThread,
    WorkerHandle,
    serve_sharded,
)
from .state import (
    STATE_VERSION,
    SnapshotError,
    SnapshotStore,
    SnapshotVersionError,
    apply_state,
    capture_state,
    dumps_state,
    loads_state,
    validate_state,
)
from .telemetry import ServiceTelemetry, SessionStepRecorder
from .vexec import VexecEngine

__all__ = [
    "ADMIN_TYPES",
    "BatchStepResult",
    "ERROR_CODES",
    "LEASE_FLOOR_J",
    "LeaseLedger",
    "LedgerError",
    "LoadReport",
    "MAX_BATCH_STEPS",
    "OpenedSession",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEST_TYPES",
    "RID_CACHE_MAX",
    "RetryPolicy",
    "STATE_VERSION",
    "SUPPORTED_VERSIONS",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceTelemetry",
    "Session",
    "SessionError",
    "SessionKilled",
    "SessionKilledError",
    "SessionManager",
    "SessionRun",
    "SessionStepRecorder",
    "ShardRouter",
    "ShardThread",
    "SnapshotError",
    "SnapshotStore",
    "SnapshotVersionError",
    "VexecEngine",
    "WorkerHandle",
    "apply_state",
    "batch_measurements_from_payload",
    "capture_state",
    "decision_payload",
    "decode_message",
    "drive_synthetic_session",
    "dumps_state",
    "encode_message",
    "error_response",
    "loads_state",
    "measurement_from_payload",
    "measurement_payload",
    "negotiate_version",
    "ok_response",
    "parse_request",
    "plan_rebalance",
    "request_id_of",
    "run_load",
    "sensor_ok_from_payload",
    "serve",
    "serve_sharded",
    "validate_state",
]
