"""Vectorized execution backend: micro-batched SessionPool stepping.

The scalar daemon steps one :class:`~repro.core.jouleguard.JouleGuardRuntime`
per heartbeat.  The controllers are pure elementwise math, and the fleet
layer already proved (PR 6) that a :class:`~repro.fleet.pool.SessionPool`
steps whole cohorts as numpy struct-of-arrays bit-exactly in
``mode="exact"``.  This module puts that pool on the serving hot path:

* **group commit** — ``step``/``batch_step`` heartbeats arriving within
  a short gather window are accumulated and flushed together: the flush
  fires when :attr:`VexecEngine.max_batch` requests are pending or the
  ``max_delay_us`` window elapses, whichever comes first, with a
  zero-delay fast path when only one request is pending (so a lone
  client pays no added latency);
* **adopt/evict** — co-resident sessions are lowered into per-cohort
  pools on first step (:meth:`SessionPool.adopt`) and written back to
  their scalar objects on demand (:meth:`SessionPool.evict`): any code
  path that reads scalar session state — report, snapshot, close,
  idle reaping, a scalar-fallback step — triggers
  :attr:`SessionManager.scalar_sync` first, so scalar reads are always
  current and snapshot/warm-start interop is preserved (rebalance,
  which reads accounting only, is served in place by the cheaper
  ``accounting_sync``/``accounting_merge`` hook pair);
* **exactness** — pools run ``mode="exact"``: per-row RNG streams in
  scalar call order, so vectorized serving is decision-for-decision and
  tier-for-tier identical to the scalar path (the lockstep rig asserts
  this end to end, including kills and mid-run rebalances);
* **scalar fallback** — heartbeats the pool cannot represent
  (``sensor_ok=False`` hold-over accounting, or a session whose
  runtime/ladder shape fails adoption validation) are served by the
  unmodified scalar :meth:`SessionManager.step`, counted in
  ``jg_vexec_fallbacks_total`` by reason.

The engine is single-threaded on the server's event loop; the only
concurrency is the gather queue.  Cross-session ordering inside one
flush cannot change per-session outcomes: sessions interact only
through admission, close/kill retirement (which evict first), and
rebalance — which reads nothing but accounting state, served in place
by the cheap ``accounting_sync``/``accounting_merge`` hooks without
disturbing resident rows — and the ladder's DEGRADE tier reclaims no
budget.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..enforce.ladder import Tier, TierTransition
from .protocol import decision_payload
from .sessions import Session, SessionError, SessionKilled, SessionManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # repro.fleet.pool imports repro.service.state, so importing it at
    # module scope would make ``import repro.fleet`` (which the service
    # package does not need) a prerequisite of the service package.
    # The engine resolves the fleet types lazily in _pool_for/_adopt.
    from ..fleet.cohort import CohortSpec
    from ..fleet.pool import SessionPool

__all__ = ["VexecEngine"]

#: Dead (evicted/killed) rows a pool may accumulate before compaction.
_COMPACT_SLACK = 32

#: Consecutive empty cooperative yields before a gather gives up on
#: stragglers (see :meth:`VexecEngine._gather`).
_GATHER_IDLE_YIELDS = 2

#: Pool arrays gathered once per flush for the result scatter (see
#: :meth:`VexecEngine._step_pool`).
_SCATTER_COLS = (
    "steps",
    "tier",
    "killed",
    "throttle_s",
    "last_overrun",
    "last_burn",
    "last_headroom",
    "budget_j",
    "adjustment_j",
    "energy_used_j",
    "epsilon",
    "d_pole",
    "d_fpos",
    "d_sys",
    "d_setpoint",
    "d_epsilon",
    "d_explored",
    "d_feasible",
)

#: Default for :attr:`VexecEngine.solo_after`: consecutive
#: single-session flushes before lone heartbeats take the scalar solo
#: path (a masked numpy step for one row costs several scalar steps in
#: fixed overhead, so an uncontended client must not pay it).
_SOLO_AFTER = 4


class _Pending:
    """One enqueued frame — 1..n heartbeats for one session.

    A ``step`` request is a one-entry frame; a ``batch_step`` frame
    keeps all its heartbeats in a single pending, so a 128-step frame
    costs one future and one pair of task wakeups instead of 128 (the
    per-heartbeat asyncio churn was the dominant engine overhead).
    Each flush consumes exactly one entry (``current``); the remainder
    carries over, preserving per-session order while interleaving with
    other sessions' frames — which is what keeps pool batches full
    under concurrent batched load.
    """

    __slots__ = ("session_id", "entries", "pos", "results", "future")

    def __init__(
        self,
        session_id: str,
        entries: List[Tuple[Any, bool]],
        future: "asyncio.Future[List[Dict[str, Any]]]",
    ) -> None:
        self.session_id = session_id
        self.entries = entries
        self.pos = 0
        self.results: List[Dict[str, Any]] = []
        self.future = future

    @property
    def current(self) -> Tuple[Any, bool]:
        """The next unexecuted ``(measurement, sensor_ok)`` entry."""
        return self.entries[self.pos]

    def push(self, entry: Dict[str, Any]) -> bool:
        """Record one executed entry; ``True`` when the frame is done."""
        self.results.append(entry)
        self.pos += 1
        return self.pos >= len(self.entries)


class VexecEngine:
    """Micro-batched vectorized step execution for one daemon.

    Parameters
    ----------
    manager:
        The session manager whose sessions this engine steps.  The
        engine installs itself as :attr:`SessionManager.scalar_sync`.
    max_batch:
        Flush as soon as this many heartbeats are pending.
    max_delay_us:
        Gather window: with two or more heartbeats pending, wait at
        most this long for stragglers before flushing.  A single
        pending heartbeat always flushes immediately.
    solo_after:
        After this many consecutive single-session flushes, lone
        heartbeats are served by direct scalar stepping instead of a
        one-row pool step (whose fixed numpy overhead costs several
        scalar steps), evicting the resident row once at the regime
        change; pooled stepping resumes as soon as a flush gathers two
        sessions again.  Negative disables the solo path — every
        heartbeat steps through the pool (the equivalence and chaos
        rigs use this to keep serial drives pool-resident).
    """

    def __init__(
        self,
        manager: SessionManager,
        max_batch: int = 64,
        max_delay_us: float = 150.0,
        solo_after: int = _SOLO_AFTER,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_us < 0:
            raise ValueError("max_delay_us must be >= 0")
        self.manager = manager
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_us) / 1e6
        self.solo_after = int(solo_after)
        self._solo_streak = 0
        self._direct_probes = 0
        self._frontiers: Dict[int, Tuple[Any, ...]] = {}
        self._pools: Dict[Tuple[str, str], SessionPool] = {}
        self._rows: Dict[str, Tuple[SessionPool, int]] = {}
        self._queue: Optional["asyncio.Queue[_Pending]"] = None
        self._carry: List[_Pending] = []
        self._task: Optional[asyncio.Task] = None
        self.flushes = 0
        self.fallbacks = 0
        self.solos = 0
        self.last_adopt_error: Optional[str] = None
        manager.scalar_sync = self._scalar_sync
        manager.accounting_sync = self._accounting_sync
        manager.accounting_merge = self._accounting_merge

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Start the drainer task (the event loop must be running)."""
        self._queue = asyncio.Queue()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def aclose(self) -> None:
        """Stop the drainer, cancel parked requests, evict everything."""
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        leftovers = list(self._carry)
        self._carry = []
        if self._queue is not None:
            # Single-threaded event loop: nothing can enqueue between
            # the empty() check and the get, so no exception to race.
            while not self._queue.empty():
                leftovers.append(self._queue.get_nowait())
        for pending in leftovers:
            if not pending.future.done():
                pending.future.cancel()
        self._scalar_sync(None)
        if self.manager.scalar_sync == self._scalar_sync:
            self.manager.scalar_sync = None
        if self.manager.accounting_sync == self._accounting_sync:
            self.manager.accounting_sync = None
        if self.manager.accounting_merge == self._accounting_merge:
            self.manager.accounting_merge = None

    @property
    def pooled_count(self) -> int:
        """Sessions currently resident in a pool row."""
        return len(self._rows)

    # -- request entry points ------------------------------------------
    async def step_one(
        self, session_id: str, measurement: Any, sensor_ok: bool = True
    ) -> Dict[str, Any]:
        """One heartbeat through the gather window.

        Returns a step *entry*: ``{"decision": ..., "enforcement":
        ...}`` or ``{"killed": True, "report": ..., "enforcement":
        ...}`` — the shape the server's scalar handlers produce, so the
        wire responses are byte-identical either way.  Raises
        :class:`SessionError` exactly where the scalar path would.
        """
        entries = await self.step_many(
            session_id, [(measurement, sensor_ok)]
        )
        return entries[0]

    async def step_many(
        self,
        session_id: str,
        entries: List[Tuple[Any, bool]],
    ) -> List[Dict[str, Any]]:
        """One frame of sequential heartbeats through the engine.

        The frame's entries execute strictly in order, one per flush,
        interleaved with other sessions' frames.  Returns the executed
        entries; a kill truncates the frame (the killed entry is last),
        matching the scalar batch handler's early exit.  A
        :class:`SessionError` mid-frame propagates after the already-
        executed heartbeats have been applied — exactly the scalar
        loop's behavior.
        """
        if self._task is None or self._queue is None:
            raise RuntimeError(
                "vexec engine is not running (call start() first)"
            )
        if not entries:
            return []
        if (
            0 <= self.solo_after <= self._solo_streak
            and not self._carry
            and self._queue.empty()
        ):
            direct = await self._step_direct(session_id, entries)
            if direct is not None:
                return direct
        future: "asyncio.Future[List[Dict[str, Any]]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.put_nowait(_Pending(session_id, entries, future))
        return await future

    async def _step_direct(
        self,
        session_id: str,
        entries: List[Tuple[Any, bool]],
    ) -> Optional[List[Dict[str, Any]]]:
        """Serve a frame scalar-side without touching the queue.

        Once the solo regime is active there is no pooled state left
        for this session and no batching to win, so the queue/future/
        drainer round trip per frame is pure tax.  One cooperative
        yield lets any concurrent arrival declare itself (its handler
        task enters this probe too, or enqueues); if one does, return
        ``None`` and take the gather window — whose multi-session wave
        resets the streak and re-pools.  Otherwise run the frame with
        the same synchronous loop as the scalar backend's handlers.
        """
        self._direct_probes += 1
        try:
            await asyncio.sleep(0)
            if (
                self._direct_probes > 1
                or self._carry
                or not self._queue.empty()  # type: ignore[union-attr]
            ):
                return None
        finally:
            self._direct_probes -= 1
        self._evict(session_id)
        results: List[Dict[str, Any]] = []
        for measurement, sensor_ok in entries:
            if sensor_ok:
                self.solos += 1
                self.manager.telemetry.record_vexec_solo()
            else:
                self.fallbacks += 1
                self.manager.telemetry.record_vexec_fallback(
                    "sensor_loss"
                )
            entry = self._scalar_entry(session_id, measurement, sensor_ok)
            results.append(entry)
            if entry.get("killed"):
                break
        return results

    # -- drainer -------------------------------------------------------
    async def _run(self) -> None:
        assert self._queue is not None
        while True:
            batch, first_s = await self._gather()
            try:
                self._flush(batch, first_s)
            except Exception as exc:  # keep the drainer alive
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)

    def _drain_into(self, batch: List[_Pending]) -> bool:
        """Move everything queued into ``batch``; ``True`` if it grew."""
        assert self._queue is not None
        grew = False
        # Single-threaded event loop: nothing can enqueue between the
        # empty() check and the get, so no exception to race.
        while len(batch) < self.max_batch and not self._queue.empty():
            batch.append(self._queue.get_nowait())
            grew = True
        return grew

    async def _gather(self) -> Tuple[List[_Pending], float]:
        """Group commit: collect one flush's worth of frames.

        The straggler wait is cooperative, not timed: ``sleep(0)``
        yields let every runnable producer (connection tasks woken by
        the previous flush, protocol callbacks with bytes already in
        the kernel buffer) enqueue, and gathering stops after
        ``_GATHER_IDLE_YIELDS`` consecutive empty yields or at the
        ``max_delay_us`` deadline, whichever is first.  A timed
        ``asyncio.sleep`` here would round up to the event-loop timer
        granularity (~1 ms via epoll) and cap the flush rate; the
        yield loop costs microseconds and fills just as well, because
        any heartbeat that could arrive within the window is either
        already runnable or already readable.  A lone pending frame
        still flushes immediately (the zero-delay fast path), so an
        unloaded daemon adds no latency over scalar.
        """
        assert self._queue is not None
        batch = self._carry
        self._carry = []
        if not batch:
            batch.append(await self._queue.get())
        else:
            # Starting from carried-over work: yield once so reader
            # tasks can enqueue and the loop stays cooperative even
            # when every flush leaves a carry.
            await asyncio.sleep(0)
        first_s = time.perf_counter()
        self._drain_into(batch)
        if 1 < len(batch) < self.max_batch and self.max_delay_s > 0.0:
            deadline = first_s + self.max_delay_s
            idle = 0
            while (
                len(batch) < self.max_batch
                and idle < _GATHER_IDLE_YIELDS
                and time.perf_counter() < deadline
            ):
                await asyncio.sleep(0)
                idle = 0 if self._drain_into(batch) else idle + 1
        return batch, first_s

    # -- flush ---------------------------------------------------------
    def _flush(self, batch: List[_Pending], first_s: float) -> None:
        """Execute one gathered batch: one pool step per cohort.

        At most one heartbeat per session per flush (a pool row steps
        once): each frame contributes its current entry, and frames
        with entries left — or extra frames for a session already in
        the wave — carry over to the next flush, preserving
        per-session order.
        """
        wave: Dict[str, _Pending] = {}
        for pending in batch:
            if pending.future.cancelled():
                continue
            if pending.session_id in wave:
                self._carry.append(pending)
            else:
                wave[pending.session_id] = pending
        # The solo regime engages only after ``solo_after`` pooled
        # single-session flushes in a row (check before counting this
        # one), and disengages the moment a flush is contended again.
        solo = (
            len(wave) == 1
            and 0 <= self.solo_after <= self._solo_streak
        )
        if len(wave) == 1:
            self._solo_streak += 1
        elif wave:
            self._solo_streak = 0
        plan: List[Tuple[SessionPool, int, _Pending]] = []
        for session_id, pending in wave.items():
            session = self.manager._sessions.get(session_id)
            if session is None:
                # Mid-frame this truncates like the scalar loop: the
                # already-executed heartbeats stand, the error is the
                # whole response.
                pending.future.set_exception(
                    SessionError(
                        "unknown_session",
                        f"no live session {session_id!r} "
                        "(closed, reaped, or never opened)",
                    )
                )
                continue
            if not pending.current[1]:
                # sensor_ok=False: hold-over accounting (conservative
                # epw clamp) is a scalar-only code path.
                self._fallback(pending, "sensor_loss")
                continue
            if solo:
                # A sustained single-session regime: step scalar-side
                # (bit-identical by the pool's exactness contract)
                # rather than pay a one-row numpy step per heartbeat.
                self._solo_step(pending)
                continue
            placed = self._rows.get(session_id)
            if placed is None:
                placed = self._adopt(session)
                if placed is None:
                    self._fallback(pending, "adopt")
                    continue
            plan.append((placed[0], placed[1], pending))
        by_pool: Dict[int, List[Tuple[int, _Pending]]] = {}
        pool_of: Dict[int, SessionPool] = {}
        for pool, row, pending in plan:
            by_pool.setdefault(id(pool), []).append((row, pending))
            pool_of[id(pool)] = pool
        total = 0
        survivors = 0
        for key, rows in by_pool.items():
            stepped, alive = self._step_pool(pool_of[key], rows)
            total += stepped
            survivors += alive
        if total:
            self.flushes += 1
            self.manager.telemetry.record_vexec_flush(
                total, time.perf_counter() - first_s, total
            )
        # Rebalance cadence at flush granularity, mirroring the scalar
        # manager's per-step counter (killed steps never count there —
        # SessionKilled is raised before the counter advances).  Shard
        # workers run --external-rebalance and skip this entirely: the
        # router owns the global cadence, so sharded vector execution
        # hits the exact same rebalance boundaries as sharded scalar.
        if survivors and not self.manager.external_rebalance:
            self.manager._steps_since_rebalance += survivors
            if (
                self.manager._steps_since_rebalance
                >= self.manager.rebalance_period
            ):
                # rebalance() reads only accounting state, which the
                # accounting_sync hook makes current without evicting
                # the pool; granted adjustments merge back via
                # accounting_merge.
                self.manager.rebalance()
                self.manager._steps_since_rebalance = 0

    def _step_pool(
        self,
        pool: SessionPool,
        rows: List[Tuple[int, _Pending]],
    ) -> Tuple[int, int]:
        """One masked numpy step; scatter per-session entries.

        Returns ``(stepped, survivors)`` — survivors excludes rows the
        ladder killed during this step.
        """
        n = pool.n
        mask = np.zeros(n, dtype=bool)
        work = np.ones(n, dtype=np.float64)
        energy = np.ones(n, dtype=np.float64)
        rate = np.ones(n, dtype=np.float64)
        power = np.ones(n, dtype=np.float64)
        for row, pending in rows:
            m = pending.current[0]
            mask[row] = True
            work[row] = m.work
            energy[row] = m.energy_j
            rate[row] = m.rate
            power[row] = m.power_w
        pre_tier = pool.tier.copy()
        pre_degraded = pool.degraded.copy()
        try:
            pool.step(work, energy, rate, power, mask=mask)
        except Exception as exc:
            for _, pending in rows:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return 0, 0
        # Gather every per-row field the scatter needs in one fancy
        # index + tolist per array: ~20 numpy scalar extractions per
        # row cost as much as the pool step itself, while one gather
        # per array is near-free and yields native Python scalars.
        # Snapshotting before the scatter also makes the values immune
        # to row compaction triggered by a kill-evict mid-wave.
        idx = np.fromiter(
            (row for row, _ in rows), dtype=np.intp, count=len(rows)
        )
        cols = {
            name: getattr(pool, name)[idx].tolist()
            for name in _SCATTER_COLS
        }
        cols["pre_tier"] = pre_tier[idx].tolist()
        cols["pre_degraded"] = pre_degraded[idx].tolist()
        survivors = 0
        for i, (row, pending) in enumerate(rows):
            try:
                entry, killed = self._write_through(
                    pool, row, pending, cols, i
                )
            except Exception as exc:
                if not pending.future.done():
                    pending.future.set_exception(exc)
                continue
            if not killed:
                survivors += 1
            self._settle(pending, entry, killed)
        return len(rows), survivors

    def _settle(
        self, pending: _Pending, entry: Dict[str, Any], killed: bool
    ) -> None:
        """Record one executed entry; resolve or carry the frame.

        A kill truncates the frame (scalar batch semantics); a frame
        whose waiter vanished mid-flight is dropped rather than
        carried — its executed heartbeats stand, like a scalar batch
        whose connection died after dispatch.
        """
        done = pending.push(entry) or killed
        if done or pending.future.cancelled():
            if not pending.future.done():
                pending.future.set_result(pending.results)
        else:
            self._carry.append(pending)

    def _frontier_lists(
        self, pool: SessionPool
    ) -> Tuple[List[int], List[float], List[float], List[float]]:
        """Native-scalar views of the cohort frontier, cached per spec.

        The cache holds a reference to the spec itself so the ``id``
        key can never be recycled by a different object.
        """
        spec = pool.spec
        cached = self._frontiers.get(id(spec))
        if cached is None:
            cached = (
                spec,
                spec.frontier_indices.tolist(),
                spec.frontier_speedups.tolist(),
                spec.frontier_accuracies.tolist(),
                spec.frontier_power_factors.tolist(),
            )
            self._frontiers[id(spec)] = cached
        return cached[1], cached[2], cached[3], cached[4]

    def _write_through(
        self,
        pool: SessionPool,
        row: int,
        pending: _Pending,
        cols: Dict[str, List[Any]],
        i: int,
    ) -> Tuple[Dict[str, Any], bool]:
        """Mirror one pooled step's side effects onto scalar state.

        Everything the scalar step path records per heartbeat that the
        pool does not keep (the accountant's energy trace, ladder
        transition records, telemetry, manager counters, the kill
        close) happens here, in the scalar path's order.  ``cols`` is
        the flush's column gather (see :meth:`_step_pool`); ``i`` is
        this row's position in it.
        """
        session_id = pending.session_id
        session = self.manager._sessions[session_id]
        energy_j = float(pending.current[0].energy_j)
        steps = cols["steps"][i]
        session.steps = steps
        session.last_active_s = self.manager.clock()
        # The pool carries the work/energy tallies (written back on
        # evict); the per-iteration trace is scalar-only state.
        session.runtime.accountant._energy_trace.append(energy_j)
        pre_tier = cols["pre_tier"][i]
        post = cols["tier"][i]
        ladder = session.ladder
        if ladder is not None and post != pre_tier:
            transition = TierTransition(
                step=steps,
                from_tier=Tier(pre_tier),
                to_tier=Tier(post),
                projected_overrun=cols["last_overrun"][i],
                burn_fraction=cols["last_burn"][i],
                headroom_steps=cols["last_headroom"][i],
            )
            ladder.transitions.append(transition)
            self.manager.telemetry.record_transition(
                session_id, transition
            )
        if int(Tier.DEGRADE) <= post < int(Tier.KILL):
            # Scalar equivalent: "newly degraded" is judged after the
            # top-of-step clear (a pre-observe tier below DEGRADE
            # resets sensor-loss degradation).
            was_degraded = cols["pre_degraded"][i] and pre_tier >= int(
                Tier.DEGRADE
            )
            if not was_degraded:
                self.manager.sessions_degraded += 1
                self.manager.telemetry.record_event(
                    "session_degraded",
                    session=session_id,
                    step=steps,
                    reclaimed_j=0.0,
                )
        recorder = session.step_metrics
        if recorder is not None:
            effective = cols["budget_j"][i] + cols["adjustment_j"][i]
            used = cols["energy_used_j"][i]
            recorder.record(
                energy_j,
                cols["d_pole"][i],
                cols["epsilon"][i],
                used / max(effective, 1e-12),
                Tier(post),
                max(0.0, used - effective),
            )
        if cols["killed"][i]:
            burn = cols["last_burn"][i]
            self.manager.sessions_killed += 1
            self.manager.telemetry.record_event(
                "session_killed",
                session=session_id,
                step=steps,
                burn_fraction=round(burn, 6),
            )
            # Write the final controller/ladder state back, then close
            # through the manager so budget retirement is the scalar
            # path, byte for byte.
            self._evict(session_id)
            report = self.manager.close(session_id, reason="killed")
            return (
                {
                    "killed": True,
                    "report": report,
                    "enforcement": {"tier": "kill", "throttle_s": 0.0},
                },
                True,
            )
        f_idx, f_speed, f_acc, f_power = self._frontier_lists(pool)
        fpos = cols["d_fpos"][i]
        decision = {
            "system_index": cols["d_sys"][i],
            "app_index": f_idx[fpos],
            "app_speedup": f_speed[fpos],
            "app_accuracy": f_acc[fpos],
            "app_power_factor": f_power[fpos],
            "speedup_setpoint": cols["d_setpoint"][i],
            "pole": cols["d_pole"][i],
            "epsilon": cols["d_epsilon"][i],
            "explored": cols["d_explored"][i],
            "feasible": cols["d_feasible"][i],
        }
        enforcement = {
            "tier": Tier(post).label,
            "throttle_s": cols["throttle_s"][i],
        }
        return {"decision": decision, "enforcement": enforcement}, False

    # -- scalar solo path ----------------------------------------------
    def _solo_step(self, pending: _Pending) -> None:
        """Serve a lone heartbeat scalar-side (uncontended regime).

        Unlike a fallback this is a deliberate performance choice, not
        an inability to vectorize, so it has its own counter.  The
        resident row (if any) is evicted once at the regime change;
        the unmodified scalar step path then owns the session — which
        also keeps the rebalance cadence exact, since ``manager.step``
        advances the per-step counter itself.
        """
        self._evict(pending.session_id)
        # With no second session to interleave, run the whole frame to
        # completion — the same synchronous loop (and the same event-
        # loop occupancy) as the scalar backend's batch handler.
        while True:
            self.solos += 1
            self.manager.telemetry.record_vexec_solo()
            measurement, sensor_ok = pending.current
            try:
                entry = self._scalar_entry(
                    pending.session_id, measurement, sensor_ok
                )
            except Exception as exc:
                if not pending.future.done():
                    pending.future.set_exception(exc)
                return
            done = pending.push(entry) or bool(entry.get("killed"))
            if done or pending.future.cancelled():
                if not pending.future.done():
                    pending.future.set_result(pending.results)
                return

    # -- scalar fallback -----------------------------------------------
    def _fallback(self, pending: _Pending, reason: str) -> None:
        """Serve the frame's current entry via the scalar path."""
        self.fallbacks += 1
        self.manager.telemetry.record_vexec_fallback(reason)
        self._evict(pending.session_id)
        measurement, sensor_ok = pending.current
        try:
            entry = self._scalar_entry(
                pending.session_id, measurement, sensor_ok
            )
        except Exception as exc:
            if not pending.future.done():
                pending.future.set_exception(exc)
            return
        self._settle(pending, entry, bool(entry.get("killed")))

    def _scalar_entry(
        self, session_id: str, measurement: Any, sensor_ok: bool
    ) -> Dict[str, Any]:
        try:
            decision = self.manager.step(
                session_id, measurement, sensor_ok=sensor_ok
            )
        except SessionKilled as exc:
            return {
                "killed": True,
                "report": exc.report,
                "enforcement": {"tier": "kill", "throttle_s": 0.0},
            }
        return {
            "decision": decision_payload(decision),
            "enforcement": self.manager.enforcement_of(session_id),
        }

    # -- adopt / evict -------------------------------------------------
    def _pool_for(self, session: Session) -> "SessionPool":
        from ..fleet.cohort import CohortSpec
        from ..fleet.pool import SessionPool

        key = (session.machine_name, session.app_name)
        pool = self._pools.get(key)
        if pool is None:
            spec = CohortSpec.from_pair(
                self.manager._machine(session.machine_name),
                self.manager._app(session.app_name),
            )
            pool = SessionPool(
                spec,
                policy=self.manager.enforcement,
                smoothing=self.manager.smoothing,
                mode="exact",
            )
            self._pools[key] = pool
        return pool

    def _adopt(
        self, session: Session
    ) -> Optional[Tuple[SessionPool, int]]:
        """Lower one session into its cohort pool (None = can't)."""
        from ..fleet.pool import FleetError

        pool = self._pool_for(session)
        try:
            row = pool.adopt(
                session.runtime,
                seed=session.seed,
                steps=session.steps,
                ladder=session.ladder,
                recent_epw=session.recent_epw,
                recent_step_energy_j=session.recent_step_energy_j,
                degraded=session.degraded,
                throttle_s=session.throttle_s,
                warm=session.warm_started,
            )
        except FleetError as exc:
            # The caller serves the frame via the scalar fallback
            # path, which counts it (reason="adopt"); keep the cause
            # for diagnosis since the counter only keeps the reason.
            self.last_adopt_error = f"{type(exc).__name__}: {exc}"
            return None
        self._rows[session.session_id] = (pool, row)
        self.manager.telemetry.record_vexec_adopt(len(self._rows))
        return pool, row

    def _evict(self, session_id: Optional[str]) -> None:
        """Write one pooled session back to its scalar objects."""
        if session_id is None:
            return
        placed = self._rows.pop(session_id, None)
        if placed is None:
            return
        pool, row = placed
        session = self.manager._sessions.get(session_id)
        if session is None:  # defensive: orphaned row, just retire it
            pool.close_rows(np.array([row]))
        else:
            state = pool.evict(
                row, session.runtime, ladder=session.ladder
            )
            session.steps = state["steps"]
            session.recent_epw = state["recent_epw"]
            session.recent_step_energy_j = state[
                "recent_step_energy_j"
            ]
            session.degraded = state["degraded"]
            session.throttle_s = state["throttle_s"]
        self.manager.telemetry.record_vexec_evict(len(self._rows))
        self._maybe_compact(pool)

    def _scalar_sync(self, session_id: Optional[str]) -> None:
        """The :attr:`SessionManager.scalar_sync` hook.

        ``None`` means "everything": whole-manager sweeps need every
        session scalar-current.  Re-entry is safe: rows are popped
        before evicting, so the manager calls the hook makes on the
        way (close -> report -> _get) find nothing to do.
        """
        if session_id is not None:
            self._evict(session_id)
            return
        for sid in list(self._rows):
            self._evict(sid)

    def _accounting_sync(self) -> None:
        """The cheap :attr:`SessionManager.accounting_sync` hook.

        Rebalance fires roughly once per flush under load (every
        ``rebalance_period`` survivor steps), and a full evict/re-adopt
        of the pool there costs more than the vectorized step saves.
        It only reads accountant tallies and the smoothed epw, so copy
        exactly those onto the scalar objects — the same float values
        :meth:`SessionPool.evict` would have written — and leave the
        rows resident.
        """
        for sid, (pool, row) in self._rows.items():
            session = self.manager._sessions.get(sid)
            if session is None:
                continue
            accountant = session.runtime.accountant
            accountant.work_done = float(pool.work_done[row])
            accountant.energy_used_j = float(pool.energy_used_j[row])
            session.recent_epw = (
                float(pool.recent_epw[row])
                if bool(pool.has_epw[row])
                else None
            )

    def _accounting_merge(self) -> None:
        """The :attr:`SessionManager.accounting_merge` hook.

        A rebalance plan just landed on the scalar accountants
        (``adjust_budget``); pooled rows must price their next step
        against the same effective budgets.  Adjustments are the only
        accountant field a rebalance writes, so this is the whole
        write-back.
        """
        for sid, (pool, row) in self._rows.items():
            session = self.manager._sessions.get(sid)
            if session is None:
                continue
            pool.adjustment_j[row] = (
                session.runtime.accountant.adjustment_j
            )

    def _maybe_compact(self, pool: SessionPool) -> None:
        if pool.n - pool.alive_count < _COMPACT_SLACK and not (
            pool.alive_count == 0 and pool.n > 0
        ):
            return
        kept = pool.compact()
        remap = {int(old): new for new, old in enumerate(kept)}
        for sid, (p, row) in list(self._rows.items()):
            if p is pool:
                self._rows[sid] = (p, remap[row])
