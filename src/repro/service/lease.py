"""Zero-sum budget leases for the shard router.

The sharded daemon keeps ONE global energy budget coherent across many
worker processes without a global lock: the router owns a
:class:`LeaseLedger` and moves joules between its *unleased* pool and
per-worker *leases* with the ``admin_lease`` verb.  A worker can only
promise joules it holds a lease on, so the sum the fleet can commit is
bounded by the global budget at every instant — the same conservation
argument :mod:`repro.core.multi` makes for per-session budgets, lifted
one level up to per-worker pools.

The ledger accounts in **integer microjoules**.  Every movement is an
exact integer transfer between three buckets::

    unleased + sum(leased per shard) + forfeited == total   (always)

``forfeited`` is the crash sink: when a worker dies, its entire lease
(committed grants, spent joules, and free headroom alike) is written
off as spent.  That is deliberately conservative — the fleet can lose
budget to a crash but can never double-spend it, which is the half of
the invariant the hard enforcement guarantee rests on.

Residual grants of killed/retired sessions flow back the other way:
closing a session raises its worker's free headroom, the router shrinks
the worker's budget with ``admin_lease`` (the worker clamps at
``spent + committed``, so only genuinely free joules move), and
:meth:`LeaseLedger.reclaim` returns them to the unleased pool for the
next admission anywhere in the fleet.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = [
    "LeaseLedger",
    "LedgerError",
    "UJ_PER_J",
    "joules_to_uj",
    "uj_to_joules",
]

#: Microjoules per joule — the ledger's fixed-point scale.
UJ_PER_J = 10**6


def joules_to_uj(value_j: float) -> int:
    """Joules to integer microjoules (round-half-even)."""
    return int(round(value_j * UJ_PER_J))


def uj_to_joules(value_uj: int) -> float:
    """Integer microjoules back to (exact, for sane budgets) joules."""
    return value_uj / UJ_PER_J


class LedgerError(RuntimeError):
    """An operation that would break the ledger's conservation law."""


class LeaseLedger:
    """Integer-microjoule ledger of per-shard budget leases.

    Parameters
    ----------
    total_j:
        The global budget the whole fleet may ever promise, in joules.
    shards:
        Shard names to register up front (more can join later via
        :meth:`add_shard`; a name is registered once and survives the
        shard's crash/restart cycles).
    """

    def __init__(self, total_j: float, shards: Iterable[str] = ()) -> None:
        total_uj = joules_to_uj(total_j)
        if total_uj <= 0:
            raise ValueError("ledger total must be positive")
        self.total_uj = total_uj
        self.unleased_uj = total_uj
        self.leased_uj: Dict[str, int] = {}
        self.forfeited_uj = 0
        self.forfeits = 0
        #: Movement log: ``(op, shard, amount_uj)`` in apply order.
        self.history: List[Tuple[str, str, int]] = []
        for shard in shards:
            self.add_shard(shard)

    # -- registration ----------------------------------------------------------
    def add_shard(self, shard: str) -> None:
        """Register a shard name with a zero opening balance."""
        if shard in self.leased_uj:
            raise LedgerError(f"shard {shard!r} is already registered")
        self.leased_uj[shard] = 0

    def _known(self, shard: str) -> None:
        if shard not in self.leased_uj:
            raise LedgerError(f"unknown shard {shard!r}")

    # -- movements -------------------------------------------------------------
    def lease(self, shard: str, amount_uj: int) -> int:
        """Move ``amount_uj`` from the unleased pool to ``shard``."""
        self._known(shard)
        if amount_uj < 0:
            raise LedgerError("lease amount must be >= 0")
        if amount_uj > self.unleased_uj:
            raise LedgerError(
                f"cannot lease {amount_uj} uJ to {shard!r}: only "
                f"{self.unleased_uj} uJ unleased"
            )
        self.unleased_uj -= amount_uj
        self.leased_uj[shard] += amount_uj
        self.history.append(("lease", shard, amount_uj))
        return amount_uj

    def reclaim(self, shard: str, amount_uj: int) -> int:
        """Return ``amount_uj`` from ``shard`` to the unleased pool."""
        self._known(shard)
        if amount_uj < 0:
            raise LedgerError("reclaim amount must be >= 0")
        if amount_uj > self.leased_uj[shard]:
            raise LedgerError(
                f"cannot reclaim {amount_uj} uJ from {shard!r}: its "
                f"lease holds {self.leased_uj[shard]} uJ"
            )
        self.leased_uj[shard] -= amount_uj
        self.unleased_uj += amount_uj
        self.history.append(("reclaim", shard, amount_uj))
        return amount_uj

    def forfeit(self, shard: str) -> int:
        """Write off a crashed shard's entire lease as spent.

        Returns the forfeited amount.  The shard stays registered with
        a zero balance, ready for its restarted successor's first
        lease.
        """
        self._known(shard)
        amount_uj = self.leased_uj[shard]
        self.leased_uj[shard] = 0
        self.forfeited_uj += amount_uj
        self.forfeits += 1
        self.history.append(("forfeit", shard, amount_uj))
        return amount_uj

    # -- views -----------------------------------------------------------------
    @property
    def leased_total_uj(self) -> int:
        return sum(self.leased_uj.values())

    @property
    def available_j(self) -> float:
        """Joules the router can still lease out."""
        return uj_to_joules(self.unleased_uj)

    def balance_j(self, shard: str) -> float:
        self._known(shard)
        return uj_to_joules(self.leased_uj[shard])

    def assert_balanced(self) -> None:
        """Raise :class:`LedgerError` unless conservation holds exactly."""
        books = self.unleased_uj + self.leased_total_uj + self.forfeited_uj
        if books != self.total_uj:
            raise LedgerError(
                f"ledger out of balance: unleased {self.unleased_uj} + "
                f"leased {self.leased_total_uj} + forfeited "
                f"{self.forfeited_uj} = {books} uJ != total "
                f"{self.total_uj} uJ"
            )
        negatives = [
            shard
            for shard, balance in self.leased_uj.items()
            if balance < 0
        ]
        if self.unleased_uj < 0 or negatives:
            raise LedgerError(
                f"negative balances: unleased {self.unleased_uj} uJ, "
                f"shards {negatives}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_uj": self.total_uj,
            "unleased_uj": self.unleased_uj,
            "leased_uj": dict(self.leased_uj),
            "forfeited_uj": self.forfeited_uj,
            "forfeits": self.forfeits,
        }
