"""Daemon telemetry: one registry + one event log per daemon.

:class:`ServiceTelemetry` is the glue between the service layer and
:mod:`repro.obs`: it owns the :class:`~repro.obs.registry.MetricsRegistry`
scraped at ``GET /metrics`` (and served by the ``metrics`` verb) and
the :class:`~repro.obs.events.EventLog` behind the ``events`` verb,
and exposes the narrow recording surface the session manager and
server call on their hot paths.

Every recorder is a no-op when the telemetry is disabled
(:meth:`ServiceTelemetry.disabled`) — the throughput benchmark uses
that to measure instrumentation overhead as a clean A/B.
"""

from __future__ import annotations

from typing import Any, Optional

from ..enforce.ladder import Tier, TierTransition
from ..obs.events import EventLog
from ..obs.registry import MetricsRegistry

__all__ = ["ServiceTelemetry", "SessionStepRecorder"]


class SessionStepRecorder:
    """Pre-bound metric children for one session's step hot path.

    ``record_step`` resolves five labelled gauges and two counters per
    heartbeat; at 10k+ steps/s those dict lookups are measurable.  A
    recorder binds the children once at session open so the per-step
    cost is seven attribute loads and float stores.
    """

    __slots__ = (
        "_steps",
        "_energy",
        "_pole",
        "_epsilon",
        "_burn",
        "_tier",
        "_overdraft",
    )

    def __init__(self, telemetry: "ServiceTelemetry", session_id: str) -> None:
        self._steps = telemetry.steps.labels()
        self._energy = telemetry.energy_spent.labels()
        self._pole = telemetry.session_pole.labels(session_id)
        self._epsilon = telemetry.session_epsilon.labels(session_id)
        self._burn = telemetry.session_burn.labels(session_id)
        self._tier = telemetry.session_tier.labels(session_id)
        self._overdraft = telemetry.session_overdraft.labels(session_id)

    def record(
        self,
        energy_j: float,
        pole: float,
        epsilon: float,
        burn_fraction: float,
        tier: Tier,
        overdraft_j: float,
    ) -> None:
        self._steps.inc()
        self._energy.inc(max(0.0, energy_j))
        self._pole.set(pole)
        self._epsilon.set(epsilon)
        self._burn.set(burn_fraction)
        self._tier.set(float(int(tier)))
        self._overdraft.set(overdraft_j)


class ServiceTelemetry:
    """Metric families + event log for one daemon."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.events = EventLog()
        if not enabled:
            return
        reg = self.registry
        self.sessions_open = reg.gauge(
            "jg_sessions_open", "Live sessions hosted by the daemon."
        )
        self.sessions_opened = reg.counter(
            "jg_sessions_opened_total", "Sessions admitted, ever."
        )
        self.sessions_rejected = reg.counter(
            "jg_sessions_rejected_total",
            "Sessions refused at admission, ever.",
        )
        self.sessions_closed = reg.counter(
            "jg_sessions_closed_total",
            "Sessions closed, by close reason.",
            ("reason",),
        )
        self.steps = reg.counter(
            "jg_steps_total", "Heartbeats processed across all sessions."
        )
        self.energy_spent = reg.counter(
            "jg_energy_spent_joules_total",
            "Joules accounted across all sessions, ever.",
        )
        self.budget_global = reg.gauge(
            "jg_budget_global_joules", "Global energy budget of the pool."
        )
        self.budget_committed = reg.gauge(
            "jg_budget_committed_joules",
            "Joules currently promised to live sessions.",
        )
        self.budget_available = reg.gauge(
            "jg_budget_available_joules",
            "Joules the pool can still grant.",
        )
        self.enforcement_transitions = reg.counter(
            "jg_enforcement_transitions_total",
            "Enforcement ladder transitions, by edge.",
            ("from_tier", "to_tier"),
        )
        self.session_pole = reg.gauge(
            "jg_session_pole",
            "Current controller pole per session.",
            ("session",),
        )
        self.session_epsilon = reg.gauge(
            "jg_session_epsilon",
            "Current SEO exploration rate per session.",
            ("session",),
        )
        self.session_burn = reg.gauge(
            "jg_session_budget_burn_ratio",
            "Spent joules over effective budget per session.",
            ("session",),
        )
        self.session_tier = reg.gauge(
            "jg_session_tier",
            "Enforcement tier per session (0=nominal .. 4=kill).",
            ("session",),
        )
        self.session_overdraft = reg.gauge(
            "jg_session_overdraft_joules",
            "Hard-budget overdraft per session (0 unless breached).",
            ("session",),
        )
        self.requests = reg.counter(
            "jg_requests_total",
            "Protocol requests handled, by type and outcome.",
            ("type", "ok"),
        )
        self.request_seconds = reg.histogram(
            "jg_request_seconds",
            "Wall-clock seconds spent handling one request.",
        )
        self.vexec_flushes = reg.counter(
            "jg_vexec_flushes_total",
            "Gather-window flushes executed by the vectorized backend.",
        )
        self.vexec_steps = reg.counter(
            "jg_vexec_steps_total",
            "Heartbeats stepped through the vectorized pool, ever.",
        )
        self.vexec_batch_size = reg.histogram(
            "jg_vexec_batch_size",
            "Sessions stepped per vectorized flush.",
        )
        self.vexec_gather_seconds = reg.histogram(
            "jg_vexec_gather_seconds",
            "Wall-clock seconds from first enqueue to flush start.",
        )
        self.vexec_fallbacks = reg.counter(
            "jg_vexec_fallbacks_total",
            "Heartbeats served by the scalar fallback path, by reason.",
            ("reason",),
        )
        self.vexec_solo_steps = reg.counter(
            "jg_vexec_solo_steps_total",
            "Heartbeats served scalar-side by the uncontended solo "
            "fast path (a performance regime, not a fallback).",
        )
        self.vexec_adopts = reg.counter(
            "jg_vexec_adopts_total",
            "Sessions lowered into the vector pool, ever.",
        )
        self.vexec_evicts = reg.counter(
            "jg_vexec_evicts_total",
            "Sessions written back to scalar objects, ever.",
        )
        self.vexec_pooled = reg.gauge(
            "jg_vexec_pooled_sessions",
            "Sessions currently resident in the vector pool.",
        )

    @classmethod
    def disabled(cls) -> "ServiceTelemetry":
        """A telemetry sink whose recorders are all no-ops."""
        return cls(enabled=False)

    def step_recorder(
        self, session_id: str
    ) -> Optional[SessionStepRecorder]:
        """Pre-bound per-step recorder for one session (None if disabled)."""
        if not self.enabled:
            return None
        return SessionStepRecorder(self, session_id)

    # -- recorders (no-ops when disabled) --------------------------------------
    def record_open(self, session_id: str, open_count: int) -> None:
        if not self.enabled:
            return
        self.sessions_opened.inc()
        self.sessions_open.set(open_count)
        self.events.append("session_opened", session=session_id)

    def record_reject(self, code: str) -> None:
        if not self.enabled:
            return
        self.sessions_rejected.inc()
        self.events.append("session_rejected", code=code)

    def record_close(
        self, session_id: str, reason: str, open_count: int
    ) -> None:
        if not self.enabled:
            return
        self.sessions_closed.labels(reason).inc()
        self.sessions_open.set(open_count)
        for gauge in (
            self.session_pole,
            self.session_epsilon,
            self.session_burn,
            self.session_tier,
            self.session_overdraft,
        ):
            gauge.remove(session_id)
        self.events.append(
            "session_closed", session=session_id, reason=reason
        )

    def record_step(
        self,
        session_id: str,
        energy_j: float,
        pole: float,
        epsilon: float,
        burn_fraction: float,
        tier: Tier,
        overdraft_j: float,
    ) -> None:
        if not self.enabled:
            return
        self.steps.inc()
        self.energy_spent.inc(max(0.0, energy_j))
        self.session_pole.labels(session_id).set(pole)
        self.session_epsilon.labels(session_id).set(epsilon)
        self.session_burn.labels(session_id).set(burn_fraction)
        self.session_tier.labels(session_id).set(float(int(tier)))
        self.session_overdraft.labels(session_id).set(overdraft_j)

    def record_pool(
        self, global_j: float, committed_j: float, available_j: float
    ) -> None:
        if not self.enabled:
            return
        self.budget_global.set(global_j)
        self.budget_committed.set(committed_j)
        self.budget_available.set(available_j)

    def record_transition(
        self, session_id: str, transition: TierTransition
    ) -> None:
        if not self.enabled:
            return
        self.enforcement_transitions.labels(
            transition.from_tier.label, transition.to_tier.label
        ).inc()
        fields = transition.as_dict()
        self.events.append(
            "tier_transition",
            session=session_id,
            step=fields["step"],
            edge=f"{fields['from']}->{fields['to']}",
            projected_overrun=round(fields["projected_overrun"], 6),
        )

    def record_event(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.events.append(kind, **fields)

    def record_vexec_flush(
        self, batch_size: int, gather_seconds: float, steps: int
    ) -> None:
        """One vectorized gather-window flush (vexec backend only)."""
        if not self.enabled:
            return
        self.vexec_flushes.inc()
        self.vexec_steps.inc(steps)
        self.vexec_batch_size.observe(float(batch_size))
        self.vexec_gather_seconds.observe(max(0.0, gather_seconds))

    def record_vexec_fallback(self, reason: str) -> None:
        if not self.enabled:
            return
        self.vexec_fallbacks.labels(reason).inc()

    def record_vexec_solo(self) -> None:
        """One heartbeat served by the solo scalar fast path."""
        if not self.enabled:
            return
        self.vexec_solo_steps.inc()

    def record_vexec_adopt(self, pooled: int) -> None:
        if not self.enabled:
            return
        self.vexec_adopts.inc()
        self.vexec_pooled.set(pooled)

    def record_vexec_evict(self, pooled: int) -> None:
        if not self.enabled:
            return
        self.vexec_evicts.inc()
        self.vexec_pooled.set(pooled)

    def record_request(
        self, request_type: str, ok: bool, seconds: float
    ) -> None:
        if not self.enabled:
            return
        self.requests.labels(
            request_type, "true" if ok else "false"
        ).inc()
        self.request_seconds.observe(max(0.0, seconds))
