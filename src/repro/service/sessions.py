"""Session management for the JouleGuard daemon.

One :class:`SessionManager` hosts many concurrent controller sessions —
one :class:`~repro.core.jouleguard.JouleGuardRuntime` each — under a
single *global* energy budget, extending :mod:`repro.core.multi` from a
fixed fleet to a dynamic one:

* **admission control** — a session is rejected up front when its goal
  is infeasible (``factor`` beyond
  :func:`repro.runtime.oracle.max_feasible_factor`, Sec. 3.4.3) or when
  the remaining global budget cannot cover its requested share, so the
  daemon never promises joules it does not have;
* **budget accounts** — each admitted session is granted
  ``total_work × default_epw / factor`` joules; periodic rebalances
  move forecast surplus from under-spenders to strainers exactly as
  :class:`~repro.core.multi.MultiAppCoordinator` does, conserving the
  sum of effective budgets; closing a session returns its unspent
  grant to the pool;
* **warm starts** — on open, a known ``(machine, app)`` pair restores
  learned state from the :class:`~repro.service.state.SnapshotStore`
  (reseeded from the session's RNG seed, keeping replication exact);
* **idle reaping** — sessions silent longer than ``idle_timeout_s``
  are closed and their budget reclaimed.

The manager is synchronous and single-threaded by design: the asyncio
server serializes access on its event loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NoReturn,
    Optional,
    Tuple,
)

from ..apps import build_application
from ..apps.base import ApproximateApplication
from ..core.bandit import SystemEnergyOptimizer
from ..core.budget import BudgetAccountant, EnergyGoal
from ..core.contracts import ContractError
from ..core.jouleguard import Decision, JouleGuardRuntime
from ..core.types import Measurement
from ..enforce.ladder import (
    DEFAULT_LADDER,
    EnforcementLadder,
    LadderPolicy,
    Tier,
    overdraft_signal,
)
from ..hw import get_machine
from ..hw.machine import Machine
from ..runtime.harness import prior_shapes
from ..runtime.oracle import default_energy_per_work, max_feasible_factor
from .state import SnapshotError, SnapshotStore, apply_state, capture_state
from .telemetry import ServiceTelemetry, SessionStepRecorder

__all__ = [
    "Session",
    "SessionError",
    "SessionKilled",
    "SessionManager",
    "plan_rebalance",
]


def plan_rebalance(
    surpluses: Dict[str, float],
    overdrafts: Dict[str, float],
    transfer_fraction: float,
) -> Dict[str, float]:
    """Pure transfer plan: per-session budget deltas, summing to zero.

    The donor/needer math of :meth:`SessionManager.rebalance` (itself
    mirroring :meth:`repro.core.multi.MultiAppCoordinator.rebalance`),
    extracted so the shard router can run the *identical* computation
    over surpluses gathered from every worker: same inputs in the same
    dict order produce bit-identical deltas, which is what the
    cross-shard lockstep rig asserts.

    ``surpluses`` maps session id to forecast surplus (negative =
    deficit); ``overdrafts`` maps session id to how far its spend
    already exceeds its budget (0 for healthy sessions).  Iteration
    order of ``surpluses`` is the tie-breaking order of the plan, so
    callers must present sessions in global open order.
    """
    donors = {s: v for s, v in surpluses.items() if v > 0}
    needers = {s: -v for s, v in surpluses.items() if v < 0}
    deltas = {session_id: 0.0 for session_id in surpluses}
    while donors and needers:
        available = sum(donors.values()) * transfer_fraction
        needed = sum(needers.values())
        moved = min(available, needed)
        if moved <= 0:
            break
        # A grant below a session's overdraft cannot lift it back
        # above water and the accountant rejects it (an effective
        # budget may never end up under what is already spent), so
        # drop such needers and re-split among the rest.
        undersized = [
            session_id
            for session_id, deficit in needers.items()
            if moved * deficit / needed
            < overdrafts.get(session_id, 0.0) - 1e-9
        ]
        if undersized:
            for session_id in undersized:
                del needers[session_id]
            continue
        donor_total = sum(donors.values())
        for session_id, surplus in donors.items():
            deltas[session_id] -= moved * surplus / donor_total
        for session_id, deficit in needers.items():
            deltas[session_id] += moved * deficit / needed
        break
    return deltas


class SessionError(RuntimeError):
    """A session operation the manager refuses, with a protocol code.

    ``data`` carries optional machine-readable context for the error
    envelope (protocol v3): a ``budget_exhausted`` rejection includes
    ``needed_j``/``available_j`` so the shard router can size a lease
    top-up instead of parsing the message.
    """

    def __init__(
        self,
        code: str,
        message: str,
        data: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data or {}


class SessionKilled(SessionError):
    """The enforcement ladder terminated this session (hard bound).

    Carries the session's final report — the budget is already retired
    (the session is closed) by the time this is raised, so the caller's
    only job is to relay the outcome.
    """

    def __init__(self, message: str, report: Dict[str, Any]) -> None:
        super().__init__("session_killed", message)
        self.report = report


@dataclass
class Session:
    """One live controller session."""

    session_id: str
    client: str
    machine_name: str
    app_name: str
    factor: float
    seed: int
    granted_budget_j: float
    runtime: JouleGuardRuntime
    warm_started: bool
    created_s: float
    last_active_s: float
    steps: int = 0
    recent_epw: Optional[float] = None
    closed: bool = False
    close_reason: str = ""
    degraded: bool = False
    sensor_failures: int = 0
    reclaimed_j: float = 0.0
    ladder: Optional[EnforcementLadder] = None
    recent_step_energy_j: Optional[float] = None
    throttle_s: float = 0.0
    step_metrics: Optional[SessionStepRecorder] = None

    @property
    def decision(self) -> Decision:
        return self.runtime.current_decision

    @property
    def tier(self) -> Tier:
        return self.ladder.tier if self.ladder is not None else Tier.NOMINAL


class SessionManager:
    """Hosts concurrent JouleGuard sessions under one global budget.

    Parameters
    ----------
    global_budget_j:
        Joules the daemon may promise across all sessions, ever.
    store:
        Warm-start snapshot store (fresh in-memory store by default).
    idle_timeout_s:
        Sessions silent this long are reaped (see :meth:`reap_idle`).
    feasibility_margin:
        Fraction of the oracle's maximum feasible factor admitted;
        below 1.0 keeps a safety margin against model noise.
    rebalance_period:
        Total manager steps between budget rebalances (as in
        :class:`~repro.core.multi.MultiAppCoordinator`).
    transfer_fraction / smoothing:
        Rebalance conservatism knobs, matching :mod:`repro.core.multi`.
    degrade_after:
        Consecutive sensor-loss heartbeats a session may send before
        the manager degrades it (pins its most conservative known-safe
        configuration and reclaims its forecast surplus) instead of
        letting it keep steering on untrustworthy feedback.
    enforcement:
        :class:`~repro.enforce.ladder.LadderPolicy` driving each
        session's enforcement ladder (``ADVISE -> DEGRADE -> THROTTLE
        -> KILL``); ``None`` disables enforcement entirely (the
        pre-ladder behaviour, kept for A/B benchmarks).
    telemetry:
        :class:`~repro.service.telemetry.ServiceTelemetry` sink; a
        fresh enabled one is created by default.  Pass
        ``ServiceTelemetry.disabled()`` to measure instrumentation
        overhead.
    clock:
        Monotonic time source, injectable for tests.
    session_prefix:
        Prepended to every session id (``w0-s000001``).  A shard
        worker gets a prefix unique to its (worker, restart-epoch)
        pair so the router can route any session id to its worker by
        prefix and a restarted worker can never collide with ids its
        predecessor handed out.
    external_rebalance:
        When True, :meth:`step` never triggers the local rebalance
        cadence — an external coordinator (the shard router) gathers
        :meth:`rebalance_inputs` across workers and pushes one global
        plan back through :meth:`apply_rebalance` instead.
    """

    def __init__(
        self,
        global_budget_j: float,
        store: Optional[SnapshotStore] = None,
        idle_timeout_s: float = 300.0,
        feasibility_margin: float = 1.0,
        rebalance_period: int = 25,
        transfer_fraction: float = 0.5,
        smoothing: float = 0.25,
        degrade_after: int = 3,
        enforcement: Optional[LadderPolicy] = DEFAULT_LADDER,
        telemetry: Optional[ServiceTelemetry] = None,
        clock: Callable[[], float] = time.monotonic,
        session_prefix: str = "",
        external_rebalance: bool = False,
    ) -> None:
        if global_budget_j <= 0:
            raise ValueError("global budget must be positive")
        if idle_timeout_s <= 0:
            raise ValueError("idle timeout must be positive")
        if not 0.0 < feasibility_margin <= 1.0:
            raise ValueError("feasibility margin must be in (0, 1]")
        if rebalance_period < 1:
            raise ValueError("rebalance period must be >= 1")
        if not 0.0 < transfer_fraction <= 1.0:
            raise ValueError("transfer_fraction must be in (0, 1]")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        self.degrade_after = degrade_after
        self.enforcement = enforcement
        self.telemetry = (
            telemetry if telemetry is not None else ServiceTelemetry()
        )
        self.global_budget_j = global_budget_j
        self.store = store if store is not None else SnapshotStore()
        self.idle_timeout_s = idle_timeout_s
        self.feasibility_margin = feasibility_margin
        self.rebalance_period = rebalance_period
        self.transfer_fraction = transfer_fraction
        self.smoothing = smoothing
        self.clock = clock
        self.session_prefix = session_prefix
        self.external_rebalance = external_rebalance
        self._sessions: Dict[str, Session] = {}
        self._next_serial = 1
        self._spent_closed_j = 0.0
        self._steps_since_rebalance = 0
        self.transfers: List[Dict[str, float]] = []
        self.sessions_opened = 0
        self.sessions_rejected = 0
        self.sessions_degraded = 0
        self.sessions_killed = 0
        self.warm_start_failures = 0
        self.budget_revisions: List[Dict[str, float]] = []
        self._admission_cache: Dict[
            Tuple[str, str], Tuple[float, float]
        ] = {}
        self._machines: Dict[str, Machine] = {}
        self._apps: Dict[str, ApproximateApplication] = {}
        #: Sync-on-demand hook for the vectorized execution backend
        #: (:mod:`repro.service.vexec`).  When set, it is called with a
        #: session id before any scalar read/write of that session, and
        #: with ``None`` before whole-manager sweeps (rebalance), so a
        #: pooled session is evicted back to its scalar objects before
        #: any code path that expects them to be current.  ``None``
        #: (the default) means every session is always scalar.
        self.scalar_sync: Optional[Callable[[Optional[str]], None]] = None
        #: Cheaper companions for the rebalance sweep, which reads only
        #: accounting state (tallies, smoothed epw) and writes only
        #: budget adjustments.  ``accounting_sync`` makes the scalar
        #: accountants current *without* evicting pooled sessions;
        #: ``accounting_merge`` pushes the adjustments a rebalance
        #: granted back into the pooled rows afterwards.  When unset,
        #: rebalance falls back to a full ``scalar_sync(None)`` evict.
        self.accounting_sync: Optional[Callable[[], None]] = None
        self.accounting_merge: Optional[Callable[[], None]] = None
        self._record_pool()

    # -- budget pool -----------------------------------------------------------
    @property
    def live_sessions(self) -> List[Session]:
        return list(self._sessions.values())

    @property
    def committed_budget_j(self) -> float:
        """Joules currently promised to live sessions."""
        return sum(
            session.runtime.accountant.effective_budget_j
            for session in self._sessions.values()
        )

    @property
    def available_budget_j(self) -> float:
        """Joules the pool can still grant to new sessions."""
        return (
            self.global_budget_j
            - self._spent_closed_j
            - self.committed_budget_j
        )

    def _record_pool(self) -> None:
        self.telemetry.record_pool(
            self.global_budget_j,
            self.committed_budget_j,
            self.available_budget_j,
        )

    # -- model caches ----------------------------------------------------------
    def _machine(self, name: str) -> Machine:
        if name not in self._machines:
            try:
                self._machines[name] = get_machine(name)
            except (KeyError, ValueError) as exc:
                raise SessionError(
                    "unknown_machine", f"unknown machine {name!r}"
                ) from exc
        return self._machines[name]

    def _app(self, name: str) -> ApproximateApplication:
        if name not in self._apps:
            try:
                self._apps[name] = build_application(name)
            except (KeyError, ValueError) as exc:
                raise SessionError(
                    "unknown_application", f"unknown application {name!r}"
                ) from exc
        return self._apps[name]

    def _admission_limits(
        self, machine: Machine, app: ApproximateApplication
    ) -> Tuple[float, float]:
        """(default_epw, admitted factor limit), cached per pair."""
        key = (machine.name, app.name)
        if key not in self._admission_cache:
            self._admission_cache[key] = (
                default_energy_per_work(machine, app),
                max_feasible_factor(machine, app)
                * self.feasibility_margin,
            )
        return self._admission_cache[key]

    # -- lifecycle -------------------------------------------------------------
    def open_session(
        self,
        machine_name: str,
        app_name: str,
        factor: float,
        total_work: float,
        seed: int = 0,
        warm_start: bool = True,
        client: str = "",
    ) -> Session:
        """Admit one session, or raise :class:`SessionError`.

        The RNG ``seed`` flows end-to-end: the SEO is built with
        ``seed + 1`` exactly as :func:`repro.runtime.harness.run_jouleguard`
        does, so a daemon-hosted session replicates a harness run that
        used the same seed (``runtime.repeat``-style replication works
        against the service).
        """
        machine = self._machine(machine_name)
        app = self._app(app_name)
        if not app.runs_on(machine.name):
            self._reject(
                "bad_request",
                f"{app_name} does not run on {machine_name}",
            )
        if factor < 1.0:
            self._reject(
                "bad_request", "factor must be >= 1 (1 = default energy)"
            )
        if total_work <= 0:
            self._reject("bad_request", "total_work must be positive")
        default_epw, factor_limit = self._admission_limits(machine, app)
        if factor > factor_limit:
            self._reject(
                "infeasible_goal",
                f"factor {factor:g} exceeds the feasible limit "
                f"{factor_limit:.2f} for {app_name} on {machine_name} "
                "(Sec. 3.4.3)",
            )
        needed_j = total_work * default_epw / factor
        if needed_j > self.available_budget_j + 1e-9:
            self._reject(
                "budget_exhausted",
                f"session needs {needed_j:.3f} J but only "
                f"{max(self.available_budget_j, 0.0):.3f} J of the "
                "global budget remains unallocated",
                data={
                    "needed_j": needed_j,
                    "available_j": max(self.available_budget_j, 0.0),
                },
            )

        rate_shape, power_shape = prior_shapes(machine)
        seo = SystemEnergyOptimizer(
            rate_shape, power_shape, seed=seed + 1
        )
        goal = EnergyGoal(total_work=total_work, budget_j=needed_j)
        runtime = JouleGuardRuntime(seo=seo, table=app.table, goal=goal)

        warm = False
        if warm_start:
            snapshot = self.store.get(machine.name, app.name)
            if snapshot is not None:
                try:
                    apply_state(
                        runtime,
                        snapshot,
                        machine=machine.name,
                        app=app.name,
                        seed=seed + 1,
                    )
                    warm = True
                except SnapshotError:
                    # Stale store entry: record it, fall back to cold.
                    self.warm_start_failures += 1
                    warm = False

        now_s = self.clock()
        session = Session(
            session_id=f"{self.session_prefix}s{self._next_serial:06d}",
            client=client,
            machine_name=machine.name,
            app_name=app.name,
            factor=factor,
            seed=seed,
            granted_budget_j=needed_j,
            runtime=runtime,
            warm_started=warm,
            created_s=now_s,
            last_active_s=now_s,
        )
        self._next_serial += 1
        if self.enforcement is not None:
            session.ladder = EnforcementLadder(policy=self.enforcement)
        self._sessions[session.session_id] = session
        self.sessions_opened += 1
        session.step_metrics = self.telemetry.step_recorder(
            session.session_id
        )
        self.telemetry.record_open(
            session.session_id, len(self._sessions)
        )
        self._record_pool()
        return session

    def _reject(
        self,
        code: str,
        message: str,
        data: Optional[Dict[str, float]] = None,
    ) -> NoReturn:
        self.sessions_rejected += 1
        self.telemetry.record_reject(code)
        raise SessionError(code, message, data=data)

    def _get(self, session_id: str) -> Session:
        if self.scalar_sync is not None:
            self.scalar_sync(session_id)
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(
                "unknown_session",
                f"no live session {session_id!r} "
                "(closed, reaped, or never opened)",
            )
        return session

    def step(
        self,
        session_id: str,
        measurement: Measurement,
        sensor_ok: bool = True,
    ) -> Decision:
        """Feed one heartbeat; rebalance budgets on schedule.

        ``sensor_ok=False`` marks the heartbeat's energy/power values
        as untrustworthy (the client's sensor is lost and holding
        over).  The manager keeps accounting such heartbeats — using
        its own smoothed energy-per-work estimate where it has one, the
        conservative choice — but stops feeding them to the learner;
        after :attr:`degrade_after` consecutive failures the session is
        degraded (see :meth:`_degrade`) rather than killed.  A healthy
        heartbeat clears the failure streak and resumes normal control.

        After the controller runs, the heartbeat feeds the session's
        enforcement ladder: tier transitions may pin the safe fallback,
        set a duty-cycle sleep (:attr:`Session.throttle_s`), or — if
        the hard bound is about to be breached — close the session and
        raise :class:`SessionKilled` carrying the final report.
        """
        session = self._get(session_id)
        session.steps += 1
        session.last_active_s = self.clock()
        if not sensor_ok:
            decision, energy_j = self._step_without_sensor(
                session, measurement
            )
        else:
            session.sensor_failures = 0
            if session.tier < Tier.DEGRADE:
                # A ladder-degraded session stays degraded until the
                # ladder itself de-escalates; a healthy sensor only
                # clears sensor-loss degradation.
                session.degraded = False
            epw = measurement.energy_j / measurement.work
            if session.recent_epw is None:
                session.recent_epw = epw
            else:
                session.recent_epw += self.smoothing * (
                    epw - session.recent_epw
                )
            energy_j = measurement.energy_j
            decision = session.runtime.step(measurement)
        if session.recent_step_energy_j is None:
            session.recent_step_energy_j = energy_j
        else:
            session.recent_step_energy_j += self.smoothing * (
                energy_j - session.recent_step_energy_j
            )
        decision = self._enforce(session, decision, energy_j)
        if not self.external_rebalance:
            self._steps_since_rebalance += 1
            if self._steps_since_rebalance >= self.rebalance_period:
                self.rebalance()
                self._steps_since_rebalance = 0
        return decision

    def _step_without_sensor(
        self, session: Session, measurement: Measurement
    ) -> Tuple[Decision, float]:
        """One heartbeat with no trustworthy sensor behind it."""
        session.sensor_failures += 1
        accountant = session.runtime.accountant
        # Account the work conservatively: trust our own smoothed
        # estimate of this session's energy per work over the client's
        # held-over numbers, and never below what the client reported.
        energy_j = measurement.energy_j
        if session.recent_epw is not None:
            energy_j = max(
                energy_j, session.recent_epw * measurement.work
            )
        accountant.record(measurement.work, energy_j)
        if (
            not session.degraded
            and session.sensor_failures >= self.degrade_after
        ):
            self._degrade(session)
        return session.runtime.current_decision, energy_j

    # -- enforcement ---------------------------------------------------
    def _enforce(
        self, session: Session, decision: Decision, energy_j: float
    ) -> Decision:
        """Run one ladder observation; apply the resulting tier.

        DEGRADE pins the safe fallback; THROTTLE additionally sets the
        duty-cycle sleep the server injects into the step loop; KILL
        closes the session with its budget retired exactly and raises
        :class:`SessionKilled`.  Unlike sensor-loss degradation
        (:meth:`_degrade`), ladder degradation reclaims nothing: the
        session still reports honest measurements, its forecast surplus
        stays its own, and the pool's zero-sum rebalance invariant
        (``sum(effective) == sum(granted)`` absent closes) survives
        enforcement untouched.
        """
        ladder = session.ladder
        if ladder is None:
            self._record_step_metrics(session, energy_j)
            return decision
        signal = overdraft_signal(
            session.runtime.accountant,
            session.recent_epw,
            session.recent_step_energy_j,
        )
        previous = ladder.tier
        tier = ladder.observe(signal, session.steps)
        if tier is not previous:
            self.telemetry.record_transition(
                session.session_id, ladder.transitions[-1]
            )
        if Tier.DEGRADE <= tier < Tier.KILL:
            if not session.degraded:
                session.degraded = True
                self.sessions_degraded += 1
                self.telemetry.record_event(
                    "session_degraded",
                    session=session.session_id,
                    step=session.steps,
                    reclaimed_j=0.0,
                )
            # Re-assert the pin every enforced step: runtime.step()
            # above resumed normal control (the pin is per-decision).
            session.runtime.pin_safe_fallback()
            decision = session.runtime.current_decision
        session.throttle_s = ladder.throttle_s()
        self._record_step_metrics(session, energy_j)
        if tier is Tier.KILL:
            self._kill(session, signal)
        return decision

    def _kill(self, session: Session, signal: Any) -> NoReturn:
        """Terminate a session at the top of the ladder.

        Closing retires the full spend and returns the unspent grant to
        the pool (zero-sum, same path as a client close), so the hard
        guarantee costs the pool nothing beyond what was burned.
        """
        self.sessions_killed += 1
        self.telemetry.record_event(
            "session_killed",
            session=session.session_id,
            step=session.steps,
            burn_fraction=round(signal.burn_fraction, 6),
        )
        report = self.close(session.session_id, reason="killed")
        raise SessionKilled(
            f"session {session.session_id} killed by the enforcement "
            f"ladder at step {session.steps} "
            f"(burn {signal.burn_fraction:.3f} of hard budget)",
            report,
        )

    def _record_step_metrics(
        self, session: Session, energy_j: float
    ) -> None:
        recorder = session.step_metrics
        if recorder is None:
            return
        accountant = session.runtime.accountant
        burn = accountant.energy_used_j / max(
            accountant.effective_budget_j, 1e-12
        )
        recorder.record(
            energy_j,
            session.decision.pole,
            session.runtime.seo.epsilon,
            burn,
            session.tier,
            max(
                0.0,
                accountant.energy_used_j
                - accountant.effective_budget_j,
            ),
        )

    def _degrade(self, session: Session) -> None:
        """Fall back to known-safe operation instead of dying.

        The session's runtime pins its most conservative known-safe
        configuration (minimum-energy operation, Sec. 3.4.3), and the
        budget accountant reclaims the session's forecast surplus for
        the pool — a blind session must not sit on joules that healthy
        sessions could use.
        """
        session.degraded = True
        self.sessions_degraded += 1
        session.runtime.pin_safe_fallback()
        surplus = self._forecast_surplus(session)
        accountant = session.runtime.accountant
        # Never reclaim below what is already spent (the accountant
        # would reject it) and never "reclaim" a deficit.
        reclaimable = min(
            max(0.0, surplus),
            max(
                0.0,
                accountant.effective_budget_j
                - accountant.energy_used_j,
            ),
        )
        if reclaimable > 0.0:
            accountant.adjust_budget(-reclaimable)
            session.reclaimed_j += reclaimable
        self.telemetry.record_event(
            "session_degraded",
            session=session.session_id,
            step=session.steps,
            reclaimed_j=round(reclaimable, 6),
        )
        self._record_pool()

    def revise_global_budget(self, new_budget_j: float) -> float:
        """Revise the global pool mid-run; return the applied budget.

        Models an operator or battery revising the energy available to
        the daemon.  The pool can grow freely, but it can never shrink
        below what is already spent or promised — burned joules are
        gone and grants are contracts — so a cut is clamped to
        ``spent + committed``.  Each revision is recorded in
        :attr:`budget_revisions`.
        """
        if new_budget_j <= 0:
            raise ValueError("global budget must be positive")
        floor_j = self._spent_closed_j + self.committed_budget_j
        applied_j = max(new_budget_j, floor_j)
        self.budget_revisions.append(
            {
                "requested_j": new_budget_j,
                "applied_j": applied_j,
                "previous_j": self.global_budget_j,
            }
        )
        # Baselined JGF301: a deliberate absolute revision (operator /
        # battery event); the clamp above plus budget_revisions is the
        # audit trail standing in for a zero-sum proof.
        self.global_budget_j = applied_j
        self.telemetry.record_event(
            "budget_revision",
            requested_j=new_budget_j,
            applied_j=applied_j,
        )
        self._record_pool()
        return applied_j

    def report(self, session_id: str) -> Dict[str, Any]:
        """Accounting and controller snapshot for one session."""
        session = self._get(session_id)
        accountant = session.runtime.accountant
        return {
            "session": session.session_id,
            "client": session.client,
            "machine": session.machine_name,
            "app": session.app_name,
            "factor": session.factor,
            "seed": session.seed,
            "steps": session.steps,
            "warm_started": session.warm_started,
            "granted_budget_j": session.granted_budget_j,
            "effective_budget_j": accountant.effective_budget_j,
            "energy_used_j": accountant.energy_used_j,
            "work_done": accountant.work_done,
            "remaining_work": accountant.remaining_work,
            "epsilon": session.runtime.seo.epsilon,
            "visited_configs": session.runtime.seo.visited_count,
            "infeasible": session.runtime.goal_reported_infeasible,
            "degraded": session.degraded,
            "sensor_failures": session.sensor_failures,
            "reclaimed_j": session.reclaimed_j,
            "tier": session.tier.label,
            "throttle_s": session.throttle_s,
            "hard_overdraft_j": max(
                0.0,
                accountant.energy_used_j
                - accountant.effective_budget_j,
            ),
            "enforcement": (
                session.ladder.as_dict()
                if session.ladder is not None
                else None
            ),
        }

    def enforcement_of(self, session_id: str) -> Dict[str, Any]:
        """The enforcement summary a ``step`` response carries."""
        session = self._get(session_id)
        return {
            "tier": session.tier.label,
            "throttle_s": session.throttle_s,
        }

    def snapshot(self, session_id: str) -> Dict[str, Any]:
        """Capture a session's learned state into the warm-start store."""
        session = self._get(session_id)
        state = capture_state(
            session.runtime, session.machine_name, session.app_name
        )
        self.store.put(state)
        return state

    def close(self, session_id: str, reason: str = "client") -> Dict[str, Any]:
        """Close a session; return its final report.

        The unspent part of the grant flows back to the pool; the spent
        part is retired for good (burned joules cannot be re-promised).
        An overdrawn session retires its *full* spend, not just its
        grant: clamping the retirement to the effective budget would
        leak the overdraft back into the available pool as joules the
        hardware already burned (caught by jgflow JGF301).
        """
        session = self._get(session_id)
        final = self.report(session_id)
        accountant = session.runtime.accountant
        self._spent_closed_j += accountant.energy_used_j
        session.closed = True
        session.close_reason = reason
        del self._sessions[session.session_id]
        final["closed"] = True
        final["close_reason"] = reason
        self.telemetry.record_close(
            session.session_id, reason, len(self._sessions)
        )
        self._record_pool()
        return final

    def reap_idle(self) -> List[str]:
        """Close sessions idle beyond the timeout; return their ids."""
        now_s = self.clock()
        stale = [
            session.session_id
            for session in self._sessions.values()
            if now_s - session.last_active_s > self.idle_timeout_s
        ]
        for session_id in stale:
            self.close(session_id, reason="idle")
        return stale

    def close_all(self, reason: str = "shutdown") -> int:
        """Close every live session (daemon shutdown)."""
        ids = list(self._sessions)
        for session_id in ids:
            self.close(session_id, reason=reason)
        return len(ids)

    # -- budget transfers ------------------------------------------------------
    def _forecast_surplus(self, session: Session) -> float:
        """Remaining budget minus forecast remaining spend (can be < 0)."""
        accountant = session.runtime.accountant
        if accountant.complete or session.recent_epw is None:
            return accountant.remaining_energy_j
        projected = session.recent_epw * accountant.remaining_work
        return accountant.remaining_energy_j - projected

    def _overdraft_j(self, session_id: str) -> float:
        """How far a session's spend already exceeds its budget."""
        accountant = self._sessions[session_id].runtime.accountant
        return max(
            0.0,
            accountant.energy_used_j - accountant.effective_budget_j,
        )

    def _accounting_current(self) -> None:
        """Make per-session accounting state scalar-current.

        Rebalance reads only accountant tallies and ``recent_epw``, so
        the vectorized backend can satisfy it with a cheap array copy
        (``accounting_sync``) instead of evicting every pooled session;
        without the cheap hook, the full ``scalar_sync(None)`` evict is
        the conservative fallback.
        """
        if self.accounting_sync is not None:
            self.accounting_sync()
        elif self.scalar_sync is not None:
            self.scalar_sync(None)

    def rebalance_inputs(
        self,
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """``(surpluses, overdrafts)`` per live session, in open order.

        The inputs :func:`plan_rebalance` needs — exposed so the shard
        router can gather them from every worker, merge them in global
        open order, and compute one daemon-wide plan with the exact
        arithmetic a single-process manager would have used.
        """
        self._accounting_current()
        surpluses = {
            session_id: self._forecast_surplus(session)
            for session_id, session in self._sessions.items()
        }
        overdrafts = {
            session_id: self._overdraft_j(session_id)
            for session_id in self._sessions
        }
        return surpluses, overdrafts

    def apply_rebalance(
        self, deltas: Dict[str, float]
    ) -> Dict[str, float]:
        """Apply a transfer plan all-or-nothing; return what was applied.

        If any grant is rejected by the accountant's contract mid-plan,
        earlier transfers are compensated before re-raising, so the sum
        of effective budgets stays invariant on the exception edge too
        (jgflow JGF301's sanctioned rollback idiom).  Donations are
        applied before grants — the order the historical in-line
        rebalance used — and sessions unknown to this manager are
        ignored (the router sends each worker the full daemon-wide
        plan; a worker applies its own slice).
        """
        self._accounting_current()
        applied: List[Tuple[BudgetAccountant, float]] = []
        recorded = {
            session_id: 0.0
            for session_id in deltas
            if session_id in self._sessions
        }
        try:
            for phase in (0, 1):  # 0: donations out, 1: grants in
                for session_id, delta_j in deltas.items():
                    if session_id not in self._sessions:
                        continue
                    if delta_j == 0.0:  # jglint: disable=JG004
                        # Exact zero means "no transfer", never a
                        # rounding artifact: plans carry literal 0.0.
                        continue
                    if (delta_j > 0.0) != bool(phase):
                        continue
                    accountant = self._sessions[
                        session_id
                    ].runtime.accountant
                    accountant.adjust_budget(delta_j)
                    applied.append((accountant, delta_j))
                    recorded[session_id] += delta_j
        except ContractError:
            for accountant, applied_j in reversed(applied):
                accountant.adjust_budget(-applied_j)
            raise
        self.transfers.append(recorded)
        # Adjustments landed on the scalar accountants; pooled rows
        # must see the same effective budgets on their next step.  (On
        # the ContractError edge above the compensation restored the
        # pre-plan values, which the pool already holds.)
        if self.accounting_merge is not None:
            self.accounting_merge()
        return recorded

    def rebalance(self) -> Dict[str, float]:
        """Move surplus joules between live sessions (conservative).

        Mirrors :meth:`repro.core.multi.MultiAppCoordinator.rebalance`:
        the sum of effective budgets is invariant, so the daemon-wide
        guarantee survives any schedule of transfers.  The plan itself
        is the pure :func:`plan_rebalance`; application is the
        all-or-nothing :meth:`apply_rebalance`.
        """
        surpluses, overdrafts = self.rebalance_inputs()
        deltas = plan_rebalance(
            surpluses, overdrafts, self.transfer_fraction
        )
        self.apply_rebalance(deltas)
        return deltas

    # -- daemon-wide stats -----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """One-line daemon health summary (served by ``hello``)."""
        return {
            "sessions": len(self._sessions),
            "sessions_opened": self.sessions_opened,
            "sessions_rejected": self.sessions_rejected,
            "sessions_degraded": self.sessions_degraded,
            "sessions_killed": self.sessions_killed,
            "warm_start_failures": self.warm_start_failures,
            "budget_revisions": len(self.budget_revisions),
            "global_budget_j": self.global_budget_j,
            "committed_budget_j": self.committed_budget_j,
            "available_budget_j": self.available_budget_j,
            "rebalances": len(self.transfers),
            "snapshots_stored": len(self.store),
        }
