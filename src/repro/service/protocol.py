"""The JouleGuard service wire protocol (version 2).

Newline-delimited JSON over a stream socket (TCP or Unix): every
request and every response is one JSON object on one line.  Requests
carry a ``type`` and the fields of that operation; responses carry
``ok`` (bool) plus either the operation's payload or a structured
``error`` object::

    -> {"type": "hello", "version": 2}
    <- {"ok": true, "type": "hello", "version": 2, "sessions": 0}
    -> {"type": "open_session", "machine": "tablet", "app": "x264",
        "factor": 1.5, "total_work": 200, "seed": 7}
    <- {"ok": true, "type": "open_session", "session": "s000001",
        "warm": false, "granted_budget_j": 123.4, "decision": {...}}
    -> {"type": "step", "session": "s000001",
        "measurement": {"work": 1, "energy_j": 0.6,
                        "rate": 31.2, "power_w": 19.8}}
    <- {"ok": true, "type": "step", "decision": {...},
        "enforcement": {"tier": "nominal", "throttle_s": 0.0}}

Request types: ``hello``, ``open_session``, ``step``, ``report``,
``snapshot``, ``close``, ``metrics``, ``events``.  Error codes are
stable strings (:data:`ERROR_CODES`) so clients can branch without
parsing messages.  The protocol is versioned: ``hello`` negotiates
:data:`PROTOCOL_VERSION`, and learned-state snapshots embed their own
format version (:mod:`repro.service.state`).

Version 2 (enforcement + observability) adds the ``metrics`` and
``events`` verbs, the ``enforcement`` object on ``step`` responses,
and the ``killed`` step outcome: when the enforcement ladder
terminates a session, the step response carries ``killed: true`` plus
the final (budget-retired) session ``report`` instead of a decision;
clients surface that as the stable error code ``session_killed``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.jouleguard import Decision
from ..core.types import Measurement

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "ProtocolError",
    "decision_payload",
    "decode_message",
    "encode_message",
    "error_response",
    "measurement_from_payload",
    "measurement_payload",
    "ok_response",
    "parse_request",
    "request_id_of",
    "sensor_ok_from_payload",
]

#: Wire protocol version negotiated by ``hello``.
PROTOCOL_VERSION = 2

#: Upper bound on one encoded message (guards the server's readline).
MAX_LINE_BYTES = 1_000_000

#: The operations a client may request.
REQUEST_TYPES = (
    "hello",
    "open_session",
    "step",
    "report",
    "snapshot",
    "close",
    "metrics",
    "events",
)

#: Stable error codes carried in ``error.code``.
ERROR_CODES = (
    "bad_request",
    "unknown_type",
    "version_mismatch",
    "unknown_session",
    "infeasible_goal",
    "budget_exhausted",
    "unknown_application",
    "unknown_machine",
    "snapshot_mismatch",
    "session_killed",
    "internal",
)


class ProtocolError(Exception):
    """A malformed or unserviceable message, with a stable error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


# -- framing ------------------------------------------------------------------
def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One protocol message: compact JSON plus the line terminator."""
    return json.dumps(
        dict(payload), separators=(",", ":"), sort_keys=True
    ).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message object.

    Raises :class:`ProtocolError` (``bad_request``) on oversized lines,
    invalid JSON, or a non-object payload.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "bad_request",
            f"message exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad_request", "message must be a JSON object"
        )
    return message


def parse_request(message: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Validate a request envelope; return ``(type, fields)``."""
    request_type = message.get("type")
    if not isinstance(request_type, str):
        raise ProtocolError("bad_request", "request needs a string 'type'")
    if request_type not in REQUEST_TYPES:
        raise ProtocolError(
            "unknown_type",
            f"unknown request type {request_type!r}; "
            f"expected one of {', '.join(REQUEST_TYPES)}",
        )
    fields = {
        key: value
        for key, value in message.items()
        if key not in ("type", "rid")
    }
    return request_type, fields


def request_id_of(message: Mapping[str, Any]) -> Optional[str]:
    """The request's idempotency id (``rid``), validated, or None.

    A client that retries after a lost response resends the *same*
    ``rid``; the server answers non-``hello`` retries from its response
    cache instead of re-executing them, which is what makes retrying a
    ``step`` safe (stepping a controller twice would corrupt its budget
    accounting).  Raises ``bad_request`` for a non-string or empty id.
    """
    rid = message.get("rid")
    if rid is None:
        return None
    if not isinstance(rid, str) or not rid or len(rid) > 128:
        raise ProtocolError(
            "bad_request",
            "'rid' must be a non-empty string of at most 128 chars",
        )
    return rid


# -- envelopes ----------------------------------------------------------------
def ok_response(request_type: str, **fields: Any) -> Dict[str, Any]:
    """A success envelope echoing the request type."""
    response: Dict[str, Any] = {"ok": True, "type": request_type}
    response.update(fields)
    return response


def error_response(code: str, message: str) -> Dict[str, Any]:
    """A structured error envelope."""
    if code not in ERROR_CODES:
        code, message = "internal", f"[{code}] {message}"
    return {"ok": False, "error": {"code": code, "message": message}}


# -- payload codecs -----------------------------------------------------------
def measurement_payload(
    measurement: Measurement, sensor_ok: bool = True
) -> Dict[str, Any]:
    """Wire form of one heartbeat measurement.

    ``sensor_ok=False`` marks the heartbeat as carrying *held-over*
    estimates rather than trustworthy sensor readings (the client's
    power sensor is lost); the daemon degrades the session instead of
    feeding the learner unreliable feedback.  The flag is only encoded
    when False, keeping version-1 frames byte-identical for healthy
    heartbeats.
    """
    payload: Dict[str, Any] = {
        "work": measurement.work,
        "energy_j": measurement.energy_j,
        "rate": measurement.rate,
        "power_w": measurement.power_w,
    }
    if not sensor_ok:
        payload["sensor_ok"] = False
    return payload


def measurement_from_payload(payload: Any) -> Measurement:
    """Decode and validate a ``step`` request's measurement."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            "bad_request", "'measurement' must be an object"
        )
    try:
        return Measurement(
            work=float(payload["work"]),
            energy_j=float(payload["energy_j"]),
            rate=float(payload["rate"]),
            power_w=float(payload["power_w"]),
        )
    except KeyError as exc:
        raise ProtocolError(
            "bad_request", f"measurement is missing field {exc}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            "bad_request", f"invalid measurement: {exc}"
        ) from exc


def sensor_ok_from_payload(payload: Any) -> bool:
    """Whether a ``step`` measurement carries trustworthy sensor data."""
    if not isinstance(payload, Mapping):
        return True
    return bool(payload.get("sensor_ok", True))


def decision_payload(decision: Decision) -> Dict[str, Any]:
    """Wire form of one runtime decision.

    Carries everything a client needs to *actuate*: the system
    configuration index, and the application configuration's index,
    speedup, accuracy, and power factor (the client owns the actual
    knobs; the daemon only decides).
    """
    app_config = decision.app_config
    return {
        "system_index": decision.system_index,
        "app_index": getattr(app_config, "index", -1),
        "app_speedup": app_config.speedup,
        "app_accuracy": app_config.accuracy,
        "app_power_factor": getattr(app_config, "power_factor", 1.0),
        "speedup_setpoint": decision.speedup_setpoint,
        "pole": decision.pole,
        "epsilon": decision.epsilon,
        "explored": decision.explored,
        "feasible": decision.feasible,
    }
