"""The JouleGuard service wire protocol (version 3).

Newline-delimited JSON over a stream socket (TCP or Unix): every
request and every response is one JSON object on one line.  Requests
carry a ``type`` and the fields of that operation; responses carry
``ok`` (bool) plus either the operation's payload or a structured
``error`` object::

    -> {"type": "hello", "version": 3}
    <- {"ok": true, "type": "hello", "version": 3, "sessions": 0}
    -> {"type": "open_session", "machine": "tablet", "app": "x264",
        "factor": 1.5, "total_work": 200, "seed": 7}
    <- {"ok": true, "type": "open_session", "session": "s000001",
        "warm": false, "granted_budget_j": 123.4, "decision": {...}}
    -> {"type": "step", "session": "s000001",
        "measurement": {"work": 1, "energy_j": 0.6,
                        "rate": 31.2, "power_w": 19.8}}
    <- {"ok": true, "type": "step", "decision": {...},
        "enforcement": {"tier": "nominal", "throttle_s": 0.0}}

Request types: ``hello``, ``open_session``, ``step``, ``batch_step``,
``report``, ``snapshot``, ``close``, ``metrics``, ``events``.  Error
codes are stable strings (:data:`ERROR_CODES`) so clients can branch
without parsing messages.  The protocol is versioned: ``hello``
negotiates a version out of :data:`SUPPORTED_VERSIONS`, and
learned-state snapshots embed their own format version
(:mod:`repro.service.state`).

Version 2 (enforcement + observability) adds the ``metrics`` and
``events`` verbs, the ``enforcement`` object on ``step`` responses,
and the ``killed`` step outcome: when the enforcement ladder
terminates a session, the step response carries ``killed: true`` plus
the final (budget-retired) session ``report`` instead of a decision;
clients surface that as the stable error code ``session_killed``.

Version 3 (sharding + throughput) adds

* **batched step frames** — ``batch_step`` carries up to
  :data:`MAX_BATCH_STEPS` measurements for one session and answers
  with one decision + enforcement entry per measurement, amortizing
  the per-heartbeat syscall and codec cost.  The whole batch is
  validated *before* any measurement is applied, so an error response
  (never rid-cached) always means no controller state changed; a
  mid-batch KILL truncates the result list with a terminal
  ``{"killed": true, "report": ...}`` entry and IS cached, like a
  single-step kill.
* **request pipelining** — a client may write several request lines
  before reading responses; the server answers strictly in request
  order, so responses are matched to requests by position (and by
  ``rid`` when retries are in play).  This is a usage contract, not a
  frame change: v3 servers guarantee ordered responses per connection.
* **version negotiation** — ``hello`` succeeds for any version in
  :data:`SUPPORTED_VERSIONS` and echoes the *negotiated* version, so
  v2 clients keep working against a v3 daemon (they simply never send
  ``batch_step``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.jouleguard import Decision
from ..core.types import Measurement

__all__ = [
    "ADMIN_TYPES",
    "ERROR_CODES",
    "MAX_BATCH_STEPS",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "SUPPORTED_VERSIONS",
    "ProtocolError",
    "batch_measurements_from_payload",
    "decision_payload",
    "decode_message",
    "encode_message",
    "error_response",
    "measurement_from_payload",
    "measurement_payload",
    "negotiate_version",
    "ok_response",
    "parse_request",
    "request_id_of",
    "sensor_ok_from_payload",
]

#: Newest wire protocol version (what this codebase speaks natively).
PROTOCOL_VERSION = 3

#: Versions a v3 server still serves (v2 clients lack ``batch_step``).
SUPPORTED_VERSIONS = (2, 3)

#: Upper bound on one encoded message (guards the server's readline).
MAX_LINE_BYTES = 1_000_000

#: Upper bound on measurements in one ``batch_step`` frame.
MAX_BATCH_STEPS = 256

#: The operations a client may request.
REQUEST_TYPES = (
    "hello",
    "open_session",
    "step",
    "batch_step",
    "report",
    "snapshot",
    "close",
    "metrics",
    "events",
    "admin_lease",
    "admin_rebalance_inputs",
    "admin_rebalance_apply",
)

#: Verbs only an admin-enabled listener (a shard worker) serves: the
#: router leases/reclaims budget and drives the global rebalance with
#: them.  A daemon facing untrusted clients keeps them disabled.
ADMIN_TYPES = (
    "admin_lease",
    "admin_rebalance_inputs",
    "admin_rebalance_apply",
)

#: Stable error codes carried in ``error.code``.
ERROR_CODES = (
    "bad_request",
    "unknown_type",
    "version_mismatch",
    "unknown_session",
    "infeasible_goal",
    "budget_exhausted",
    "unknown_application",
    "unknown_machine",
    "snapshot_mismatch",
    "session_killed",
    "unavailable",
    "internal",
)


class ProtocolError(Exception):
    """A malformed or unserviceable message, with a stable error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


# -- framing ------------------------------------------------------------------
def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One protocol message: compact JSON plus the line terminator."""
    return json.dumps(
        dict(payload), separators=(",", ":"), sort_keys=True
    ).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message object.

    Raises :class:`ProtocolError` (``bad_request``) on oversized lines,
    invalid JSON, or a non-object payload.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "bad_request",
            f"message exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad_request", "message must be a JSON object"
        )
    return message


def parse_request(message: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Validate a request envelope; return ``(type, fields)``."""
    request_type = message.get("type")
    if not isinstance(request_type, str):
        raise ProtocolError("bad_request", "request needs a string 'type'")
    if request_type not in REQUEST_TYPES:
        raise ProtocolError(
            "unknown_type",
            f"unknown request type {request_type!r}; "
            f"expected one of {', '.join(REQUEST_TYPES)}",
        )
    fields = {
        key: value
        for key, value in message.items()
        if key not in ("type", "rid")
    }
    return request_type, fields


def request_id_of(message: Mapping[str, Any]) -> Optional[str]:
    """The request's idempotency id (``rid``), validated, or None.

    A client that retries after a lost response resends the *same*
    ``rid``; the server answers non-``hello`` retries from its response
    cache instead of re-executing them, which is what makes retrying a
    ``step`` safe (stepping a controller twice would corrupt its budget
    accounting).  Raises ``bad_request`` for a non-string or empty id.
    """
    rid = message.get("rid")
    if rid is None:
        return None
    if not isinstance(rid, str) or not rid or len(rid) > 128:
        raise ProtocolError(
            "bad_request",
            "'rid' must be a non-empty string of at most 128 chars",
        )
    return rid


def negotiate_version(requested: Any) -> int:
    """Settle the protocol version a ``hello`` asked for.

    Returns the negotiated version (the requested one — the server
    speaks every supported version natively) or raises
    ``version_mismatch`` for anything outside
    :data:`SUPPORTED_VERSIONS`.  A ``hello`` without a version gets
    the newest.
    """
    if requested is None:
        return PROTOCOL_VERSION
    if (
        isinstance(requested, bool)
        or not isinstance(requested, int)
        or requested not in SUPPORTED_VERSIONS
    ):
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise ProtocolError(
            "version_mismatch",
            f"client speaks protocol {requested!r}; "
            f"server supports {supported}",
        )
    return requested


# -- envelopes ----------------------------------------------------------------
def ok_response(request_type: str, **fields: Any) -> Dict[str, Any]:
    """A success envelope echoing the request type."""
    response: Dict[str, Any] = {"ok": True, "type": request_type}
    response.update(fields)
    return response


def error_response(
    code: str,
    message: str,
    data: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """A structured error envelope.

    ``data``, when given, rides along as ``error.data`` — machine-
    readable context (e.g. ``needed_j``/``available_j`` on a
    ``budget_exhausted`` rejection, which the shard router uses to
    size a lease top-up).  Omitted entirely when empty, keeping
    pre-v3 error frames byte-identical.
    """
    if code not in ERROR_CODES:
        code, message = "internal", f"[{code}] {message}"
    error: Dict[str, Any] = {"code": code, "message": message}
    if data:
        error["data"] = dict(data)
    return {"ok": False, "error": error}


# -- payload codecs -----------------------------------------------------------
def measurement_payload(
    measurement: Measurement, sensor_ok: bool = True
) -> Dict[str, Any]:
    """Wire form of one heartbeat measurement.

    ``sensor_ok=False`` marks the heartbeat as carrying *held-over*
    estimates rather than trustworthy sensor readings (the client's
    power sensor is lost); the daemon degrades the session instead of
    feeding the learner unreliable feedback.  The flag is only encoded
    when False, keeping version-1 frames byte-identical for healthy
    heartbeats.
    """
    payload: Dict[str, Any] = {
        "work": measurement.work,
        "energy_j": measurement.energy_j,
        "rate": measurement.rate,
        "power_w": measurement.power_w,
    }
    if not sensor_ok:
        payload["sensor_ok"] = False
    return payload


def measurement_from_payload(payload: Any) -> Measurement:
    """Decode and validate a ``step`` request's measurement."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            "bad_request", "'measurement' must be an object"
        )
    try:
        return Measurement(
            work=float(payload["work"]),
            energy_j=float(payload["energy_j"]),
            rate=float(payload["rate"]),
            power_w=float(payload["power_w"]),
        )
    except KeyError as exc:
        raise ProtocolError(
            "bad_request", f"measurement is missing field {exc}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            "bad_request", f"invalid measurement: {exc}"
        ) from exc


def batch_measurements_from_payload(
    payload: Any,
) -> List[Tuple[Measurement, bool]]:
    """Decode and validate a ``batch_step`` request's measurement list.

    Validates *every* entry before returning, so the caller can apply
    the batch knowing no entry will fail validation halfway through —
    the property that makes whole-batch error responses (which are
    never rid-cached) safe: an error always means nothing was applied.
    """
    if not isinstance(payload, list):
        raise ProtocolError(
            "bad_request", "'measurements' must be an array"
        )
    if not payload:
        raise ProtocolError(
            "bad_request", "'measurements' must not be empty"
        )
    if len(payload) > MAX_BATCH_STEPS:
        raise ProtocolError(
            "bad_request",
            f"batch carries {len(payload)} measurements; "
            f"the limit is {MAX_BATCH_STEPS}",
        )
    entries: List[Tuple[Measurement, bool]] = []
    for index, entry in enumerate(payload):
        try:
            entries.append(
                (
                    measurement_from_payload(entry),
                    sensor_ok_from_payload(entry),
                )
            )
        except ProtocolError as exc:
            raise ProtocolError(
                exc.code, f"measurements[{index}]: {exc.message}"
            ) from exc
    return entries


def sensor_ok_from_payload(payload: Any) -> bool:
    """Whether a ``step`` measurement carries trustworthy sensor data."""
    if not isinstance(payload, Mapping):
        return True
    return bool(payload.get("sensor_ok", True))


def decision_payload(decision: Decision) -> Dict[str, Any]:
    """Wire form of one runtime decision.

    Carries everything a client needs to *actuate*: the system
    configuration index, and the application configuration's index,
    speedup, accuracy, and power factor (the client owns the actual
    knobs; the daemon only decides).
    """
    app_config = decision.app_config
    return {
        "system_index": decision.system_index,
        "app_index": getattr(app_config, "index", -1),
        "app_speedup": app_config.speedup,
        "app_accuracy": app_config.accuracy,
        "app_power_factor": getattr(app_config, "power_factor", 1.0),
        "speedup_setpoint": decision.speedup_setpoint,
        "pole": decision.pole,
        "epsilon": decision.epsilon,
        "explored": decision.explored,
        "feasible": decision.feasible,
    }
