"""Sharded JouleGuard: a thin router over pinned worker processes.

``repro.service.shard`` scales the daemon past one process: a
:class:`ShardRouter` listens where a single daemon would and places
each session on one of N *worker* processes, each running the ordinary
:class:`~repro.service.sessions.SessionManager` behind the ordinary
:class:`~repro.service.server.ServiceServer` (spawned as ``python -m
repro serve --session-prefix w{i}e{e}- --external-rebalance --admin``).

**Placement** is a sha256 consistent-hash ring over a deterministic
open key (client name, seed, open ordinal), so identical runs place
identically; every later verb routes by the session id's
``w{index}e{epoch}-`` prefix, making the router stateless about
individual sessions beyond their global open order.

**Budget coherence** uses the zero-sum lease scheme of
:class:`~repro.service.lease.LeaseLedger`: workers boot with a
microjoule floor lease and the router tops them up *on demand* — a
``budget_exhausted`` rejection carries ``needed_j``/``available_j`` in
its error data, the router leases the shortfall from the unleased pool
and retries the open once.  After every close or kill it shrinks the
worker back to its floor (the worker clamps at ``spent + committed``,
so only free joules move), which keeps each worker's free headroom at
~0 and makes fleet-wide admission decide against the unleased pool —
the same joules a single-process daemon would have had available, up
to microjoule dust.

**Rebalancing** is router-driven (workers run with
``--external-rebalance``): the router counts heartbeats fleet-wide,
and on the single-process cadence gathers ``admin_rebalance_inputs``
from every worker, merges them in *global open order*, computes the
plan with the very :func:`~repro.service.sessions.plan_rebalance` a
single-process manager uses (bit-identical inputs, bit-identical
deltas — the cross-shard lockstep rig's core claim), and pushes each
worker its slice via ``admin_rebalance_apply``.  Client batches are
split at rebalance boundaries so a heartbeat after the boundary sees
post-rebalance state, exactly as it would in one process.

**Crashes**: a dead worker's entire lease is forfeited to the ledger's
crash sink (conservative: joules can be lost to a crash, never double
spent), its sessions are gone (``unknown_session`` thereafter), and a
successor is spawned with the restart epoch bumped — its session ids
can never collide with the dead worker's.  Workers share the router's
``--state-dir``, so reopened sessions warm-start from the snapshot
store across the crash.

Known serialization caveats (documented, asserted by the lockstep rig
only under serial driving): the router multiplexes all client
connections onto one connection per worker, so a THROTTLE sleep on one
session delays that worker's other sessions; and a rebalance gathers
inputs worker-by-worker, so opens racing a rebalance on another
connection may observe a mid-transfer pool.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..obs.events import EventLog
from ..obs.http import MetricsHTTPServer
from ..obs.registry import MetricsRegistry
from .lease import LeaseLedger, joules_to_uj, uj_to_joules
from .protocol import (
    ADMIN_TYPES,
    ProtocolError,
    batch_measurements_from_payload,
    decode_message,
    encode_message,
    error_response,
    negotiate_version,
    ok_response,
    parse_request,
    request_id_of,
)
from .server import RID_CACHE_MAX
from .sessions import SessionError, plan_rebalance

__all__ = [
    "LEASE_FLOOR_J",
    "ShardRouter",
    "ShardThread",
    "WorkerHandle",
    "serve_sharded",
]

#: Joules a worker process boots with before its first on-demand lease.
#: One microjoule: positive (the manager requires that) yet too small
#: to admit anything, so admission always goes through the ledger.
LEASE_FLOOR_J = 1e-6

#: How a shard worker's session ids start: worker index, restart epoch.
SESSION_PREFIX_RE = re.compile(r"^w(\d+)e(\d+)-")

_RING_VNODES = 64

#: Lines a connection reads ahead of the executing request.  Read-ahead
#: exists so a vanished client is noticed *while* its request is in
#: flight (expiring the rid reservation immediately); the bound keeps a
#: flooding client from buffering unbounded pipeline in router memory.
_READAHEAD_LINES = 64


def _hash64(key: str) -> int:
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent sha256 hash ring over worker indices.

    Virtual nodes smooth the split; consistency means growing the pool
    by one worker remaps only ~1/N of the key space, so a future
    ``--shards N+1`` restart keeps most placements (and their
    per-worker warm caches) stable.
    """

    def __init__(self, indices: List[int], vnodes: int = _RING_VNODES) -> None:
        if not indices:
            raise ValueError("ring needs at least one worker")
        points = sorted(
            (_hash64(f"shard-{index}-vnode-{vnode}"), index)
            for index in indices
            for vnode in range(vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [index for _, index in points]

    def route(self, key: str) -> int:
        position = bisect.bisect_right(self._hashes, _hash64(key))
        if position == len(self._hashes):
            position = 0
        return self._owners[position]


class WorkerHandle:
    """One pinned worker process plus the router's connection to it."""

    def __init__(
        self,
        index: int,
        epoch: int,
        unix_path: str,
        process: subprocess.Popen,
        log_path: Optional[Path] = None,
    ) -> None:
        self.index = index
        self.epoch = epoch
        self.unix_path = unix_path
        self.process = process
        self.log_path = log_path
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        #: Serializes request/response pairs on the single connection.
        self.lock = asyncio.Lock()
        #: Serializes admissions (open → lease shortfall → retry) and
        #: surplus reclaims on this worker.  Without it, two concurrent
        #: opens can interleave so one consumes the lease the other
        #: just took, surfacing a spurious ``budget_exhausted`` while
        #: the unleased pool is still deep.
        self.admission_lock = asyncio.Lock()

    @property
    def name(self) -> str:
        """Ledger identity — stable across this worker's restarts."""
        return f"w{self.index}"

    @property
    def prefix(self) -> str:
        """Session-id prefix of this (worker, epoch) incarnation."""
        return f"w{self.index}e{self.epoch}-"

    def alive(self) -> bool:
        return self.process.poll() is None and self.writer is not None


class ShardRouter:
    """Routes the client protocol onto a pool of worker processes.

    Speaks the same wire protocol as a single daemon (clients cannot
    tell the difference), with the admin verbs refused on its own
    listeners — those face the workers only.

    Parameters mirror :class:`~repro.service.server.ServiceServer`
    where they overlap; ``rebalance_period`` and ``transfer_fraction``
    must match what a single-process reference uses for the lockstep
    equivalence to hold.
    """

    def __init__(
        self,
        n_shards: int,
        budget_j: float,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
        state_dir: Optional[str] = None,
        run_dir: Optional[str] = None,
        rebalance_period: int = 25,
        transfer_fraction: float = 0.5,
        idle_timeout_s: float = 300.0,
        reap_interval_s: float = 5.0,
        metrics_host: Optional[str] = None,
        metrics_port: int = 0,
        worker_ready_timeout_s: float = 60.0,
        python: Optional[str] = None,
        exec_mode: str = "scalar",
        vexec_solo_after: Optional[int] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if host is None and unix_path is None:
            raise ValueError("need a TCP host and/or a unix socket path")
        if rebalance_period < 1:
            raise ValueError("rebalance period must be >= 1")
        if not 0.0 < transfer_fraction <= 1.0:
            raise ValueError("transfer_fraction must be in (0, 1]")
        if exec_mode not in ("scalar", "vector"):
            raise ValueError("exec_mode must be 'scalar' or 'vector'")
        self.n_shards = n_shards
        self.exec_mode = exec_mode
        self.vexec_solo_after = vexec_solo_after
        self.budget_j = budget_j
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.state_dir = state_dir
        self.run_dir = run_dir
        self.rebalance_period = rebalance_period
        self.transfer_fraction = transfer_fraction
        self.idle_timeout_s = idle_timeout_s
        self.reap_interval_s = reap_interval_s
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        self.worker_ready_timeout_s = worker_ready_timeout_s
        self.python = python or sys.executable

        self.ledger = LeaseLedger(budget_j)
        self.events = EventLog()
        self._workers: List[WorkerHandle] = []
        self._ring: Optional[HashRing] = None
        self._open_order: "OrderedDict[str, None]" = OrderedDict()
        self._opens = 0
        self._steps_since_rebalance = 0
        self._rebalance_lock = asyncio.Lock()
        self._restart_lock = asyncio.Lock()
        self._rid_cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._rid_inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self.replayed_responses = 0
        self.connections = 0
        self.connection_errors = 0
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._unix_server: Optional[asyncio.AbstractServer] = None
        self._metrics_http: Optional[MetricsHTTPServer] = None
        self._owns_run_dir: Optional[tempfile.TemporaryDirectory] = None

        reg = MetricsRegistry()
        self.registry = reg
        self.m_workers = reg.gauge(
            "jg_shard_workers", "Worker processes in the pool."
        )
        self.m_worker_up = reg.gauge(
            "jg_shard_worker_up",
            "1 while the worker is serving, 0 across a restart.",
            ("worker",),
        )
        self.m_worker_epoch = reg.gauge(
            "jg_shard_worker_epoch",
            "Restart epoch baked into the worker's session ids.",
            ("worker",),
        )
        self.m_requests = reg.counter(
            "jg_shard_requests_total",
            "Requests routed to workers, by worker and type.",
            ("worker", "type"),
        )
        self.m_steps = reg.counter(
            "jg_shard_steps_total",
            "Heartbeats routed fleet-wide (batch entries included).",
        )
        self.m_sessions_placed = reg.counter(
            "jg_shard_sessions_placed_total",
            "Sessions placed on the ring, by worker.",
            ("worker",),
        )
        self.m_lease = reg.gauge(
            "jg_shard_lease_joules",
            "Joules currently leased, by worker.",
            ("worker",),
        )
        self.m_unleased = reg.gauge(
            "jg_shard_unleased_joules",
            "Joules in the router's unleased pool.",
        )
        self.m_forfeited = reg.gauge(
            "jg_shard_forfeited_joules",
            "Joules written off to worker crashes, ever.",
        )
        self.m_lease_moves = reg.counter(
            "jg_shard_lease_moves_total",
            "Lease ledger movements, by worker and direction.",
            ("worker", "direction"),
        )
        self.m_rebalances = reg.counter(
            "jg_shard_rebalances_total",
            "Cross-shard rebalance rounds driven by the router.",
        )
        self.m_restarts = reg.counter(
            "jg_shard_worker_restarts_total",
            "Worker crash/restart cycles, by worker.",
            ("worker",),
        )

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the workers, connect, and bind the client listeners."""
        if self.run_dir is None:
            self._owns_run_dir = tempfile.TemporaryDirectory(
                prefix="jg-shards-"
            )
            self.run_dir = self._owns_run_dir.name
        Path(self.run_dir).mkdir(parents=True, exist_ok=True)
        for index in range(self.n_shards):
            self.ledger.add_shard(f"w{index}")
            handle = await self._spawn_worker(index, epoch=0)
            self._workers.append(handle)
        self._ring = HashRing(list(range(self.n_shards)))
        self.m_workers.labels().set(float(self.n_shards))
        self.m_unleased.labels().set(self.ledger.available_j)
        if self.host is not None:
            self._tcp_server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            self.port = self._tcp_server.sockets[0].getsockname()[1]
        if self.unix_path is not None:
            self._unix_server = await asyncio.start_unix_server(
                self._serve_connection, path=self.unix_path
            )
        if self.metrics_host is not None:
            self._metrics_http = MetricsHTTPServer(
                self.registry,
                host=self.metrics_host,
                port=self.metrics_port,
            )
            await self._metrics_http.start()
            self.metrics_port = self._metrics_http.address[1]

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        if self.host is None:
            return None
        return (self.host, self.port)

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        if self.metrics_host is None:
            return None
        return (self.metrics_host, self.metrics_port)

    async def aclose(self) -> None:
        servers = (self._tcp_server, self._unix_server)
        self._tcp_server = None
        self._unix_server = None
        metrics_http, self._metrics_http = self._metrics_http, None
        for server in servers:
            if server is not None:
                server.close()
                await server.wait_closed()
        if metrics_http is not None:
            await metrics_http.aclose()
        if self.unix_path is not None and os.path.exists(self.unix_path):
            os.unlink(self.unix_path)
        workers, self._workers = self._workers, []
        for handle in workers:
            await self._stop_worker(handle)
        if self._owns_run_dir is not None:
            self._owns_run_dir.cleanup()
            self._owns_run_dir = None

    async def _stop_worker(self, handle: WorkerHandle) -> None:
        if handle.writer is not None:
            handle.writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await handle.writer.wait_closed()
            handle.writer = None
        if handle.process.poll() is None:
            handle.process.terminate()
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, handle.process.wait, 5.0
                )
            except subprocess.TimeoutExpired:  # jglint: disable=JG009
                # Escalation is the handling: a worker that ignores
                # SIGTERM for 5 s gets SIGKILLed.
                handle.process.kill()
                handle.process.wait()
        with contextlib.suppress(OSError):
            if os.path.exists(handle.unix_path):
                os.unlink(handle.unix_path)

    # -- worker processes ------------------------------------------------------
    def _worker_command(
        self, unix_path: str, prefix: str
    ) -> List[str]:
        command = [
            self.python,
            "-m",
            "repro",
            "serve",
            "--unix",
            unix_path,
            "--budget-j",
            repr(LEASE_FLOOR_J),
            "--session-prefix",
            prefix,
            "--external-rebalance",
            "--admin",
            "--idle-timeout",
            str(self.idle_timeout_s),
            "--reap-interval",
            str(self.reap_interval_s),
        ]
        if self.exec_mode == "vector":
            command += ["--exec", "vector"]
            if self.vexec_solo_after is not None:
                command += [
                    "--vexec-solo-after",
                    str(self.vexec_solo_after),
                ]
        if self.state_dir is not None:
            command += ["--state-dir", self.state_dir]
        return command

    async def _spawn_worker(self, index: int, epoch: int) -> WorkerHandle:
        unix_path = str(
            Path(self.run_dir) / f"w{index}e{epoch}.sock"
        )
        log_path = Path(self.run_dir) / f"w{index}e{epoch}.log"
        env = dict(os.environ)
        package_src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = package_src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else ""
        )
        prefix = f"w{index}e{epoch}-"
        with open(log_path, "ab") as log_file:
            process = subprocess.Popen(
                self._worker_command(unix_path, prefix),
                stdout=log_file,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
                env=env,
            )
        handle = WorkerHandle(
            index, epoch, unix_path, process, log_path
        )
        await self._wait_ready(handle)
        self.ledger.lease(
            handle.name,
            min(joules_to_uj(LEASE_FLOOR_J), self.ledger.unleased_uj),
        )
        self._publish_ledger(handle)
        self.m_worker_up.labels(handle.name).set(1.0)
        self.m_worker_epoch.labels(handle.name).set(float(epoch))
        self.events.append(
            "worker_started",
            worker=handle.name,
            epoch=epoch,
            pid=process.pid,
        )
        return handle

    async def _wait_ready(self, handle: WorkerHandle) -> None:
        """Connect to the worker, retrying until its socket answers."""
        deadline = time.monotonic() + self.worker_ready_timeout_s
        last_error: Optional[BaseException] = None
        while time.monotonic() < deadline:
            if handle.process.poll() is not None:
                break
            try:
                reader, writer = await asyncio.open_unix_connection(
                    handle.unix_path
                )
                writer.write(encode_message({"type": "hello"}))
                await writer.drain()
                line = await asyncio.wait_for(
                    reader.readline(), timeout=5.0
                )
                if line and decode_message(line).get("ok"):
                    handle.reader = reader
                    handle.writer = writer
                    return
                writer.close()
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_error = exc
            await asyncio.sleep(0.05)
        handle.process.kill()
        raise RuntimeError(
            f"worker {handle.prefix!r} did not become ready within "
            f"{self.worker_ready_timeout_s:.0f}s "
            f"(log: {handle.log_path}): {last_error}"
        )

    async def _restart_worker(self, crashed: WorkerHandle) -> None:
        """Forfeit a dead worker's lease and spawn its successor."""
        async with self._restart_lock:
            current = self._workers[crashed.index]
            if current is not crashed:
                return  # another coroutine already replaced it
            self.m_worker_up.labels(crashed.name).set(0.0)
            forfeited_uj = self.ledger.forfeit(crashed.name)
            self.m_forfeited.labels().set(
                uj_to_joules(self.ledger.forfeited_uj)
            )
            self._publish_ledger(crashed)
            self.m_restarts.labels(crashed.name).inc()
            self.events.append(
                "worker_crashed",
                worker=crashed.name,
                epoch=crashed.epoch,
                forfeited_j=uj_to_joules(forfeited_uj),
            )
            stale = [
                session_id
                for session_id in self._open_order
                if session_id.startswith(crashed.prefix)
            ]
            for session_id in stale:
                del self._open_order[session_id]
            await self._stop_worker(crashed)
            replacement = await self._spawn_worker(
                crashed.index, crashed.epoch + 1
            )
            self._workers[crashed.index] = replacement

    # -- worker I/O ------------------------------------------------------------
    async def _call_worker(
        self, handle: WorkerHandle, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One request/response round trip on the worker connection."""
        data = encode_message(payload)
        async with handle.lock:
            if handle.writer is None:
                raise ConnectionError("worker connection is down")
            handle.writer.write(data)
            await handle.writer.drain()
            line = await handle.reader.readline()
        if not line:
            raise ConnectionError("worker closed the connection")
        self.m_requests.labels(
            handle.name, str(payload.get("type", "?"))
        ).inc()
        return decode_message(line)

    async def _forward(
        self, handle: WorkerHandle, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Forward; on a dead worker, restart it and answer unavailable."""
        try:
            return await self._call_worker(handle, payload)
        except (ConnectionError, OSError):
            await self._restart_worker(handle)
            return error_response(
                "unavailable",
                f"worker {handle.name} crashed; its sessions are "
                "lost (reopen to recover from the snapshot store)",
            )

    # -- lease plumbing --------------------------------------------------------
    def _publish_ledger(self, handle: WorkerHandle) -> None:
        self.m_lease.labels(handle.name).set(
            self.ledger.balance_j(handle.name)
        )
        self.m_unleased.labels().set(self.ledger.available_j)

    def _ledger_sync(
        self, handle: WorkerHandle, reported_budget_j: float
    ) -> None:
        """Mirror a worker's reported budget into the ledger exactly.

        The worker clamps lease deltas (never below spent + committed),
        so the applied budget is authoritative; syncing to it keeps the
        integer ledger drift-free instead of accumulating float dust.
        """
        target_uj = joules_to_uj(reported_budget_j)
        current_uj = self.ledger.leased_uj[handle.name]
        if target_uj > current_uj:
            moved = self.ledger.lease(
                handle.name,
                min(target_uj - current_uj, self.ledger.unleased_uj),
            )
            if moved:
                self.m_lease_moves.labels(handle.name, "lease").inc(
                    uj_to_joules(moved)
                )
        elif target_uj < current_uj:
            moved = self.ledger.reclaim(
                handle.name, current_uj - target_uj
            )
            if moved:
                self.m_lease_moves.labels(handle.name, "reclaim").inc(
                    uj_to_joules(moved)
                )
        self._publish_ledger(handle)

    async def _lease_delta(
        self, handle: WorkerHandle, delta_j: float
    ) -> bool:
        """Adjust a worker's budget by ``delta_j``; sync the ledger."""
        if delta_j > 0:
            want_uj = joules_to_uj(delta_j) + 1  # +1 uJ: float pad
            if want_uj > self.ledger.unleased_uj:
                return False
            delta_j = uj_to_joules(want_uj)
        response = await self._forward(
            handle, {"type": "admin_lease", "delta_j": delta_j}
        )
        if not response.get("ok"):
            return False
        self._ledger_sync(handle, float(response["budget_j"]))
        return True

    async def _reclaim_surplus(self, handle: WorkerHandle) -> None:
        """Shrink a worker back toward its floor lease.

        Run after every close/kill: the worker clamps at spent +
        committed, so exactly the retired session's residual grant
        flows back to the unleased pool — the "donation" half of the
        zero-sum story.
        """
        surplus_j = self.ledger.balance_j(handle.name) - LEASE_FLOOR_J
        if surplus_j <= 0:
            return
        await self._lease_delta(handle, -surplus_j)

    # -- routing ---------------------------------------------------------------
    def _worker_for_session(self, session_id: Any) -> WorkerHandle:
        if not isinstance(session_id, str):
            raise ProtocolError(
                "bad_request", "request needs a string 'session'"
            )
        match = SESSION_PREFIX_RE.match(session_id)
        if match is None:
            raise SessionError(
                "unknown_session",
                f"no live session {session_id!r} "
                "(closed, reaped, or never opened)",
            )
        index, epoch = int(match.group(1)), int(match.group(2))
        if index >= len(self._workers):
            raise SessionError(
                "unknown_session",
                f"no live session {session_id!r} (no such shard)",
            )
        handle = self._workers[index]
        if handle.epoch != epoch:
            raise SessionError(
                "unknown_session",
                f"no live session {session_id!r} (its worker "
                "restarted; the session died with it)",
            )
        return handle

    # -- client-facing server --------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One client connection: ordered execution, eager close detection.

        Requests execute strictly one at a time in arrival order (the
        protocol's response-ordering guarantee), but the reader keeps
        running while a request is in flight at a worker.  That
        read-ahead is what lets a client that disconnects mid-pipeline
        *expire* its in-flight work: the dispatch task is cancelled the
        moment the close is seen, which unwinds ``handle_line`` and
        releases the rid reservation, instead of parking it until a
        possibly-wedged worker answers.  Unexecuted read-ahead lines
        from a vanished client are likewise dropped unexecuted.
        """
        self.connections += 1
        loop = asyncio.get_running_loop()
        backlog: Deque[bytes] = deque()
        read_task: Optional["asyncio.Task[bytes]"] = None
        handler: Optional["asyncio.Task[Dict[str, Any]]"] = None
        gone = False
        try:
            while True:
                if handler is None:
                    if backlog:
                        line = backlog.popleft()
                    elif gone:
                        return
                    else:
                        if read_task is None:
                            read_task = loop.create_task(
                                reader.readline()
                            )
                        try:
                            line = await read_task
                        except (
                            ConnectionError,
                            asyncio.LimitOverrunError,
                        ):
                            # A dropped or misbehaving client ends its
                            # own connection only; the router serves on.
                            self.connection_errors += 1
                            return
                        finally:
                            read_task = None
                        if not line:
                            return
                    if not line.strip():
                        continue
                    handler = loop.create_task(self.handle_line(line))
                waiting = {handler}
                if not gone and len(backlog) < _READAHEAD_LINES:
                    if read_task is None:
                        read_task = loop.create_task(reader.readline())
                    waiting.add(read_task)
                await asyncio.wait(
                    waiting, return_when=asyncio.FIRST_COMPLETED
                )
                if read_task is not None and read_task.done():
                    try:
                        ahead = read_task.result()
                    except (
                        ConnectionError,
                        asyncio.LimitOverrunError,
                    ):
                        self.connection_errors += 1
                        gone = True
                    else:
                        if ahead:
                            backlog.append(ahead)
                        else:
                            gone = True
                    read_task = None
                if gone and not handler.done():
                    # Client gone mid-pipeline: nobody can receive the
                    # answer.  Cancel the dispatch; handle_line's
                    # unwind releases the rid reservation right now.
                    handler.cancel()
                if not handler.done():
                    continue
                finished, handler = handler, None
                try:
                    response = finished.result()
                except asyncio.CancelledError:
                    if gone:
                        backlog.clear()
                        return
                    raise
                if gone:
                    # Completed before the cancel landed; the response
                    # (and any cached rid entry) stands, but there is
                    # no one left to write it to.
                    backlog.clear()
                    return
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    self.connection_errors += 1
                    return
        finally:
            for task in (read_task, handler):
                if task is not None:
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await task
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def handle_line(self, line: bytes) -> Dict[str, Any]:
        """Decode, route, and answer one request line.

        Identical rid idempotency contract to the single daemon — but
        owned here: forwarded requests are stripped of their rid, so a
        retry never reaches a worker twice even across a router
        reconnect.  Unlike the single daemon's synchronous dispatch,
        routing suspends at the worker round-trip, so a rid is
        *reserved* before the first await: a concurrent retry of the
        same rid (a client that timed out and reconnected while the
        original request is still in flight) awaits the original
        execution's response instead of re-executing a non-idempotent
        verb like ``step``.

        A reservation lives at most as long as the connection that
        made it: :meth:`_serve_connection` cancels the dispatch the
        moment its client vanishes, which unwinds this coroutine and
        expires the reservation — waiters parked on an expired
        reservation re-check the maps and the first re-executes
        fresh (the abandoned original may or may not have reached
        its worker); the rest park on that fresh execution.
        """
        try:
            message = decode_message(line)
            rid = request_id_of(message)
        except ProtocolError as exc:
            return error_response(exc.code, exc.message)
        if rid is None:
            return await self._execute_line(message, rid)
        while True:
            if rid in self._rid_cache:
                self.replayed_responses += 1
                self._rid_cache.move_to_end(rid)
                return self._rid_cache[rid]
            inflight = self._rid_inflight.get(rid)
            if inflight is None:
                break
            self.replayed_responses += 1
            try:
                return await asyncio.shield(inflight)
            except asyncio.CancelledError:
                if not inflight.cancelled():
                    raise
                # The original execution was abandoned (its client
                # vanished and the connection expired the reservation
                # on close).  Loop to re-check the maps: another
                # parked retry may have re-reserved the rid first,
                # and a second execution would double-step the
                # session on its worker.
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._rid_inflight[rid] = future
        try:
            response = await self._execute_line(message, rid)
            if not future.done():
                future.set_result(response)
            return response
        finally:
            if self._rid_inflight.get(rid) is future:
                del self._rid_inflight[rid]
            if not future.done():
                # Cancelled mid-execution: wake any duplicate waiters
                # rather than leaving them parked forever.
                future.cancel()

    async def _execute_line(
        self, message: Dict[str, Any], rid: Optional[str]
    ) -> Dict[str, Any]:
        """Dispatch one decoded request; cache ok responses by rid."""
        cache = True
        try:
            request_type, _ = parse_request(message)
            if request_type in ADMIN_TYPES:
                raise ProtocolError(
                    "bad_request",
                    "admin verbs are disabled on this listener",
                )
            forwarded = {
                key: value
                for key, value in message.items()
                if key != "rid"
            }
            handler = getattr(self, f"_handle_{request_type}")
            response = await handler(forwarded)
        except ProtocolError as exc:
            cache = False
            response = error_response(exc.code, exc.message)
        except SessionError as exc:
            cache = False
            response = error_response(exc.code, exc.message, exc.data)
        except Exception as exc:  # the router must answer every line
            cache = False
            response = error_response(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        if not response.get("ok", False):
            cache = False
        if cache and rid is not None:
            response = dict(response)
            response["rid"] = rid
            self._rid_cache[rid] = response
            while len(self._rid_cache) > RID_CACHE_MAX:
                self._rid_cache.popitem(last=False)
        return response

    # -- verb handlers ---------------------------------------------------------
    async def _handle_hello(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        version = negotiate_version(message.get("version"))
        return ok_response(
            "hello",
            version=version,
            server="repro.service.shard",
            shards=self.n_shards,
            sessions=len(self._open_order),
            global_budget_j=self.budget_j,
            available_budget_j=self.ledger.available_j,
            forfeited_budget_j=uj_to_joules(self.ledger.forfeited_uj),
            workers=[
                {
                    "worker": handle.name,
                    "epoch": handle.epoch,
                    "up": handle.alive(),
                    "lease_j": self.ledger.balance_j(handle.name),
                }
                for handle in self._workers
            ],
        )

    async def _handle_open_session(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        key = (
            f"{message.get('client', '')}:"
            f"{message.get('seed', 0)}:{self._opens}"
        )
        self._opens += 1
        handle = self._workers[self._ring.route(key)]
        async with handle.admission_lock:
            response = await self._forward(handle, message)
            if not response.get("ok"):
                response = await self._open_with_lease(
                    handle, message, response
                )
        if response.get("ok"):
            session_id = response.get("session")
            if isinstance(session_id, str):
                self._open_order[session_id] = None
            self.m_sessions_placed.labels(handle.name).inc()
        return response

    async def _open_with_lease(
        self,
        handle: WorkerHandle,
        message: Dict[str, Any],
        rejection: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Lease the admission shortfall and retry the open once."""
        error = rejection.get("error")
        if (
            not isinstance(error, dict)
            or error.get("code") != "budget_exhausted"
        ):
            return rejection
        data = error.get("data")
        if not isinstance(data, dict) or "needed_j" not in data:
            return rejection
        needed_j = float(data["needed_j"])
        worker_available_j = float(data.get("available_j", 0.0))
        shortfall_j = needed_j - worker_available_j
        if shortfall_j > 0 and await self._lease_delta(
            handle, shortfall_j
        ):
            retried = await self._forward(handle, message)
            if retried.get("ok"):
                return retried
            # The lease was not enough (or the worker crashed under
            # us); give back what we can before reporting.
            await self._reclaim_surplus(handle)
            rejection = retried
            error = rejection.get("error", error)
        # Report fleet-wide availability, the number a single-process
        # daemon would have printed.
        if isinstance(error, dict) and isinstance(
            error.get("data"), dict
        ):
            error["data"]["available_j"] = (
                worker_available_j + self.ledger.available_j
            )
        return rejection

    async def _count_steps(self, n: int) -> None:
        """Advance the fleet-wide rebalance cadence by ``n`` heartbeats."""
        if n <= 0:
            return
        self.m_steps.labels().inc(float(n))
        # The counter is only ever mutated under the lock, so a
        # concurrent batch cannot lose its increment to the post-
        # rebalance reset (the lock is uncontended off-cadence).
        async with self._rebalance_lock:
            self._steps_since_rebalance += n
            if self._steps_since_rebalance >= self.rebalance_period:
                await self._rebalance()
                self._steps_since_rebalance = 0

    async def _handle_step(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        handle = self._worker_for_session(message.get("session"))
        response = await self._forward(handle, message)
        if response.get("ok"):
            if response.get("killed"):
                await self._session_ended(
                    handle, str(message.get("session"))
                )
            else:
                await self._count_steps(1)
        return response

    async def _handle_batch_step(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Split a client batch at rebalance boundaries; merge results.

        Validating the *whole* batch up front (same codec the worker
        uses, so error text matches a single daemon's) restores the
        batch contract across the split: an error response still means
        no sub-batch was ever sent, hence nothing was applied.
        """
        session_id = message.get("session")
        handle = self._worker_for_session(session_id)
        measurements = message.get("measurements")
        batch_measurements_from_payload(measurements)
        results: List[Dict[str, Any]] = []
        throttle_total = 0.0
        killed = False
        index = 0
        while index < len(measurements):
            room = self.rebalance_period - self._steps_since_rebalance
            chunk = measurements[
                index : index + max(1, min(len(measurements), room))
            ]
            response = await self._forward(
                handle,
                {
                    "type": "batch_step",
                    "session": session_id,
                    "measurements": chunk,
                },
            )
            if not response.get("ok"):
                if index == 0:
                    return response
                # Later sub-batches can only fail if the worker died
                # mid-frame; earlier entries were applied, so answer
                # with what completed rather than pretend otherwise.
                killed = False
                break
            sub_results = response.get("results", [])
            results.extend(sub_results)
            throttle_total += float(
                response.get("enforcement", {}).get("throttle_s", 0.0)
            )
            killed = bool(response.get("killed"))
            applied = len(sub_results) - (1 if killed else 0)
            await self._count_steps(applied)
            if killed:
                await self._session_ended(handle, str(session_id))
                break
            index += len(chunk)
        return ok_response(
            "batch_step",
            results=results,
            completed=len(results),
            killed=killed,
            enforcement={
                "tier": (
                    results[-1]["enforcement"]["tier"]
                    if results
                    else "nominal"
                ),
                "throttle_s": throttle_total,
            },
        )

    async def _session_ended(
        self, handle: WorkerHandle, session_id: str
    ) -> None:
        self._open_order.pop(session_id, None)
        # Under the admission lock: a reclaim racing an in-flight
        # open's lease-then-retry could otherwise take back the grant
        # before the retried open commits it.
        async with handle.admission_lock:
            await self._reclaim_surplus(handle)

    async def _handle_report(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        handle = self._worker_for_session(message.get("session"))
        return await self._forward(handle, message)

    async def _handle_snapshot(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        handle = self._worker_for_session(message.get("session"))
        return await self._forward(handle, message)

    async def _handle_close(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        handle = self._worker_for_session(message.get("session"))
        response = await self._forward(handle, message)
        if response.get("ok"):
            await self._session_ended(
                handle, str(message.get("session"))
            )
        return response

    async def _handle_metrics(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        return ok_response(
            "metrics",
            samples=[
                sample.as_dict()
                for sample in self.registry.samples()
            ],
        )

    async def _handle_events(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        since = message.get("since", 0)
        if not isinstance(since, int) or isinstance(since, bool):
            raise ProtocolError(
                "bad_request", "'since' must be an integer cursor"
            )
        events = self.events.since(max(0, since))
        return ok_response(
            "events",
            events=[event.as_dict() for event in events],
            next=self.events.next_seq - 1,
        )

    # -- the global rebalance --------------------------------------------------
    async def _rebalance(self) -> Dict[str, float]:
        """One fleet-wide rebalance round, scatter-gather style.

        Gathers per-session inputs from every worker, merges them in
        global open order (the single-process dict order), plans with
        the shared pure :func:`plan_rebalance`, and applies each
        worker's slice — net donors first, so the lease pool always
        holds the joules a net receiver is about to be granted.
        """
        gathered: Dict[str, Tuple[float, float]] = {}
        owner: Dict[str, WorkerHandle] = {}
        for handle in list(self._workers):
            response = await self._forward(
                handle, {"type": "admin_rebalance_inputs"}
            )
            if not response.get("ok"):
                continue  # crashed worker: its sessions are gone
            surpluses = response.get("surpluses", {})
            overdrafts = response.get("overdrafts", {})
            for session_id, surplus in surpluses.items():
                gathered[session_id] = (
                    float(surplus),
                    float(overdrafts.get(session_id, 0.0)),
                )
                owner[session_id] = handle
        merged_surpluses = {
            session_id: gathered[session_id][0]
            for session_id in self._open_order
            if session_id in gathered
        }
        merged_overdrafts = {
            session_id: gathered[session_id][1]
            for session_id in merged_surpluses
        }
        deltas = plan_rebalance(
            merged_surpluses, merged_overdrafts, self.transfer_fraction
        )
        slices: Dict[int, Dict[str, float]] = {}
        for session_id, delta_j in deltas.items():
            handle = owner[session_id]
            slices.setdefault(handle.index, {})[session_id] = delta_j
        nets = {
            index: sum(plan.values())
            for index, plan in slices.items()
        }
        for index in sorted(slices, key=lambda i: nets[i]):
            handle = self._workers[index]
            if not any(slices[index].values()):
                continue
            response = await self._forward(
                handle,
                {
                    "type": "admin_rebalance_apply",
                    "deltas": slices[index],
                },
            )
            if not response.get("ok"):
                continue
            net_j = float(response.get("net_j", 0.0))
            if abs(net_j) > 0.0:
                await self._lease_delta(handle, net_j)
        self.m_rebalances.labels().inc()
        self.events.append(
            "rebalance",
            sessions=len(merged_surpluses),
            moved_j=round(
                sum(d for d in deltas.values() if d > 0), 6
            ),
        )
        return deltas


# -- entry points --------------------------------------------------------------
async def _serve_router(
    router: ShardRouter, ready: Optional[Any] = None
) -> None:
    await router.start()
    if ready is not None:
        ready.set()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    # SIGTERM must reach aclose(): the default handler kills the
    # router outright and orphans the worker processes.  (SIGINT
    # already unwinds through asyncio.run's KeyboardInterrupt.)
    with contextlib.suppress(NotImplementedError, RuntimeError):
        loop.add_signal_handler(signal.SIGTERM, stop.set)
    try:
        await stop.wait()
    finally:
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.remove_signal_handler(signal.SIGTERM)
        await router.aclose()


def serve_sharded(
    router: ShardRouter, ready: Optional[Any] = None
) -> None:
    """Run a shard router in the foreground until interrupted."""
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve_router(router, ready))


class ShardThread:
    """A sharded daemon in a background thread (tests, benchmarks).

    Mirrors :class:`~repro.service.server.ServerThread`: enter to get
    a running router, connect a plain :class:`ServiceClient` to its
    address, exit to tear down router and workers.
    """

    def __init__(self, router: ShardRouter) -> None:
        self.router = router
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def unix_path(self) -> Optional[str]:
        return self.router.unix_path

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        return self.router.tcp_address

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        return self.router.metrics_address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.router.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.router.aclose())
        finally:
            loop.close()

    def start(self) -> "ShardThread":
        self._thread = threading.Thread(
            target=self._run, name="jouleguard-shard", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=120.0)
        if self._startup_error is not None:
            raise RuntimeError(
                "shard router failed to start"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)
            self._loop = None
            self._thread = None

    def run_coroutine(self, coroutine: Any) -> Any:
        """Run ``coroutine`` on the router's loop (white-box tests)."""
        future = asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        )
        return future.result(timeout=60.0)

    def __enter__(self) -> "ShardThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
