"""repro.obs: zero-dependency observability for the JouleGuard daemon.

Production enforcement (:mod:`repro.enforce`) is only trustworthy if
operators can *watch* it: budget burn-down, tier transitions, and
controller state have to be visible while sessions run, not after.
This package provides that surface without adding a dependency:

* :mod:`~repro.obs.registry` — an in-process metrics registry
  (counters, gauges, histograms, with labels);
* :mod:`~repro.obs.prom` — Prometheus text-format exposition
  (rendering, escaping, and a small parser used by tests and CI);
* :mod:`~repro.obs.http` — an asyncio HTTP endpoint serving
  ``GET /metrics`` (hosted by the service daemon);
* :mod:`~repro.obs.events` — a bounded structured event log with
  cursor-based reads (the daemon's ``events`` protocol verb);
* :mod:`~repro.obs.dash` — an ASCII dashboard
  (``python -m repro dash``) streaming per-session pole, epsilon,
  budget burn-down, and enforcement transitions over the JSON-lines
  protocol, rendered with :mod:`repro.runtime.ascii_plot`.
"""

from .dash import DashboardState, render_dashboard, run_dash
from .events import Event, EventLog
from .http import MetricsHTTPServer
from .prom import parse_text, render_text
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)

__all__ = [
    "Counter",
    "DashboardState",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "Sample",
    "parse_text",
    "render_dashboard",
    "render_text",
    "run_dash",
]
