"""ASCII dashboard for a running JouleGuard daemon.

``python -m repro dash`` connects to the daemon over the normal
JSON-lines protocol, polls the ``metrics`` and ``events`` verbs, and
renders a terminal view of live sessions::

    JouleGuard daemon -- 2 open / 5 opened / 17432 steps / 812.4 J
      budget  [████████▃           ]  41.3% committed of 2.0e+03 J
      alpha   pole 0.834  eps 0.041  tier nominal
              burn [███▂                ]  16.2%  pole ▂▃▅▆▇██▇▇▇
      bravo   pole 0.412  eps 0.212  tier throttle
              burn [████████████████▅   ]  83.1%  pole ▇▆▅▄▃▂▁▁▁▁
    events:
      [ 14] tier_transition session=bravo degrade->throttle step=96

Rendering reuses :mod:`repro.runtime.ascii_plot` (sparklines and the
:func:`~repro.runtime.ascii_plot.hbar` burn-down bars) — the dashboard
adds state tracking and layout, not another plotter.

:class:`DashboardState` is pure (ingest dicts, render text), so tests
can drive it without a socket; :func:`run_dash` owns the poll loop.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    TextIO,
)

from ..runtime.ascii_plot import hbar, sparkline

__all__ = ["DashboardState", "render_dashboard", "run_dash"]

#: Per-session gauge families the dashboard tracks, keyed by their
#: ``session`` label.
_SESSION_GAUGES = (
    "jg_session_pole",
    "jg_session_epsilon",
    "jg_session_budget_burn_ratio",
    "jg_session_tier",
    "jg_session_overdraft_joules",
)

_TIER_LABELS = ("nominal", "advise", "degrade", "throttle", "kill")

_HISTORY = 120
_EVENT_TAIL = 8


class DashboardState:
    """Tracked daemon state: latest samples plus short histories."""

    def __init__(self, history: int = _HISTORY) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self.history = history
        self.totals: Dict[str, float] = {}
        self.sessions: Dict[str, Dict[str, float]] = {}
        self.pole_history: Dict[str, Deque[float]] = {}
        self.burn_history: Dict[str, Deque[float]] = {}
        self.events: Deque[Dict[str, Any]] = deque(maxlen=64)
        self.cursor = 0
        self.frames = 0

    def ingest_samples(self, samples: Sequence[Dict[str, Any]]) -> None:
        """Fold one ``metrics`` response into the state."""
        seen: Dict[str, Dict[str, float]] = {}
        for sample in samples:
            name = str(sample.get("name", ""))
            labels = sample.get("labels") or {}
            value = float(sample.get("value", 0.0))
            if name in _SESSION_GAUGES and "session" in labels:
                session = str(labels["session"])
                seen.setdefault(session, {})[name] = value
            elif not labels:
                self.totals[name] = value
        self.sessions = seen
        for session, gauges in seen.items():
            pole = self.pole_history.setdefault(
                session, deque(maxlen=self.history)
            )
            if "jg_session_pole" in gauges:
                pole.append(gauges["jg_session_pole"])
            burn = self.burn_history.setdefault(
                session, deque(maxlen=self.history)
            )
            if "jg_session_budget_burn_ratio" in gauges:
                burn.append(gauges["jg_session_budget_burn_ratio"])
        # Histories of closed sessions stay until the dashboard exits:
        # the final frame should still show what happened to them.
        self.frames += 1

    def ingest_events(
        self, events: Sequence[Dict[str, Any]], next_cursor: int
    ) -> None:
        """Fold one ``events`` response into the state."""
        for event in events:
            self.events.append(dict(event))
        self.cursor = max(self.cursor, int(next_cursor))


def _format_event(event: Dict[str, Any]) -> str:
    seq = event.get("seq", "?")
    kind = str(event.get("kind", "event"))
    rest = " ".join(
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in ("seq", "kind")
    )
    return f"[{seq:>4}] {kind} {rest}".rstrip()


def _tier_label(value: float) -> str:
    index = int(value)
    if 0 <= index < len(_TIER_LABELS):
        return _TIER_LABELS[index]
    return f"tier{index}"


def render_dashboard(state: DashboardState, width: int = 72) -> str:
    """One frame of the dashboard as a plain string."""
    totals = state.totals
    bar_width = max(10, min(24, width // 3))
    spark_width = max(10, min(30, width // 3))
    lines: List[str] = []
    lines.append(
        "JouleGuard daemon -- "
        f"{totals.get('jg_sessions_open', 0):.0f} open / "
        f"{totals.get('jg_sessions_opened_total', 0):.0f} opened / "
        f"{totals.get('jg_steps_total', 0):.0f} steps / "
        f"{totals.get('jg_energy_spent_joules_total', 0):.1f} J"
    )
    global_j = totals.get("jg_budget_global_joules", 0.0)
    committed_j = totals.get("jg_budget_committed_joules", 0.0)
    if global_j > 0:
        fraction = committed_j / global_j
        lines.append(
            f"  budget  [{hbar(fraction, bar_width)}] "
            f"{100 * fraction:5.1f}% committed of {global_j:.3g} J"
        )
    for session in sorted(state.sessions):
        gauges = state.sessions[session]
        tier = _tier_label(gauges.get("jg_session_tier", 0.0))
        lines.append(
            f"  {session:<12} "
            f"pole {gauges.get('jg_session_pole', 0.0):6.3f}  "
            f"eps {gauges.get('jg_session_epsilon', 0.0):6.3f}  "
            f"tier {tier}"
        )
        burn = gauges.get("jg_session_budget_burn_ratio", 0.0)
        poles = state.pole_history.get(session, ())
        detail = (
            f"  {'':<12} burn [{hbar(burn, bar_width)}] "
            f"{100 * min(burn, 1.0):5.1f}%"
        )
        if len(poles) >= 2:
            detail += f"  pole {sparkline(list(poles), spark_width)}"
        lines.append(detail)
        overdraft = gauges.get("jg_session_overdraft_joules", 0.0)
        if overdraft > 0:
            lines.append(
                f"  {'':<12} !! hard overdraft {overdraft:.3g} J"
            )
    if not state.sessions:
        lines.append("  (no open sessions)")
    if state.events:
        lines.append("events:")
        tail = list(state.events)[-_EVENT_TAIL:]
        for event in tail:
            lines.append(f"  {_format_event(event)}")
    return "\n".join(lines)


def poll_once(client: Any, state: DashboardState) -> None:
    """Fetch one metrics + events round and fold it into ``state``."""
    metrics = client.request({"type": "metrics"})
    state.ingest_samples(metrics.get("samples", []))
    events = client.request({"type": "events", "since": state.cursor})
    state.ingest_events(
        events.get("events", []), int(events.get("next", state.cursor))
    )


def run_dash(
    host: Optional[str] = None,
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    out: Optional[TextIO] = None,
    clear: bool = True,
) -> DashboardState:
    """Poll the daemon and stream dashboard frames to ``out``.

    ``frames`` bounds the number of frames (``None`` streams until the
    connection drops or the user interrupts); tests and ``--once`` use
    ``frames=1``.  Returns the final state.
    """
    from ..service.client import ServiceClient

    if interval_s <= 0:
        raise ValueError("interval must be positive")
    stream = out if out is not None else sys.stdout
    state = DashboardState()
    with ServiceClient(
        host=host, port=port, unix_path=unix_path
    ) as client:
        while frames is None or state.frames < frames:
            if state.frames:
                time.sleep(interval_s)
            poll_once(client, state)
            frame = render_dashboard(state)
            if clear and state.frames > 1:
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame + "\n")
            stream.flush()
    return state
