"""A minimal asyncio HTTP endpoint for Prometheus scrapes.

The daemon hosts this next to its JSON-lines socket so a scraper (or
``curl`` in CI) can ``GET /metrics`` without speaking the repro
protocol.  Only what a scraper needs is implemented:

* ``GET /metrics`` — the registry rendered with
  :func:`repro.obs.prom.render_text`;
* ``GET /healthz`` — ``ok`` (liveness probe);
* anything else — 404.

Requests are read up to the blank line and the rest is ignored; the
connection is closed after each response (``Connection: close``).
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from .prom import CONTENT_TYPE, render_text
from .registry import MetricsRegistry

__all__ = ["MetricsHTTPServer"]

_MAX_REQUEST_BYTES = 8192


class MetricsHTTPServer:
    """Serves ``GET /metrics`` for one :class:`MetricsRegistry`."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("metrics server is not running")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port
        )

    async def aclose(self) -> None:
        # Capture-and-clear before any await (jgflow JGF101): a second
        # aclose racing this one sees None and no-ops instead of
        # closing the same server twice.
        server, self._server = self._server, None
        if server is None:
            return
        server.close()
        await server.wait_closed()

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await reader.readline()
            if not request or len(request) > _MAX_REQUEST_BYTES:
                return
            # Drain headers up to the blank line; their content is
            # irrelevant to a scrape.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            writer.write(self._respond(request))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _respond(self, request_line: bytes) -> bytes:
        try:
            method, path, _ = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return _response(400, "text/plain", "bad request\n")
        path = path.split("?", 1)[0]
        if method != "GET":
            return _response(405, "text/plain", "method not allowed\n")
        if path == "/metrics":
            return _response(200, CONTENT_TYPE, render_text(self.registry))
        if path == "/healthz":
            return _response(200, "text/plain", "ok\n")
        return _response(404, "text/plain", "not found\n")


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
}


def _response(status: int, content_type: str, body: str) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload
