"""Prometheus text exposition format (version 0.0.4).

:func:`render_text` turns a :class:`~repro.obs.registry.MetricsRegistry`
into the ``text/plain; version=0.0.4`` body a Prometheus scraper
expects::

    # HELP jg_sessions_open Live sessions hosted by the daemon.
    # TYPE jg_sessions_open gauge
    jg_sessions_open 3
    jg_requests_total{ok="true",type="step"} 1204

Output is deterministic: families in name order, children in
label-value order, label names sorted within a sample.  Escaping
follows the spec — ``\\``, ``"`` and newlines in label values;
``\\`` and newlines in help text.

:func:`parse_text` is the inverse for well-formed output.  It exists
so the property tests can assert a lossless round-trip (including
escaping) and so CI can scrape the live endpoint and assert required
families — it is not a general Prometheus parser.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .registry import MetricsRegistry, Sample

__all__ = [
    "escape_help",
    "escape_label_value",
    "parse_text",
    "render_text",
    "unescape_label_value",
]

#: Content type of the exposition (what the HTTP endpoint serves).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text: str) -> str:
    """Escape a HELP line: backslashes and newlines."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(value: str) -> str:
    """Escape a label value: backslashes, quotes, and newlines."""
    return (
        value.replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _unescape(value: str) -> str:
    """Left-to-right unescape of ``\\\\``, ``\\n``, and ``\\"``."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    return _unescape(value)


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_sample(sample: Sample) -> str:
    if not sample.labels:
        return f"{sample.name} {_format_value(sample.value)}"
    labels = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in sorted(sample.labels)
    )
    return f"{sample.name}{{{labels}}} {_format_value(sample.value)}"


def render_text(registry: MetricsRegistry) -> str:
    """The full exposition body for one registry (trailing newline)."""
    lines: List[str] = []
    for metric in registry.collect():
        lines.append(
            f"# HELP {metric.name} {escape_help(metric.help_text)}"
        )
        lines.append(f"# TYPE {metric.name} {metric.type_name}")
        for sample in metric.samples():
            lines.append(_render_sample(sample))
    return "\n".join(lines) + "\n"


def _split_labels(body: str) -> Tuple[Tuple[str, str], ...]:
    """Parse the inside of ``{...}`` respecting escaped quotes."""
    items: List[Tuple[str, str]] = []
    index = 0
    while index < len(body):
        eq = body.index("=", index)
        name = body[index:eq]
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {body[eq:]!r}")
        cursor = eq + 2
        raw: List[str] = []
        while True:
            char = body[cursor]
            if char == "\\":
                raw.append(body[cursor : cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        items.append((name, unescape_label_value("".join(raw))))
        index = cursor + 1
        if index < len(body):
            if body[index] != ",":
                raise ValueError(f"junk after label near {body[index:]!r}")
            index += 1
    return tuple(items)


def parse_text(
    text: str,
) -> Tuple[Dict[str, Tuple[str, str]], List[Sample]]:
    """Parse exposition text back into ``(families, samples)``.

    ``families`` maps metric name to ``(type, help)``; ``samples`` is
    the flat sample list with labels unescaped.  Raises ``ValueError``
    on lines the renderer could not have produced.
    """
    families: Dict[str, Tuple[str, str]] = {}
    helps: Dict[str, str] = {}
    samples: List[Sample] = []
    # Split on literal newlines only: splitlines() also breaks on
    # Unicode line separators (U+2028, \x1c..\x1e, ...), which are
    # legal *inside* an escaped label value.
    for line in text.split("\n"):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP ") :].partition(" ")
            helps[name] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            name, _, type_name = line[len("# TYPE ") :].partition(" ")
            families[name] = (type_name.strip(), helps.get(name, ""))
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            body, _, value = rest.rpartition("} ")
            labels = _split_labels(body)
        else:
            name, _, value = line.rpartition(" ")
            labels = ()
        samples.append(Sample(name, labels, float(value)))
    return families, samples
