"""An in-process metrics registry: counters, gauges, histograms.

Deliberately a small subset of the Prometheus client model — enough
for the daemon's telemetry without a dependency:

* metric families are registered once with a name, help text, and a
  fixed tuple of label names;
* ``labels(...)`` returns (creating on first use) the child for one
  label-value combination; families with no labels act as their own
  child;
* :meth:`MetricsRegistry.collect` yields every family's samples in a
  stable order, ready for :func:`repro.obs.prom.render_text` or the
  service's JSON ``metrics`` verb.

All operations are plain dict lookups and float adds: cheap enough to
sit on the daemon's per-step hot path (the throughput benchmark gates
the overhead at 5 %).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Sample",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, like the Prometheus
#: client's): request latencies from 100 µs to 10 s.
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


@dataclass(frozen=True)
class Sample:
    """One exposition sample: a name, sorted labels, and a value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Metric:
    """Base class for one metric family."""

    type_name = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(tuple(labelnames)):
            raise ValueError("duplicate label names")
        self.name = name
        self.help_text = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], Any] = {}

    # -- children --------------------------------------------------------------
    def _child(self) -> Any:
        raise NotImplementedError

    def labels(self, *values: Any, **kwvalues: Any) -> Any:
        """The child for one label-value combination (created on use)."""
        if kwvalues:
            if values:
                raise ValueError(
                    "pass label values positionally or by name, not both"
                )
            try:
                values = tuple(
                    kwvalues[name] for name in self.labelnames
                )
            except KeyError as exc:
                raise ValueError(f"missing label {exc}") from exc
            if len(kwvalues) != len(self.labelnames):
                raise ValueError("unexpected label names")
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label "
                f"value(s), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._child()
        return child

    def remove(self, *values: Any) -> None:
        """Drop one child (e.g. a closed session's gauge series)."""
        key = tuple(str(value) for value in values)
        self._children.pop(key, None)

    def _self_child(self) -> Any:
        """The implicit child of an unlabelled family."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels; call .labels(...) first"
            )
        return self.labels()

    # -- exposition ------------------------------------------------------------
    def _label_items(
        self, key: Tuple[str, ...]
    ) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.labelnames, key))

    def samples(self) -> List[Sample]:
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError("counters can only go up")
        self.value += amount


class Counter(Metric):
    """A monotonically increasing value (name it ``*_total``)."""

    type_name = "counter"

    def _child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._self_child().inc(amount)

    def samples(self) -> List[Sample]:
        return [
            Sample(self.name, self._label_items(key), child.value)
            for key, child in sorted(self._children.items())
        ]


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(Metric):
    """A value that can go up and down."""

    type_name = "gauge"

    def _child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._self_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._self_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._self_child().dec(amount)

    def samples(self) -> List[Sample]:
        return [
            Sample(self.name, self._label_items(key), child.value)
            for key, child in sorted(self._children.items())
        ]


class _HistogramChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, uppers: Sequence[float]) -> None:
        self.sum += value
        self.count += 1
        # Per-bucket counts; exposition accumulates them into the
        # cumulative series Prometheus expects.
        for index, upper in enumerate(uppers):
            if value <= upper:
                self.counts[index] += 1
                break


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        uppers = tuple(float(b) for b in buckets)
        if not uppers or sorted(uppers) != list(uppers):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.uppers = uppers

    def _child(self) -> _HistogramChild:
        return _HistogramChild(len(self.uppers))

    def observe(self, value: float) -> None:
        self._self_child().observe(value, self.uppers)

    def samples(self) -> List[Sample]:
        out: List[Sample] = []
        for key, child in sorted(self._children.items()):
            base = self._label_items(key)
            cumulative = 0
            for upper, count in zip(self.uppers, child.counts):
                cumulative += count
                out.append(
                    Sample(
                        f"{self.name}_bucket",
                        base + (("le", _format_upper(upper)),),
                        float(cumulative),
                    )
                )
            out.append(
                Sample(
                    f"{self.name}_bucket",
                    base + (("le", "+Inf"),),
                    float(child.count),
                )
            )
            out.append(Sample(f"{self.name}_sum", base, child.sum))
            out.append(
                Sample(f"{self.name}_count", base, float(child.count))
            )
        return out


def _format_upper(upper: float) -> str:
    """Bucket bound label: integral bounds render without the .0."""
    if upper == int(upper):
        return str(int(upper))
    return repr(upper)


class MetricsRegistry:
    """Holds metric families; the unit of exposition.

    One registry per daemon.  Families are registered once (a duplicate
    name raises), then mutated through the returned handles.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def register(self, metric: Metric) -> Metric:
        if metric.name in self._metrics:
            raise ValueError(
                f"metric {metric.name!r} is already registered"
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
    ) -> Counter:
        metric = Counter(name, help_text, labelnames)
        self.register(metric)
        return metric

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        metric = Gauge(name, help_text, labelnames)
        self.register(metric)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = Histogram(name, help_text, labelnames, buckets)
        self.register(metric)
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> Iterator[Metric]:
        """Families in stable (name-sorted) order."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def samples(self) -> List[Sample]:
        """Every family's samples, flattened, in exposition order."""
        out: List[Sample] = []
        for metric in self.collect():
            out.extend(metric.samples())
        return out
