"""A bounded, structured event log with cursor-based reads.

The daemon appends one :class:`Event` per noteworthy state change —
session opened/closed/killed, enforcement tier transition, budget
revision — and serves them through the ``events`` protocol verb.
Consumers (the dashboard, tests, CI) poll with the last sequence
number they saw; the log answers everything newer, so a slow consumer
misses nothing until the ring wraps.

Events are deterministic by construction: they carry a monotonically
increasing sequence number and whatever fields the producer recorded
(step indices, joules, tiers) — no wall-clock timestamp is required,
which keeps chaos-harness runs replayable byte for byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One structured log entry."""

    seq: int
    kind: str
    fields: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        payload.update(self.fields)
        return payload


class EventLog:
    """Ring buffer of :class:`Event` with an ever-increasing cursor."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._next_seq = 1

    def __len__(self) -> int:
        return len(self._events)

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended event will get."""
        return self._next_seq

    def append(self, kind: str, **fields: Any) -> Event:
        """Record one event; returns it (with its sequence number)."""
        if not kind:
            raise ValueError("event kind cannot be empty")
        event = Event(seq=self._next_seq, kind=kind, fields=dict(fields))
        self._next_seq += 1
        self._events.append(event)
        return event

    def since(
        self, seq: int = 0, limit: Optional[int] = None
    ) -> List[Event]:
        """Events with a sequence number strictly greater than ``seq``."""
        if seq < 0:
            raise ValueError("cursor cannot be negative")
        newer = [event for event in self._events if event.seq > seq]
        if limit is not None:
            newer = newer[: max(0, limit)]
        return newer

    def tail(self, n: int = 10) -> List[Event]:
        """The most recent ``n`` events, oldest first."""
        if n < 0:
            raise ValueError("tail length cannot be negative")
        return list(self._events)[-n:] if n else []
