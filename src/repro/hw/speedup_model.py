"""Performance model: work rate of (application, system configuration).

Computes the throughput, in application work units per second, that a
machine configuration delivers for an application's default-accuracy
computation.  The model combines:

* per-core speed scaling ``f**beta`` (``beta`` = clock sensitivity),
* Amdahl's law over heterogeneous clusters — the serial fraction runs on
  the fastest active core, the parallel fraction on the aggregate capacity,
* a hyperthreading bonus (application gain × machine effectiveness),
* memory-bandwidth saturation: the memory-bound share of the aggregate
  demand is capped by the active memory controllers, which both limits
  thread scaling and makes the memory-controller knob matter.

JouleGuard itself never calls this module directly; it observes the
resulting rates through the simulator's noisy feedback, exactly as the
paper's runtime observes hardware.
"""

from __future__ import annotations

from .knobs import SystemConfig
from .machine import Machine
from .profiles import AppResourceProfile


def core_speed(
    machine: Machine, cluster_name: str, freq_ghz: float, beta: float
) -> float:
    """Relative speed of one core of ``cluster_name`` at ``freq_ghz``.

    Normalized so a reference core (``perf_per_ghz == 1``) at 1 GHz with
    ``beta == 1`` has speed 1.
    """
    for cluster in machine.clusters:
        if cluster.name == cluster_name:
            if freq_ghz <= 0:
                raise ValueError("frequency must be positive")
            return cluster.perf_per_ghz * freq_ghz**beta
    raise KeyError(cluster_name)


def aggregate_capacity(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Total parallel capacity in reference-core units (before bandwidth)."""
    capacity = 0.0
    for cluster in machine.clusters:
        n = config[cluster.cores_knob]
        if n <= 0:
            continue
        f = machine.cluster_speed(cluster, config)
        capacity += n * core_speed(
            machine, cluster.name, f, profile.clock_sensitivity
        )
    if machine.hyperthreading_on(config):
        capacity *= 1.0 + profile.ht_gain * machine.ht_effectiveness
    return capacity


def fastest_core_speed(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Speed of the fastest single active core (runs the serial fraction)."""
    best = 0.0
    for cluster in machine.clusters:
        if config[cluster.cores_knob] <= 0:
            continue
        f = machine.cluster_speed(cluster, config)
        best = max(
            best,
            core_speed(machine, cluster.name, f, profile.clock_sensitivity),
        )
    return best


def bandwidth_limited_capacity(
    machine: Machine,
    config: SystemConfig,
    profile: AppResourceProfile,
    raw_capacity: float,
) -> float:
    """Apply memory-bandwidth saturation to the parallel capacity.

    The memory-bound share of the demand (``memory_boundness`` ×
    capacity) cannot exceed the bandwidth supplied by the active memory
    controllers; the compute-bound share is unaffected.  When demand
    oversubscribes supply, queueing degrades the delivered bandwidth by
    the machine's ``bandwidth_thrash`` factor, so piling on threads can
    reduce absolute throughput (the paper's ferret-on-Server behaviour).
    """
    mb = profile.memory_boundness
    if mb <= 0.0:
        return raw_capacity
    supply = machine.memory_controllers(config) * machine.bandwidth_per_ctrl
    demand = raw_capacity * mb
    if demand <= supply:
        satisfied = demand
    else:
        excess = demand / supply - 1.0
        satisfied = supply / (1.0 + machine.bandwidth_thrash * excess)
    return raw_capacity * (1.0 - mb) + satisfied


def work_rate(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Work units per second for ``profile`` under ``config``.

    Amdahl's law with heterogeneous clusters::

        t(one unit) = (1 - P) / fastest  +  P / capacity
    """
    machine.space.validate(config)
    serial = 1.0 - profile.parallel_fraction
    fastest = fastest_core_speed(machine, config, profile)
    if fastest <= 0.0:
        raise ValueError("configuration has no active cores")
    capacity = bandwidth_limited_capacity(
        machine,
        config,
        profile,
        aggregate_capacity(machine, config, profile),
    )
    unit_time = serial / fastest + profile.parallel_fraction / capacity
    return profile.base_rate / unit_time


def speedup_over_minimal(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Speedup of ``config`` relative to the machine's minimal config."""
    return work_rate(machine, config, profile) / work_rate(
        machine, machine.space.minimal, profile
    )
