"""Racing vs. pacing to idle (paper Table 3's "idle" rows, ref. [19]).

The paper notes "there are effectively an unlimited number of idle
settings, as any application could be stalled arbitrarily".  For a
periodic workload (``work`` units every ``period`` seconds) a platform
can either

* **race** (race-to-idle): run flat out in the default (fastest)
  configuration, finish early, and idle for the rest of the period;
* **pace**: run in the minimum-power configuration that still meets the
  deadline, never idling (classic DVFS slowdown);
* **hybrid**: pick *any* configuration and idle the slack — the optimum
  neither heuristic reaches in general, and what JouleGuard's learner
  effectively approximates from feedback.

Which heuristic wins depends on the platform's power structure
(Hoffmann, HotPower'13): when static/idle power dominates, racing wins;
when dynamic power dominates (cubic in clock) and efficient slow
configurations exist, pacing wins.  This module evaluates all three
exactly on the analytic models, providing the idle dimension the
closed-loop experiments abstract away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .knobs import SystemConfig
from .machine import Machine
from .power_model import system_power
from .profiles import AppResourceProfile
from .speedup_model import work_rate


@dataclass(frozen=True)
class PolicyOutcome:
    """Energy verdict for one policy on one periodic job."""

    policy: str
    config: SystemConfig
    busy_s: float
    idle_s: float
    energy_j: float

    @property
    def average_power_w(self) -> float:
        return self.energy_j / (self.busy_s + self.idle_s)


def idle_power(machine: Machine, deep_sleep_fraction: float = 0.0) -> float:
    """Full-system idle power.

    ``deep_sleep_fraction`` discounts the processor idle draw for
    platforms with effective sleep states (0 = plain idle, 1 = the
    package sleeps entirely and only rest-of-system power remains).
    """
    if not 0.0 <= deep_sleep_fraction <= 1.0:
        raise ValueError("deep_sleep_fraction must be in [0, 1]")
    return machine.external_w + machine.idle_w * (1.0 - deep_sleep_fraction)


def race_outcome(
    machine: Machine,
    profile: AppResourceProfile,
    config: SystemConfig,
    work: float,
    period_s: float,
    deep_sleep_fraction: float = 0.0,
) -> Optional[PolicyOutcome]:
    """Energy of racing in ``config`` then idling; None if it misses."""
    if work <= 0 or period_s <= 0:
        raise ValueError("work and period must be positive")
    rate = work_rate(machine, config, profile)
    busy = work / rate
    if busy > period_s:
        return None
    idle = period_s - busy
    energy = (
        system_power(machine, config, profile) * busy
        + idle_power(machine, deep_sleep_fraction) * idle
    )
    return PolicyOutcome(
        policy="race", config=config, busy_s=busy, idle_s=idle,
        energy_j=energy,
    )


def race_to_idle(
    machine: Machine,
    profile: AppResourceProfile,
    work: float,
    period_s: float,
    deep_sleep_fraction: float = 0.0,
) -> Optional[PolicyOutcome]:
    """Classic race-to-idle: flat out in the default config, then sleep."""
    return race_outcome(
        machine,
        profile,
        machine.default_config,
        work,
        period_s,
        deep_sleep_fraction,
    )


def best_hybrid(
    machine: Machine,
    profile: AppResourceProfile,
    work: float,
    period_s: float,
    deep_sleep_fraction: float = 0.0,
) -> Optional[PolicyOutcome]:
    """The optimum: any configuration plus idle slack (None if none meets)."""
    best: Optional[PolicyOutcome] = None
    for config in machine.space:
        outcome = race_outcome(
            machine, profile, config, work, period_s, deep_sleep_fraction
        )
        if outcome and (best is None or outcome.energy_j < best.energy_j):
            best = outcome
    if best is None:
        return None
    return PolicyOutcome(
        policy="hybrid",
        config=best.config,
        busy_s=best.busy_s,
        idle_s=best.idle_s,
        energy_j=best.energy_j,
    )


def best_pace(
    machine: Machine,
    profile: AppResourceProfile,
    work: float,
    period_s: float,
) -> Optional[PolicyOutcome]:
    """The minimum-power configuration that exactly fills the period.

    Pure pacing: the job runs wall-to-wall (the discrete configuration
    that *just* meets the deadline; any slack is negligible idle at the
    same accounting as busy time to keep the policy honest).
    """
    if work <= 0 or period_s <= 0:
        raise ValueError("work and period must be positive")
    best: Optional[PolicyOutcome] = None
    for config in machine.space:
        rate = work_rate(machine, config, profile)
        busy = work / rate
        if busy > period_s:
            continue
        # Pacing charges the *active* power for the whole period — the
        # configuration never sleeps.
        energy = system_power(machine, config, profile) * period_s
        if best is None or energy < best.energy_j:
            best = PolicyOutcome(
                policy="pace",
                config=config,
                busy_s=busy,
                idle_s=period_s - busy,
                energy_j=energy,
            )
    return best


@dataclass(frozen=True)
class RacePaceComparison:
    """All three policies on the same periodic job."""

    race: Optional[PolicyOutcome]
    pace: Optional[PolicyOutcome]
    hybrid: Optional[PolicyOutcome]

    @property
    def winner(self) -> str:
        """The better of the two *heuristics* (race vs. pace)."""
        if self.race is None and self.pace is None:
            return "infeasible"
        if self.race is None:
            return "pace"
        if self.pace is None:
            return "race"
        return "race" if self.race.energy_j <= self.pace.energy_j else "pace"

    @property
    def heuristic_gap(self) -> float:
        """Energy of the winning heuristic over the hybrid optimum (≥ 1)."""
        if self.hybrid is None:
            raise ValueError("no feasible policy")
        best_heuristic = min(
            (o.energy_j for o in (self.race, self.pace) if o is not None),
            default=None,
        )
        if best_heuristic is None:
            raise ValueError("no feasible heuristic")
        return best_heuristic / self.hybrid.energy_j


def compare_policies(
    machine: Machine,
    profile: AppResourceProfile,
    work: float,
    period_s: float,
    deep_sleep_fraction: float = 0.0,
) -> RacePaceComparison:
    """Evaluate race-to-idle, pacing, and the hybrid optimum."""
    return RacePaceComparison(
        race=race_to_idle(
            machine, profile, work, period_s, deep_sleep_fraction
        ),
        pace=best_pace(machine, profile, work, period_s),
        hybrid=best_hybrid(
            machine, profile, work, period_s, deep_sleep_fraction
        ),
    )
