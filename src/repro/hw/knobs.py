"""System knobs: the discrete settings a platform exposes.

A *knob* is one tunable hardware resource (core count, clock speed,
hyperthreading, memory controllers).  Each knob has a name and an ordered
tuple of values; higher positions always mean "more resources".  A
:class:`SystemConfig` assigns one value to every knob of a machine.

The paper (Table 3) characterizes each platform by its knobs and the
measured speedup/powerup range each knob provides; :mod:`repro.hw.machines`
instantiates the three platforms from these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple


@dataclass(frozen=True)
class Knob:
    """One tunable system resource.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"cores"`` or ``"clock_ghz"``.
    values:
        Ordered settings, smallest resource allocation first.  Values may
        be numbers (core counts, GHz) or small ints encoding on/off.
    """

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"knob {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"knob {self.name!r} has duplicate values")
        if list(self.values) != sorted(self.values):
            raise ValueError(f"knob {self.name!r} values must be ascending")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def min_value(self) -> float:
        return self.values[0]

    @property
    def max_value(self) -> float:
        return self.values[-1]

    def index_of(self, value: float) -> int:
        """Return the position of ``value``, raising ``ValueError`` if absent."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not a setting of knob {self.name!r}"
            ) from None


@dataclass(frozen=True)
class SystemConfig:
    """An assignment of a value to every knob of a machine.

    Instances are immutable and hashable so they can key estimator tables
    in the bandit learner.  ``settings`` maps knob name to the chosen value.
    """

    settings: Tuple[Tuple[str, float], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "SystemConfig":
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict:
        return dict(self.settings)

    def __getitem__(self, knob_name: str) -> float:
        for name, value in self.settings:
            if name == knob_name:
                return value
        raise KeyError(knob_name)

    def get(self, knob_name: str, default: float = 0.0) -> float:
        for name, value in self.settings:
            if name == knob_name:
                return value
        return default

    def replace(self, **changes: float) -> "SystemConfig":
        """Return a copy with the given knob values substituted."""
        updated = self.as_dict()
        for name, value in changes.items():
            if name not in updated:
                raise KeyError(f"unknown knob {name!r}")
            updated[name] = value
        return SystemConfig.from_mapping(updated)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:g}" for k, v in self.settings)
        return f"SystemConfig({parts})"


def normalized_position(knob: Knob, value: float) -> float:
    """Map ``value`` to [0, 1] by its ordinal position within ``knob``.

    Used to linearize multi-dimensional configuration spaces into the
    single "configuration index" axis of the paper's Fig. 3.
    """
    if len(knob) == 1:
        return 1.0
    return knob.index_of(value) / (len(knob) - 1)


def validate_config(knobs: Sequence[Knob], config: SystemConfig) -> None:
    """Raise ``ValueError`` unless ``config`` assigns a legal value per knob."""
    by_name = {k.name: k for k in knobs}
    names = {name for name, _ in config.settings}
    if names != set(by_name):
        missing = set(by_name) - names
        extra = names - set(by_name)
        raise ValueError(
            f"config does not match knob set (missing={sorted(missing)}, "
            f"extra={sorted(extra)})"
        )
    for name, value in config.settings:
        by_name[name].index_of(value)
