"""Platform simulator: executes application iterations on a machine model.

One :class:`PlatformSimulator` stands in for the paper's physical testbed:
given the current system configuration, the application's configuration-
level speedup, and the work in the next iteration, it advances a virtual
clock and returns the time, energy, and the (noisy) rate/power feedback
the runtime would observe.  Noise is AR(1)-correlated multiplicative
lognormal — consecutive iterations on real hardware are not independent —
and arbitrary disturbances (page-fault storms, co-runners) can be injected
to exercise the controller's robustness analysis (Sec. 3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .knobs import SystemConfig
from .machine import Machine
from .power_model import package_power, system_power
from .profiles import AppResourceProfile
from .sensors import ExternalPowerMeter, OnChipPowerSensor
from .speedup_model import work_rate

# A disturbance maps the virtual time (s) to a rate multiplier.
Disturbance = Callable[[float], float]


@dataclass
class NoiseModel:
    """AR(1)-correlated multiplicative lognormal noise on rate and power.

    ``sigma`` is the stationary standard deviation of the log-noise and
    ``correlation`` the AR(1) coefficient.  ``sigma == 0`` gives a
    noise-free deterministic platform (useful in unit tests).
    """

    sigma_rate: float = 0.05
    sigma_power: float = 0.02
    correlation: float = 0.6
    _state_rate: float = 0.0
    _state_power: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")
        if self.sigma_rate < 0 or self.sigma_power < 0:
            raise ValueError("noise sigmas must be non-negative")

    def _step(self, state: float, sigma: float, rng: np.random.Generator):
        if sigma <= 0.0:
            return 0.0, 1.0
        innovation_sd = sigma * np.sqrt(1.0 - self.correlation**2)
        state = self.correlation * state + rng.normal(0.0, innovation_sd)
        return state, float(np.exp(state))

    def sample(self, rng: np.random.Generator):
        """Return one (rate multiplier, power multiplier) pair."""
        self._state_rate, rate_mult = self._step(
            self._state_rate, self.sigma_rate, rng
        )
        self._state_power, power_mult = self._step(
            self._state_power, self.sigma_power, rng
        )
        return rate_mult, power_mult


@dataclass(frozen=True)
class IterationResult:
    """Outcome of one simulated application iteration."""

    work: float
    time_s: float
    energy_j: float
    true_rate: float
    true_power_w: float
    measured_rate: float
    measured_power_w: float
    clock_s: float


@dataclass
class PlatformSimulator:
    """Virtual testbed for one (machine, application) pair.

    Parameters
    ----------
    machine:
        The platform model.
    profile:
        The application's resource profile.
    noise:
        Iteration-to-iteration variability; defaults to mild AR(1) noise.
    seed:
        RNG seed for reproducibility.
    sensor:
        On-chip power sensor; by default offset by the machine's external
        power so readings approximate full-system power (Sec. 4.2).
    switch_latency_s / switch_energy_j:
        Cost of changing the system configuration (DVFS transitions and
        core on/off-lining are not free on real hardware).  Defaults to
        zero — the paper does not model it — but nonzero values penalize
        controllers that thrash between configurations, which the
        robustness tests exploit.
    """

    machine: Machine
    profile: AppResourceProfile
    noise: NoiseModel = field(default_factory=NoiseModel)
    seed: int = 0
    sensor: Optional[OnChipPowerSensor] = None
    meter: ExternalPowerMeter = field(default_factory=ExternalPowerMeter)
    disturbances: List[Disturbance] = field(default_factory=list)
    clock_s: float = 0.0
    switch_latency_s: float = 0.0
    switch_energy_j: float = 0.0

    def __post_init__(self) -> None:
        if self.switch_latency_s < 0 or self.switch_energy_j < 0:
            raise ValueError("switch costs must be non-negative")
        self.rng = np.random.default_rng(self.seed)
        self.switch_count = 0
        self._last_config: Optional[SystemConfig] = None
        if self.sensor is None:
            self.sensor = OnChipPowerSensor(
                fixed_offset_w=self.machine.external_w,
                rng=np.random.default_rng(self.seed + 1),
            )

    def add_disturbance(self, disturbance: Disturbance) -> None:
        """Register a rate disturbance (multiplier as a function of time)."""
        self.disturbances.append(disturbance)

    def _disturbance_multiplier(self) -> float:
        mult = 1.0
        for disturbance in self.disturbances:
            mult *= disturbance(self.clock_s)
        if mult <= 0:
            raise ValueError("disturbances must keep the rate positive")
        return mult

    def run_iteration(
        self,
        config: SystemConfig,
        work: float,
        app_speedup: float = 1.0,
        app_power_factor: float = 1.0,
        input_difficulty: float = 1.0,
    ) -> IterationResult:
        """Execute ``work`` units and return timing/energy feedback.

        ``app_speedup`` is the speedup of the current *application*
        configuration over the application default; ``app_power_factor``
        lets approximate configurations perturb power slightly (skipping
        work changes the memory/compute mix).  ``input_difficulty``
        scales the computational cost of this iteration's input relative
        to nominal — the paper's "easier scene that naturally encodes
        about 40 % faster" is difficulty 1/1.4 (Sec. 5.6).
        """
        if work <= 0:
            raise ValueError("work must be positive")
        if app_speedup <= 0:
            raise ValueError("app speedup must be positive")
        if input_difficulty <= 0:
            raise ValueError("input difficulty must be positive")
        rate_mult, power_mult = self.noise.sample(self.rng)
        base_rate = work_rate(self.machine, config, self.profile)
        true_rate = (
            base_rate
            * app_speedup
            * rate_mult
            * self._disturbance_multiplier()
            / input_difficulty
        )
        true_power = (
            system_power(self.machine, config, self.profile)
            * app_power_factor
            * power_mult
        )
        time_s = work / true_rate
        energy_j = true_power * time_s
        if self._last_config is not None and config != self._last_config:
            self.switch_count += 1
            time_s += self.switch_latency_s
            energy_j += (
                self.switch_energy_j
                + true_power * self.switch_latency_s
            )
        self._last_config = config
        self.clock_s += time_s
        self.meter.accumulate(true_power, time_s)

        pkg = package_power(self.machine, config, self.profile)
        measured_power = self.sensor.read(pkg * app_power_factor * power_mult)
        # Performance feedback: work and time are directly observable.
        measured_rate = work / time_s
        return IterationResult(
            work=work,
            time_s=time_s,
            energy_j=energy_j,
            true_rate=true_rate,
            true_power_w=true_power,
            measured_rate=measured_rate,
            measured_power_w=measured_power,
            clock_s=self.clock_s,
        )

    # -- noise-free queries (used by the oracle and characterization) -------
    def ideal_rate(self, config: SystemConfig, app_speedup: float = 1.0):
        """Noise-free rate for (config, app speedup)."""
        return work_rate(self.machine, config, self.profile) * app_speedup

    def ideal_power(self, config: SystemConfig, app_power_factor: float = 1.0):
        """Noise-free full-system power for the configuration."""
        return (
            system_power(self.machine, config, self.profile)
            * app_power_factor
        )

    def energy_efficiency(self, config: SystemConfig) -> float:
        """Noise-free rate/power — the y-axis of the paper's Fig. 3."""
        return self.ideal_rate(config) / self.ideal_power(config)
