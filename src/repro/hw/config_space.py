"""Enumeration and linearization of a machine's system-configuration space.

JouleGuard's learner treats every legal combination of knob settings as one
arm of a multi-armed bandit (paper Sec. 3.2).  The paper's Fig. 3 plots
energy efficiency against a *linearized configuration index* chosen so the
lowest index is a single core at the slowest clock and the highest index is
every resource maxed out; :func:`ConfigSpace.linearized` reproduces that
ordering.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from .knobs import Knob, SystemConfig, normalized_position, validate_config

# A constraint receives a candidate config and returns True if it is legal.
Constraint = Callable[[SystemConfig], bool]


class ConfigSpace:
    """The set of legal system configurations of one machine.

    Parameters
    ----------
    knobs:
        The machine's knobs.
    constraint:
        Optional predicate rejecting illegal combinations (e.g. "at least
        one core active" on a big.LITTLE platform).
    """

    def __init__(
        self,
        knobs: Sequence[Knob],
        constraint: Optional[Constraint] = None,
    ) -> None:
        if not knobs:
            raise ValueError("a configuration space needs at least one knob")
        names = [k.name for k in knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob names: {names}")
        self.knobs: Tuple[Knob, ...] = tuple(knobs)
        self.constraint = constraint
        self._configs: Tuple[SystemConfig, ...] = tuple(self._enumerate())
        if not self._configs:
            raise ValueError("constraint rejects every configuration")
        self._index = {cfg: i for i, cfg in enumerate(self._configs)}

    def _enumerate(self) -> Iterator[SystemConfig]:
        names = [k.name for k in self.knobs]
        # itertools.product varies the *last* knob fastest; combined with the
        # ascending knob values this yields a deterministic lexicographic
        # order from "everything minimal" to "everything maximal".
        for combo in itertools.product(*(k.values for k in self.knobs)):
            cfg = SystemConfig.from_mapping(dict(zip(names, combo)))
            if self.constraint is None or self.constraint(cfg):
                yield cfg

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self) -> Iterator[SystemConfig]:
        return iter(self._configs)

    def __contains__(self, config: SystemConfig) -> bool:
        return config in self._index

    def __getitem__(self, i: int) -> SystemConfig:
        return self._configs[i]

    def index_of(self, config: SystemConfig) -> int:
        """Return the enumeration index of ``config``."""
        try:
            return self._index[config]
        except KeyError:
            raise ValueError(f"{config!r} is not in this space") from None

    # -- named configurations ------------------------------------------------
    @property
    def minimal(self) -> SystemConfig:
        """Single slowest unit of every resource (paper's lowest index)."""
        return self.linearized()[0]

    @property
    def maximal(self) -> SystemConfig:
        """All resources at their highest setting (the *default* config)."""
        return self.linearized()[-1]

    def knob(self, name: str) -> Knob:
        for k in self.knobs:
            if k.name == name:
                return k
        raise KeyError(name)

    def validate(self, config: SystemConfig) -> None:
        validate_config(self.knobs, config)
        if self.constraint is not None and not self.constraint(config):
            raise ValueError(f"{config!r} violates the machine constraint")

    # -- linearization (Fig. 3 x-axis) ---------------------------------------
    def resource_level(self, config: SystemConfig) -> float:
        """Scalar "how much resource" measure in [0, 1].

        Mean of each knob's normalized ordinal position.  Monotone in every
        knob, so the minimal config maps to 0 and the maximal to 1.
        """
        positions = [
            normalized_position(k, config[k.name]) for k in self.knobs
        ]
        return sum(positions) / len(positions)

    def linearized(self) -> List[SystemConfig]:
        """Configs sorted by resource level (ties broken lexicographically).

        Reproduces the configuration-index axis of the paper's Fig. 3: the
        first entry is the minimal config, the last the machine default.
        """
        return sorted(
            self._configs,
            key=lambda c: (self.resource_level(c), c.settings),
        )

    def neighbors(self, config: SystemConfig) -> List[SystemConfig]:
        """Configs reachable by moving one knob one step (legal ones only).

        Not used by the bandit itself (which may jump anywhere) but handy
        for local-search baselines and for tests of the space topology.
        """
        result = []
        for k in self.knobs:
            i = k.index_of(config[k.name])
            for j in (i - 1, i + 1):
                if 0 <= j < len(k):
                    candidate = config.replace(**{k.name: k.values[j]})
                    if self.constraint is None or self.constraint(candidate):
                        result.append(candidate)
        return result
