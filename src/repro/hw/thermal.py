"""Thermal model with throttling: heat is the other resource budget.

Power produces heat; package temperature follows a first-order RC
model::

    T(t+dt) = T + dt/C · (P_package − (T − T_ambient)/R)

When the temperature crosses the throttle threshold, the platform
reduces its delivered performance (firmware DVFS throttling), which the
runtime experiences as yet another unmodeled disturbance its feedback
must absorb.  Attach a :class:`ThermalModel` to a
:class:`~repro.hw.simulator.PlatformSimulator` via
:func:`attach_thermal_model`; the integration tests drive JouleGuard
against a throttling platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .simulator import PlatformSimulator


@dataclass
class ThermalModel:
    """First-order package thermal model with proportional throttling.

    Parameters
    ----------
    ambient_c:
        Ambient temperature.
    thermal_resistance_c_per_w:
        Steady-state °C rise per Watt of package power.
    time_constant_s:
        RC time constant of the package + heatsink.
    throttle_threshold_c:
        Temperature at which throttling engages.
    critical_c:
        Temperature of maximum throttling; delivered performance scales
        linearly from 1.0 at the threshold to ``min_throttle`` here.
    min_throttle:
        Performance floor under full throttling (> 0).
    """

    ambient_c: float = 25.0
    thermal_resistance_c_per_w: float = 0.5
    time_constant_s: float = 10.0
    throttle_threshold_c: float = 85.0
    critical_c: float = 105.0
    min_throttle: float = 0.3
    temperature_c: float = field(default=25.0)

    def __post_init__(self) -> None:
        if self.time_constant_s <= 0:
            raise ValueError("time constant must be positive")
        if self.thermal_resistance_c_per_w <= 0:
            raise ValueError("thermal resistance must be positive")
        if self.critical_c <= self.throttle_threshold_c:
            raise ValueError("critical must exceed the throttle threshold")
        if not 0.0 < self.min_throttle <= 1.0:
            raise ValueError("min_throttle must be in (0, 1]")

    def advance(self, package_power_w: float, dt_s: float) -> float:
        """Integrate the thermal state over ``dt_s``; return temperature.

        Uses the exact exponential solution of the linear model so large
        iteration times remain stable.
        """
        if package_power_w < 0 or dt_s < 0:
            raise ValueError("power and time must be non-negative")
        import math

        steady = (
            self.ambient_c
            + package_power_w * self.thermal_resistance_c_per_w
        )
        decay = math.exp(-dt_s / self.time_constant_s)
        self.temperature_c = steady + (self.temperature_c - steady) * decay
        return self.temperature_c

    @property
    def throttle_factor(self) -> float:
        """Delivered-performance multiplier at the current temperature."""
        if self.temperature_c <= self.throttle_threshold_c:
            return 1.0
        span = self.critical_c - self.throttle_threshold_c
        overshoot = min(
            self.temperature_c - self.throttle_threshold_c, span
        )
        return 1.0 - (1.0 - self.min_throttle) * (overshoot / span)

    @property
    def throttling(self) -> bool:
        return self.temperature_c > self.throttle_threshold_c

    def steady_state_c(self, package_power_w: float) -> float:
        """Equilibrium temperature at constant package power."""
        return (
            self.ambient_c
            + package_power_w * self.thermal_resistance_c_per_w
        )


def attach_thermal_model(
    simulator: PlatformSimulator, model: ThermalModel
) -> ThermalModel:
    """Couple a thermal model to a simulator as a rate disturbance.

    The disturbance reads the model's current throttle factor; the model
    itself is advanced after each iteration from the iteration's package
    power and duration (a monkeypatch-free wrapper around
    ``run_iteration``).
    """
    simulator.add_disturbance(lambda t: model.throttle_factor)
    original = simulator.run_iteration

    def run_iteration(*args, **kwargs):
        result = original(*args, **kwargs)
        package = result.true_power_w - simulator.machine.external_w
        model.advance(max(package, 0.0), result.time_s)
        return result

    simulator.run_iteration = run_iteration  # type: ignore[method-assign]
    return model
