"""Power/energy measurement: noisy on-chip sensors + slow external meter.

The paper's feedback pipeline (Sec. 4.2) combines fast on-chip power
meters (INA-231 sensors on Mobile, RAPL-style registers on the Intel
platforms, millisecond granularity) with a slow external wall-power meter
(1 s granularity) used only to verify whole-run energy.  The on-chip
meters miss rest-of-system power, so a fixed constant is added to them.

This module reproduces that pipeline over the simulator's ground-truth
power: :class:`OnChipPowerSensor` quantizes and perturbs package power and
adds the fixed offset; :class:`ExternalPowerMeter` integrates true energy
but only exposes it at coarse sample boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class OnChipPowerSensor:
    """Fast, slightly wrong: quantized + noisy package power, fixed offset.

    Parameters
    ----------
    fixed_offset_w:
        Constant added to every reading to account for rest-of-system
        power the on-chip meter cannot see (Sec. 4.2).
    quantum_w:
        Reading resolution in Watts (INA-231 registers are quantized).
    noise_rel:
        Standard deviation of multiplicative Gaussian reading noise.
    rng:
        Numpy generator; pass a seeded one for reproducible runs.
    """

    fixed_offset_w: float = 0.0
    quantum_w: float = 0.005
    noise_rel: float = 0.01
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def read(self, true_package_power_w: float) -> float:
        """Return one sensor reading for the given true package power."""
        if true_package_power_w < 0:
            raise ValueError("power cannot be negative")
        noisy = true_package_power_w * (
            1.0 + self.rng.normal(0.0, self.noise_rel)
        )
        noisy = max(0.0, noisy)
        if self.quantum_w > 0:
            noisy = round(noisy / self.quantum_w) * self.quantum_w
        return noisy + self.fixed_offset_w


@dataclass
class ExternalPowerMeter:
    """Slow but truthful: integrates real energy at coarse sample points.

    The meter accumulates true energy continuously but only *reports* at
    multiples of ``sample_period_s`` — mirroring the paper's 1 s external
    meter, "too slow to provide dynamic feedback" but good for verifying
    total energy over a run.
    """

    sample_period_s: float = 1.0
    _true_energy_j: float = 0.0
    _reported_energy_j: float = 0.0
    _clock_s: float = 0.0
    _next_sample_s: float = field(init=False)

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        self._next_sample_s = self.sample_period_s

    def accumulate(self, power_w: float, duration_s: float) -> None:
        """Record ``duration_s`` seconds of draw at ``power_w`` Watts."""
        if duration_s < 0 or power_w < 0:
            raise ValueError("power and duration must be non-negative")
        self._true_energy_j += power_w * duration_s
        self._clock_s += duration_s
        while self._clock_s >= self._next_sample_s:
            self._reported_energy_j = self._true_energy_j
            self._next_sample_s += self.sample_period_s

    @property
    def reported_energy_j(self) -> float:
        """Energy as of the last completed sample boundary."""
        return self._reported_energy_j

    @property
    def true_energy_j(self) -> float:
        """Ground-truth integrated energy (for verification in tests)."""
        return self._true_energy_j
