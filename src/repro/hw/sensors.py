"""Power/energy measurement: noisy on-chip sensors + slow external meter.

The paper's feedback pipeline (Sec. 4.2) combines fast on-chip power
meters (INA-231 sensors on Mobile, RAPL-style registers on the Intel
platforms, millisecond granularity) with a slow external wall-power meter
(1 s granularity) used only to verify whole-run energy.  The on-chip
meters miss rest-of-system power, so a fixed constant is added to them.

This module reproduces that pipeline over the simulator's ground-truth
power: :class:`OnChipPowerSensor` quantizes and perturbs package power and
adds the fixed offset; :class:`ExternalPowerMeter` integrates true energy
but only exposes it at coarse sample boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..core.ewma import Ewma


class SensorReadError(RuntimeError):
    """A sensor could not produce a reading (dropout, bus error, ...)."""


class SensorLostError(SensorReadError):
    """A sensor has failed persistently; hold-over is no longer safe."""


@runtime_checkable
class PowerSensorLike(Protocol):
    """Anything that turns true package power into one reading."""

    def read(self, true_package_power_w: float) -> float: ...


#: Root seed sequence for sensors constructed without an explicit rng.
#: Each default-constructed sensor spawns its own child stream, so two
#: sensors never share (and therefore never replay) one noise stream —
#: the regression behind requiring this was two default sensors
#: producing byte-identical noise via a shared ``default_rng(0)``.
_DEFAULT_SENSOR_SEEDS = np.random.SeedSequence(20151005)


def _spawn_sensor_rng() -> np.random.Generator:
    return np.random.default_rng(_DEFAULT_SENSOR_SEEDS.spawn(1)[0])


@dataclass
class OnChipPowerSensor:
    """Fast, slightly wrong: quantized + noisy package power, fixed offset.

    Parameters
    ----------
    fixed_offset_w:
        Constant added to every reading to account for rest-of-system
        power the on-chip meter cannot see (Sec. 4.2).
    quantum_w:
        Reading resolution in Watts (INA-231 registers are quantized).
    noise_rel:
        Standard deviation of multiplicative Gaussian reading noise.
    rng:
        Numpy generator; pass a seeded one for reproducible runs.  When
        omitted, a distinct stream is spawned from a module-level
        :class:`~numpy.random.SeedSequence` — deterministic per process
        but never shared between sensors.
    """

    fixed_offset_w: float = 0.0
    quantum_w: float = 0.005
    noise_rel: float = 0.01
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = _spawn_sensor_rng()

    def read(self, true_package_power_w: float) -> float:
        """Return one sensor reading for the given true package power."""
        if true_package_power_w < 0:
            raise ValueError("power cannot be negative")
        assert self.rng is not None  # set by __post_init__
        noisy = true_package_power_w * (
            1.0 + self.rng.normal(0.0, self.noise_rel)
        )
        noisy = max(0.0, noisy)
        if self.quantum_w > 0:
            noisy = round(noisy / self.quantum_w) * self.quantum_w
        return noisy + self.fixed_offset_w


@dataclass
class HoldoverPowerSensor:
    """Last-good-value + EWMA hold-over around an unreliable sensor.

    Wraps any :class:`PowerSensorLike`.  Good readings pass through
    unchanged while feeding an EWMA of recent values; when the inner
    sensor raises :class:`SensorReadError` (dropout, bus error, an
    injected fault), the wrapper *holds over* — it answers with the
    EWMA estimate instead of propagating the failure, so one missed
    register read does not stall the control loop (the paper's loop
    needs feedback every iteration, Sec. 4.2).

    Hold-over is only safe transiently: after ``max_consecutive_holds``
    failures in a row the sensor is declared lost and
    :class:`SensorLostError` is raised, which upstream layers treat as
    "degrade gracefully" (see ``repro.service.sessions``).

    Parameters
    ----------
    inner:
        The wrapped sensor.
    alpha:
        EWMA weight of each new good reading (Eqn. 1 convention: the
        weight of the *new* sample).
    max_consecutive_holds:
        Consecutive failed reads tolerated before declaring loss.
    """

    inner: PowerSensorLike
    alpha: float = 0.3
    max_consecutive_holds: int = 10
    holds: int = 0
    consecutive_holds: int = 0
    _estimate: Ewma = field(init=False)

    def __post_init__(self) -> None:
        if self.max_consecutive_holds < 1:
            raise ValueError("max_consecutive_holds must be >= 1")
        self._estimate = Ewma(alpha=self.alpha)

    def read(self, true_package_power_w: float) -> float:
        """One reading: the inner sensor's value, or the held estimate."""
        try:
            value = self.inner.read(true_package_power_w)
        except SensorLostError:
            raise
        except SensorReadError:
            if not self._estimate.initialized:
                raise SensorLostError(
                    "sensor failed before producing any reading"
                ) from None
            self.holds += 1
            self.consecutive_holds += 1
            if self.consecutive_holds > self.max_consecutive_holds:
                raise SensorLostError(
                    f"{self.consecutive_holds} consecutive failed "
                    "reads; hold-over is no longer trustworthy"
                ) from None
            return self._estimate.hold()
        self.consecutive_holds = 0
        self._estimate.update(value)
        return value

    @property
    def estimate(self) -> Optional[float]:
        """The current hold-over estimate (None before any good read)."""
        return self._estimate.value


@dataclass
class ExternalPowerMeter:
    """Slow but truthful: integrates real energy at coarse sample points.

    The meter accumulates true energy continuously but only *reports* at
    multiples of ``sample_period_s`` — mirroring the paper's 1 s external
    meter, "too slow to provide dynamic feedback" but good for verifying
    total energy over a run.
    """

    sample_period_s: float = 1.0
    _true_energy_j: float = 0.0
    _reported_energy_j: float = 0.0
    _clock_s: float = 0.0
    _next_sample_s: float = field(init=False)

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        self._next_sample_s = self.sample_period_s

    def accumulate(self, power_w: float, duration_s: float) -> None:
        """Record ``duration_s`` seconds of draw at ``power_w`` Watts."""
        if duration_s < 0 or power_w < 0:
            raise ValueError("power and duration must be non-negative")
        self._true_energy_j += power_w * duration_s
        self._clock_s += duration_s
        while self._clock_s >= self._next_sample_s:
            self._reported_energy_j = self._true_energy_j
            self._next_sample_s += self.sample_period_s

    @property
    def reported_energy_j(self) -> float:
        """Energy as of the last completed sample boundary."""
        return self._reported_energy_j

    @property
    def true_energy_j(self) -> float:
        """Ground-truth integrated energy (for verification in tests)."""
        return self._true_energy_j
