"""Save and load machine descriptions.

Custom platforms (see ``examples/custom_platform.py``) are plain data —
knobs, clusters, electrical constants — and deserve to live in version-
controlled JSON rather than Python.  Two parts of a
:class:`~repro.hw.machine.Machine` are *behaviour*, not data, and are
handled through named registries: configuration-space constraints and
firmware speed quirks.  The built-in names cover the paper's platforms;
users can register their own via :func:`register_constraint` /
:func:`register_speed_quirk` before loading.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Optional, Union

from .config_space import ConfigSpace, Constraint
from .knobs import Knob, SystemConfig
from .machine import Cluster, Machine
from .machines import _mobile_constraint, _tablet_speed_quirk

PathLike = Union[str, pathlib.Path]

SCHEMA_VERSION = 1

SpeedQuirk = Callable[[str, float], float]

_CONSTRAINTS: Dict[str, Constraint] = {
    "mobile_cluster_exclusive": _mobile_constraint,
}
_SPEED_QUIRKS: Dict[str, SpeedQuirk] = {
    "tablet_firmware_plateau": _tablet_speed_quirk,
}


def register_constraint(name: str, constraint: Constraint) -> None:
    """Register a named configuration-space constraint for loading."""
    if name in _CONSTRAINTS:
        raise ValueError(f"constraint {name!r} already registered")
    _CONSTRAINTS[name] = constraint


def register_speed_quirk(name: str, quirk: SpeedQuirk) -> None:
    """Register a named firmware speed quirk for loading."""
    if name in _SPEED_QUIRKS:
        raise ValueError(f"speed quirk {name!r} already registered")
    _SPEED_QUIRKS[name] = quirk


def _behaviour_name(registry: Dict, func) -> Optional[str]:
    for name, registered in registry.items():
        if registered is func:
            return name
    return None


def machine_to_dict(machine: Machine) -> dict:
    """JSON-ready description of a machine.

    Raises ``ValueError`` when the machine uses an unregistered
    constraint or speed quirk (behaviour cannot be serialized).
    """
    constraint = machine.space.constraint
    constraint_name = None
    if constraint is not None:
        constraint_name = _behaviour_name(_CONSTRAINTS, constraint)
        if constraint_name is None:
            raise ValueError(
                "machine uses an unregistered constraint; call "
                "register_constraint first"
            )
    quirk_name = None
    if machine.effective_speed is not None:
        quirk_name = _behaviour_name(_SPEED_QUIRKS, machine.effective_speed)
        if quirk_name is None:
            raise ValueError(
                "machine uses an unregistered speed quirk; call "
                "register_speed_quirk first"
            )
    return {
        "schema": SCHEMA_VERSION,
        "name": machine.name,
        "knobs": [
            {"name": k.name, "values": list(k.values)}
            for k in machine.space.knobs
        ],
        "constraint": constraint_name,
        "clusters": [
            {
                "name": c.name,
                "cores_knob": c.cores_knob,
                "speed_knob": c.speed_knob,
                "perf_per_ghz": c.perf_per_ghz,
                "leak_w": c.leak_w,
                "dyn_w_per_ghz3": c.dyn_w_per_ghz3,
            }
            for c in machine.clusters
        ],
        "idle_w": machine.idle_w,
        "external_w": machine.external_w,
        "ht_knob": machine.ht_knob,
        "memctrl_knob": machine.memctrl_knob,
        "ht_effectiveness": machine.ht_effectiveness,
        "ht_power_w": machine.ht_power_w,
        "memctrl_power_w": machine.memctrl_power_w,
        "bandwidth_per_ctrl": machine.bandwidth_per_ctrl,
        "bandwidth_thrash": machine.bandwidth_thrash,
        "speed_quirk": quirk_name,
        "turbo_power_w_per_ghz": machine.turbo_power_w_per_ghz,
        "turbo_knee_ghz": (
            None
            if machine.turbo_knee_ghz == float("inf")
            else machine.turbo_knee_ghz
        ),
    }


def machine_from_dict(data: dict) -> Machine:
    """Inverse of :func:`machine_to_dict`."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported machine schema {data.get('schema')!r}")
    constraint = None
    if data["constraint"] is not None:
        try:
            constraint = _CONSTRAINTS[data["constraint"]]
        except KeyError:
            raise ValueError(
                f"unknown constraint {data['constraint']!r}; register it "
                "before loading"
            ) from None
    quirk = None
    if data["speed_quirk"] is not None:
        try:
            quirk = _SPEED_QUIRKS[data["speed_quirk"]]
        except KeyError:
            raise ValueError(
                f"unknown speed quirk {data['speed_quirk']!r}; register "
                "it before loading"
            ) from None
    space = ConfigSpace(
        knobs=[
            Knob(entry["name"], tuple(entry["values"]))
            for entry in data["knobs"]
        ],
        constraint=constraint,
    )
    return Machine(
        name=data["name"],
        space=space,
        clusters=tuple(
            Cluster(**entry) for entry in data["clusters"]
        ),
        idle_w=data["idle_w"],
        external_w=data["external_w"],
        ht_knob=data["ht_knob"],
        memctrl_knob=data["memctrl_knob"],
        ht_effectiveness=data["ht_effectiveness"],
        ht_power_w=data["ht_power_w"],
        memctrl_power_w=data["memctrl_power_w"],
        bandwidth_per_ctrl=data["bandwidth_per_ctrl"],
        bandwidth_thrash=data["bandwidth_thrash"],
        effective_speed=quirk,
        turbo_power_w_per_ghz=data["turbo_power_w_per_ghz"],
        turbo_knee_ghz=(
            float("inf")
            if data["turbo_knee_ghz"] is None
            else data["turbo_knee_ghz"]
        ),
    )


def save_machine(machine: Machine, path: PathLike) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(machine_to_dict(machine), indent=2) + "\n")
    return path


def load_machine(path: PathLike) -> Machine:
    return machine_from_dict(json.loads(pathlib.Path(path).read_text()))
