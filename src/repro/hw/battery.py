"""Battery model: the paper's motivating budget in physical form.

"Few mobile users want to minimize energy — they need guarantees that
their battery will last until they return to a charger" (Sec. 1).  A
:class:`Battery` turns that story into numbers: capacity, a usable-
energy derating from discharge efficiency, a state-of-charge gauge with
quantized reporting (fuel gauges are coarse), and a cutoff.

:func:`goal_for_deadline` converts "this charge must last until t" into
the :class:`~repro.core.budget.EnergyGoal` JouleGuard consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.budget import EnergyGoal


@dataclass
class Battery:
    """Simple energy-reservoir battery with gauge quantization.

    Parameters
    ----------
    capacity_j:
        Nominal full-charge energy (a phone battery at ~12 Wh is
        ~43 kJ).
    discharge_efficiency:
        Fraction of nominal energy actually deliverable to the load
        (conversion losses, voltage sag); the usable budget is
        ``capacity × efficiency``.
    cutoff_fraction:
        State of charge at which the device shuts down (batteries are
        never drained to zero).
    gauge_resolution:
        Reporting granularity of the fuel gauge (0.01 = whole percent).
    """

    capacity_j: float
    discharge_efficiency: float = 0.92
    cutoff_fraction: float = 0.03
    gauge_resolution: float = 0.01
    consumed_j: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.discharge_efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if not 0.0 <= self.cutoff_fraction < 1.0:
            raise ValueError("cutoff must be in [0, 1)")
        if not 0.0 < self.gauge_resolution <= 1.0:
            raise ValueError("gauge resolution must be in (0, 1]")

    @property
    def usable_j(self) -> float:
        """Energy deliverable from full charge down to the cutoff."""
        return (
            self.capacity_j
            * self.discharge_efficiency
            * (1.0 - self.cutoff_fraction)
        )

    @property
    def remaining_j(self) -> float:
        return max(0.0, self.usable_j - self.consumed_j)

    @property
    def state_of_charge(self) -> float:
        """Exact state of charge in [0, 1] of usable energy."""
        return self.remaining_j / self.usable_j

    @property
    def gauge(self) -> float:
        """Quantized state of charge, as a fuel gauge would report it."""
        steps = round(self.state_of_charge / self.gauge_resolution)
        return min(1.0, steps * self.gauge_resolution)

    @property
    def dead(self) -> bool:
        return self.remaining_j <= 0.0

    def drain(self, energy_j: float) -> bool:
        """Consume energy; returns False once the battery is dead."""
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        self.consumed_j += energy_j
        return not self.dead


def goal_for_deadline(
    battery: Battery,
    work_rate_per_s: float,
    seconds_to_charger: float,
    reserve_fraction: float = 0.0,
) -> EnergyGoal:
    """Budget the remaining charge over the work until the charger.

    ``work_rate_per_s`` is how fast work arrives (frames/s the user
    expects); the goal covers ``rate × deadline`` work units with the
    battery's remaining usable energy, minus an optional reserve.
    """
    if work_rate_per_s <= 0 or seconds_to_charger <= 0:
        raise ValueError("rate and deadline must be positive")
    if not 0.0 <= reserve_fraction < 1.0:
        raise ValueError("reserve must be in [0, 1)")
    budget = battery.remaining_j * (1.0 - reserve_fraction)
    if budget <= 0:
        raise ValueError("battery is already dead")
    return EnergyGoal(
        total_work=work_rate_per_s * seconds_to_charger,
        budget_j=budget,
    )
