"""Vectorized per-machine power/performance tables and noise banks.

The fleet engine (:mod:`repro.fleet`) synthesizes measurements for
thousands of devices per step, so it cannot afford one
:func:`~repro.hw.speedup_model.work_rate` call per device per step.
:class:`MachineTables` precomputes the scalar models once per machine
shape into dense per-configuration arrays — the scalar functions stay
the single source of truth; the tables are a cache, verified
element-for-element against them in the tests.

Index convention: position ``i`` corresponds to ``machine.space[i]``
(the enumeration order that :func:`repro.runtime.harness.prior_shapes`
and the SEO share), **not** ``ConfigSpace.linearized()``.

:class:`Ar1NoiseBank` is the vector twin of
:class:`~repro.hw.simulator.NoiseModel`: one independent AR(1)
lognormal chain per device, stepped for the whole bank with two
pooled normal draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.contracts import check
from .machine import Machine
from .power_model import package_power
from .profiles import AppResourceProfile
from .speedup_model import work_rate

__all__ = ["Ar1NoiseBank", "MachineTables"]


@dataclass(frozen=True)
class MachineTables:
    """Dense per-configuration model tables for one machine shape.

    Parameters
    ----------
    machine_name:
        The shape the tables were built from (Table 3 name).
    base_rate:
        ``work_rate(machine, space[i], profile)`` per configuration.
    package_power_w:
        ``package_power(machine, space[i], profile)`` per configuration.
    external_w:
        The machine's rest-of-system constant draw; ``system_power``
        is ``package_power_w + external_w`` by construction.
    """

    machine_name: str
    base_rate: np.ndarray
    package_power_w: np.ndarray
    external_w: float

    @property
    def n_configs(self) -> int:
        return int(self.base_rate.shape[0])

    @property
    def system_power_w(self) -> np.ndarray:
        """Full-system power per configuration (package + external)."""
        result: np.ndarray = self.package_power_w + self.external_w
        return result

    @classmethod
    def build(
        cls, machine: Machine, profile: AppResourceProfile
    ) -> "MachineTables":
        """Evaluate the scalar models over the whole config space."""
        rates = np.empty(len(machine.space), dtype=np.float64)
        powers = np.empty(len(machine.space), dtype=np.float64)
        for i, config in enumerate(machine.space):
            rates[i] = work_rate(machine, config, profile)
            powers[i] = package_power(machine, config, profile)
        rates.setflags(write=False)
        powers.setflags(write=False)
        return cls(
            machine_name=machine.name,
            base_rate=rates,
            package_power_w=powers,
            external_w=machine.external_w,
        )


class Ar1NoiseBank:
    """Independent AR(1) lognormal noise chains, one row per device.

    Each row follows the same process as
    :class:`~repro.hw.simulator.NoiseModel`::

        state = corr * state + N(0, sigma * sqrt(1 - corr**2))
        mult  = exp(state)

    but the whole bank advances with two pooled normal draws per step,
    so stepping 100k devices costs two ``standard_normal(n)`` calls.
    """

    def __init__(
        self,
        n: int,
        sigma_rate: float = 0.05,
        sigma_power: float = 0.02,
        correlation: float = 0.6,
        seed: int = 0,
    ) -> None:
        check(n >= 0, "bank size cannot be negative")
        check(
            sigma_rate >= 0 and sigma_power >= 0,
            "noise magnitudes cannot be negative",
        )
        check(0.0 <= correlation < 1.0, "correlation must be in [0, 1)")
        self.sigma_rate = sigma_rate
        self.sigma_power = sigma_power
        self.correlation = correlation
        self._innovation = math.sqrt(1.0 - correlation**2)
        self._rng = np.random.default_rng(seed)
        self._rate_state = np.zeros(n, dtype=np.float64)
        self._power_state = np.zeros(n, dtype=np.float64)

    @property
    def n(self) -> int:
        return int(self._rate_state.shape[0])

    def extend(self, k: int) -> None:
        """Append ``k`` fresh chains starting at the neutral state."""
        check(k >= 0, "cannot extend by a negative count")
        self._rate_state = np.concatenate(
            [self._rate_state, np.zeros(k, dtype=np.float64)]
        )
        self._power_state = np.concatenate(
            [self._power_state, np.zeros(k, dtype=np.float64)]
        )

    def keep(self, mask: np.ndarray) -> None:
        """Drop chains where ``mask`` is False (pool compaction)."""
        keep = np.asarray(mask, dtype=bool)
        self._rate_state = self._rate_state[keep]
        self._power_state = self._power_state[keep]

    def sample(
        self, mask: Optional[np.ndarray] = None
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Advance every (masked) chain; return (rate, power) factors.

        Rows outside the mask keep their state and report the neutral
        factor 1.0.  The pooled draws are consumed for all rows either
        way, so a fixed-capacity bank replays the same stream
        regardless of which rows are currently live.
        """
        n = self.n
        rate_innov = self._rng.standard_normal(n)
        power_innov = self._rng.standard_normal(n)
        new_rate = (
            self.correlation * self._rate_state
            + self.sigma_rate * self._innovation * rate_innov
        )
        new_power = (
            self.correlation * self._power_state
            + self.sigma_power * self._innovation * power_innov
        )
        if mask is None:
            self._rate_state = new_rate
            self._power_state = new_power
            return np.exp(new_rate), np.exp(new_power)
        rows = np.asarray(mask, dtype=bool)
        self._rate_state = np.where(rows, new_rate, self._rate_state)
        self._power_state = np.where(rows, new_power, self._power_state)
        ones = np.ones(n, dtype=np.float64)
        return (
            np.where(rows, np.exp(new_rate), ones),
            np.where(rows, np.exp(new_power), ones),
        )
