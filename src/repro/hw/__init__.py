"""Hardware substrate: platforms, power/performance models, sensors.

Stands in for the paper's physical testbed (Sec. 4.2): three platforms
with discrete configuration spaces, analytic power and speedup models,
noisy sensors, and a virtual-time simulator.
"""

from .battery import Battery, goal_for_deadline
from .config_space import ConfigSpace
from .idle import (
    PolicyOutcome,
    RacePaceComparison,
    best_hybrid,
    best_pace,
    compare_policies,
    idle_power,
    race_to_idle,
)
from .knobs import Knob, SystemConfig
from .machine import Cluster, Machine
from .machines import (
    all_machines,
    build_mobile,
    build_server,
    build_tablet,
    get_machine,
)
from .power_model import package_power, powerup_over_minimal, system_power
from .profiles import GENERIC_PROFILE, AppResourceProfile
from .sensors import (
    ExternalPowerMeter,
    HoldoverPowerSensor,
    OnChipPowerSensor,
    PowerSensorLike,
    SensorLostError,
    SensorReadError,
)
from .serialize import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    register_constraint,
    register_speed_quirk,
    save_machine,
)
from .simulator import IterationResult, NoiseModel, PlatformSimulator
from .speedup_model import speedup_over_minimal, work_rate
from .thermal import ThermalModel, attach_thermal_model
from .vector import Ar1NoiseBank, MachineTables

__all__ = [
    "AppResourceProfile",
    "Ar1NoiseBank",
    "Battery",
    "Cluster",
    "ConfigSpace",
    "ExternalPowerMeter",
    "GENERIC_PROFILE",
    "HoldoverPowerSensor",
    "IterationResult",
    "Knob",
    "Machine",
    "MachineTables",
    "NoiseModel",
    "OnChipPowerSensor",
    "PlatformSimulator",
    "PolicyOutcome",
    "PowerSensorLike",
    "RacePaceComparison",
    "SensorLostError",
    "SensorReadError",
    "SystemConfig",
    "ThermalModel",
    "all_machines",
    "attach_thermal_model",
    "best_hybrid",
    "best_pace",
    "compare_policies",
    "goal_for_deadline",
    "idle_power",
    "load_machine",
    "machine_from_dict",
    "machine_to_dict",
    "race_to_idle",
    "register_constraint",
    "register_speed_quirk",
    "save_machine",
    "build_mobile",
    "build_server",
    "build_tablet",
    "get_machine",
    "package_power",
    "powerup_over_minimal",
    "speedup_over_minimal",
    "system_power",
    "work_rate",
]
