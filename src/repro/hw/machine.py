"""Machine description: clusters, knobs, and electrical constants.

A :class:`Machine` bundles a configuration space with the physical
parameters needed by the performance model (:mod:`repro.hw.speedup_model`)
and the power model (:mod:`repro.hw.power_model`).  The three platforms of
the paper (Mobile / Tablet / Server, Table 3) are built from these pieces
in :mod:`repro.hw.machines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from .config_space import ConfigSpace
from .knobs import SystemConfig


@dataclass(frozen=True)
class Cluster:
    """One group of identical cores sharing a clock domain.

    Homogeneous machines have a single cluster; the Mobile platform's
    big.LITTLE processor has two (Cortex-A15 "big" and Cortex-A7 "LITTLE").

    Parameters
    ----------
    name:
        Cluster identifier.
    cores_knob:
        Name of the knob giving the number of active cores (0 allowed on
        multi-cluster machines).
    speed_knob:
        Name of the knob giving the cluster clock in GHz.
    perf_per_ghz:
        Single-core throughput, relative to the reference core, at 1 GHz.
    leak_w:
        Static power per active core in Watts.
    dyn_w_per_ghz3:
        Dynamic power per active core in Watts per GHz cubed (the paper's
        Sec. 3.2 prior: power grows cubically with clock speed).
    """

    name: str
    cores_knob: str
    speed_knob: str
    perf_per_ghz: float
    leak_w: float
    dyn_w_per_ghz3: float


@dataclass(frozen=True)
class Machine:
    """A complete platform: knob space plus electrical parameters.

    Parameters
    ----------
    name:
        Platform name ("mobile", "tablet", "server").
    space:
        Legal system configurations.
    clusters:
        Core clusters (at least one).
    idle_w:
        Processor-package idle power.
    external_w:
        Constant rest-of-system power (display, DRAM, disks, VRMs…).  The
        paper adds a fixed constant to the on-chip meters for the same
        reason (Sec. 4.2).
    ht_knob:
        Optional knob name: 1 = hyperthreading off, 2 = on.
    memctrl_knob:
        Optional knob name giving the number of active memory controllers.
    ht_effectiveness:
        Machine scaling of an application's ``ht_gain`` in [0, 1].
    ht_power_w:
        Additional power per active core when hyperthreading is enabled.
    memctrl_power_w:
        Power per active memory controller beyond the first.
    bandwidth_per_ctrl:
        Memory bandwidth per controller in "reference cores worth of
        fully memory-bound demand" — drives saturation (Sec. 4.3's
        multi-modal ferret landscape on Server).
    bandwidth_thrash:
        Queueing/contention penalty when demand exceeds bandwidth supply:
        delivered bandwidth degrades as ``supply / (1 + thrash * excess)``.
        Nonzero values let an oversubscribed default configuration run
        *slower* than a leaner one, as the paper observes for ferret on
        Server (Sec. 5.5).
    effective_speed:
        Optional quirk hook mapping a nominal clock to the clock the
        firmware actually delivers (the Tablet exposes 8 settings but most
        behave identically, Sec. 4.3).
    turbo_power_w_per_ghz:
        Extra dynamic power per core per GHz above ``turbo_knee_ghz``
        (models TurboBoost's disproportionate cost, making the Server's
        default configuration wasteful as observed in Sec. 4.3).
    turbo_knee_ghz:
        Clock above which the turbo penalty applies.
    """

    name: str
    space: ConfigSpace
    clusters: Tuple[Cluster, ...]
    idle_w: float
    external_w: float
    ht_knob: Optional[str] = None
    memctrl_knob: Optional[str] = None
    ht_effectiveness: float = 1.0
    ht_power_w: float = 0.0
    memctrl_power_w: float = 0.0
    bandwidth_per_ctrl: float = 8.0
    bandwidth_thrash: float = 0.0
    effective_speed: Optional[Callable[[str, float], float]] = None
    turbo_power_w_per_ghz: float = 0.0
    turbo_knee_ghz: float = float("inf")

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("a machine needs at least one cluster")
        knob_names = {k.name for k in self.space.knobs}
        for cluster in self.clusters:
            for needed in (cluster.cores_knob, cluster.speed_knob):
                if needed not in knob_names:
                    raise ValueError(
                        f"cluster {cluster.name!r} references unknown knob "
                        f"{needed!r}"
                    )
        for optional in (self.ht_knob, self.memctrl_knob):
            if optional is not None and optional not in knob_names:
                raise ValueError(f"unknown knob {optional!r}")

    # -- config helpers ------------------------------------------------------
    @property
    def default_config(self) -> SystemConfig:
        """The out-of-the-box configuration: everything maxed (Sec. 4.3)."""
        return self.space.maximal

    def active_cores(self, config: SystemConfig) -> int:
        """Total active cores across clusters (hyperthreads not counted)."""
        return int(sum(config[c.cores_knob] for c in self.clusters))

    def cluster_speed(self, cluster: Cluster, config: SystemConfig) -> float:
        """Effective clock of ``cluster``, after any firmware quirk."""
        nominal = config[cluster.speed_knob]
        if self.effective_speed is not None:
            return self.effective_speed(cluster.name, nominal)
        return nominal

    def hyperthreading_on(self, config: SystemConfig) -> bool:
        return self.ht_knob is not None and config[self.ht_knob] >= 2

    def memory_controllers(self, config: SystemConfig) -> int:
        if self.memctrl_knob is None:
            return 1
        return int(config[self.memctrl_knob])
