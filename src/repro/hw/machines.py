"""The paper's three evaluation platforms (Table 3, Sec. 4.2–4.3).

* ``mobile`` — ODROID-XU3-like big.LITTLE: 4 Cortex-A15 "big" cores with
  19 clock settings and 4 Cortex-A7 "LITTLE" cores with 13 clock settings.
  The application is pinned to one cluster at a time (cluster-exclusive),
  giving 128 configurations.  Big cores burn far more power per unit of
  work, so the most efficient configurations live on the LITTLE cluster —
  the learner must "move off the big cores" (Sec. 4.3).
* ``tablet`` — Core i5-4210Y-like: 2 cores, hyperthreading, 8 nominal
  clock settings of which the firmware only honours 4 distinct speeds
  (Sec. 4.3: "many of the clockspeed settings appear to produce the same
  energy efficiency").  Idle power is a large share of total power, so
  peak efficiency sits at the default (maximal) configuration.
* ``server`` — dual Xeon E5-2690-like: 16 cores, 16 clock settings, a
  turbo region with disproportionate power cost, hyperthreading, and 2
  memory controllers.  1024 configurations; each application has its own
  efficiency peak and the default is wasteful (Sec. 4.3).

Deviation note: the paper reports the Mobile platform draws "an additional
5.8 Watts" beyond the processor, which is inconsistent with its stated 6 W
maximum processor power and with Fig. 3's finding that the LITTLE cluster
is the efficient one (a dominant external draw would make the fastest
configuration the most efficient).  We use a small rest-of-system draw
(0.25 W, display off) so the published efficiency landscape is preserved.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .config_space import ConfigSpace
from .knobs import Knob, SystemConfig
from .machine import Cluster, Machine


def _linspace(lo: float, hi: float, n: int) -> Tuple[float, ...]:
    if n < 2:
        raise ValueError("need at least two settings")
    step = (hi - lo) / (n - 1)
    return tuple(round(lo + i * step, 4) for i in range(n))


BIG_SPEEDS = _linspace(0.2, 2.0, 19)
LITTLE_SPEEDS = _linspace(0.2, 1.4, 13)
TABLET_SPEEDS = (0.6, 0.75, 0.9, 1.05, 1.2, 1.35, 1.5, 1.63)
SERVER_SPEEDS = _linspace(0.8, 2.9, 16)

#: Firmware-honoured Tablet speeds: nominal settings snap pairwise onto
#: four distinct levels, keeping the top (turbo) setting real so the full
#: clock range still delivers Table 3's 2.72x speedup.
_TABLET_EFFECTIVE = {
    0.6: 0.6,
    0.75: 0.6,
    0.9: 0.9,
    1.05: 0.9,
    1.2: 1.2,
    1.35: 1.2,
    1.5: 1.2,
    1.63: 1.63,
}


def _tablet_speed_quirk(cluster_name: str, nominal: float) -> float:
    return _TABLET_EFFECTIVE.get(nominal, nominal)


def _mobile_constraint(config: SystemConfig) -> bool:
    """Cluster-exclusive: exactly one cluster active, idle cluster's clock
    pinned to its minimum so equivalent configurations are not duplicated."""
    big = config["big_cores"]
    little = config["little_cores"]
    if (big > 0) == (little > 0):
        return False
    if big == 0 and config["big_ghz"] != BIG_SPEEDS[0]:
        return False
    if little == 0 and config["little_ghz"] != LITTLE_SPEEDS[0]:
        return False
    return True


def build_mobile() -> Machine:
    """ODROID-XU3-like big.LITTLE platform (128 configurations)."""
    space = ConfigSpace(
        knobs=[
            Knob("big_cores", (0, 1, 2, 3, 4)),
            Knob("big_ghz", BIG_SPEEDS),
            Knob("little_cores", (0, 1, 2, 3, 4)),
            Knob("little_ghz", LITTLE_SPEEDS),
        ],
        constraint=_mobile_constraint,
    )
    return Machine(
        name="mobile",
        space=space,
        clusters=(
            Cluster(
                name="big",
                cores_knob="big_cores",
                speed_knob="big_ghz",
                perf_per_ghz=2.0,
                leak_w=0.15,
                dyn_w_per_ghz3=0.15,
            ),
            Cluster(
                name="little",
                cores_knob="little_cores",
                speed_knob="little_ghz",
                perf_per_ghz=0.8,
                leak_w=0.01,
                dyn_w_per_ghz3=0.03,
            ),
        ),
        idle_w=0.12,
        external_w=0.25,
        bandwidth_per_ctrl=6.0,
    )


def build_tablet() -> Machine:
    """Core i5-4210Y-like tablet (32 configurations)."""
    space = ConfigSpace(
        knobs=[
            Knob("cores", (1, 2)),
            Knob("clock_ghz", TABLET_SPEEDS),
            Knob("hyperthreads", (1, 2)),
        ]
    )
    return Machine(
        name="tablet",
        space=space,
        clusters=(
            Cluster(
                name="core",
                cores_knob="cores",
                speed_knob="clock_ghz",
                perf_per_ghz=1.3,
                leak_w=1.2,
                dyn_w_per_ghz3=0.25,
            ),
        ),
        idle_w=2.4,
        external_w=2.0,
        ht_knob="hyperthreads",
        ht_effectiveness=0.5,
        ht_power_w=0.15,
        bandwidth_per_ctrl=4.0,
        effective_speed=_tablet_speed_quirk,
    )


def build_server() -> Machine:
    """Dual Xeon E5-2690-like server (1024 configurations)."""
    space = ConfigSpace(
        knobs=[
            Knob("cores", tuple(range(1, 17))),
            Knob("clock_ghz", SERVER_SPEEDS),
            Knob("hyperthreads", (1, 2)),
            Knob("mem_ctrls", (1, 2)),
        ]
    )
    return Machine(
        name="server",
        space=space,
        clusters=(
            Cluster(
                name="xeon",
                cores_knob="cores",
                speed_knob="clock_ghz",
                perf_per_ghz=1.0,
                leak_w=1.5,
                dyn_w_per_ghz3=0.32,
            ),
        ),
        idle_w=12.0,
        external_w=85.0,
        ht_knob="hyperthreads",
        memctrl_knob="mem_ctrls",
        ht_effectiveness=0.9,
        ht_power_w=0.4,
        memctrl_power_w=6.0,
        bandwidth_per_ctrl=9.0,
        bandwidth_thrash=1.5,
        turbo_power_w_per_ghz=4.0,
        turbo_knee_ghz=2.4,
    )


_BUILDERS = {
    "mobile": build_mobile,
    "tablet": build_tablet,
    "server": build_server,
}


def get_machine(name: str) -> Machine:
    """Build one of the three paper platforms by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; expected one of {sorted(_BUILDERS)}"
        ) from None


def all_machines() -> Dict[str, Machine]:
    """Build all three platforms, keyed by name."""
    return {name: build() for name, build in _BUILDERS.items()}
