"""Application resource profiles: how a workload responds to hardware.

JouleGuard never sees these numbers — it only observes (rate, power)
feedback — but the platform simulator needs to know how each application's
*default-accuracy* computation scales with cores, clock speed,
hyperthreading, and memory bandwidth.  On the paper's testbed this response
is a physical property of the PARSEC binaries; here it is captured by an
:class:`AppResourceProfile` per application, chosen so the efficiency
landscapes of Fig. 3 (smooth vs. multi-modal, platform-dependent peaks)
emerge from the model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AppResourceProfile:
    """Resource-response parameters of one application.

    Parameters
    ----------
    name:
        Application identifier (matches the app registry).
    base_rate:
        Work units per second on one reference core at 1 GHz in the
        application's default (full accuracy) configuration.
    parallel_fraction:
        Amdahl's-law parallel fraction ``P`` in [0, 1).
    clock_sensitivity:
        Exponent ``beta`` with per-core speed proportional to ``f**beta``.
        CPU-bound codes have beta near 1; memory-bound codes lower.
    memory_boundness:
        Fraction of execution limited by memory bandwidth, in [0, 1].
        Drives both the benefit of extra memory controllers and the
        bandwidth-saturation penalty of high thread counts.
    ht_gain:
        Fractional throughput gain from enabling hyperthreading before
        machine scaling (e.g. 0.25 means SMT adds 25% per core at best).
    activity_factor:
        Scales dynamic (switching) power; near 1 for compute-dense codes,
        lower for stall-heavy ones.
    """

    name: str
    base_rate: float
    parallel_fraction: float
    clock_sensitivity: float
    memory_boundness: float
    ht_gain: float
    activity_factor: float

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= self.parallel_fraction < 1.0:
            raise ValueError("parallel_fraction must be in [0, 1)")
        if not 0.0 < self.clock_sensitivity <= 1.5:
            raise ValueError("clock_sensitivity must be in (0, 1.5]")
        if not 0.0 <= self.memory_boundness <= 1.0:
            raise ValueError("memory_boundness must be in [0, 1]")
        if not 0.0 <= self.ht_gain <= 1.0:
            raise ValueError("ht_gain must be in [0, 1]")
        if not 0.0 < self.activity_factor <= 2.0:
            raise ValueError("activity_factor must be in (0, 2]")


# A generic profile used by tests and the quickstart example.
GENERIC_PROFILE = AppResourceProfile(
    name="generic",
    base_rate=10.0,
    parallel_fraction=0.9,
    clock_sensitivity=0.9,
    memory_boundness=0.3,
    ht_gain=0.2,
    activity_factor=1.0,
)
