"""Power model: Watts drawn by (application, system configuration).

Full-system power is composed of:

* ``external_w`` — rest-of-system constant draw (the paper adds the same
  kind of fixed constant to its on-chip meters, Sec. 4.2),
* ``idle_w`` — processor-package idle power,
* per-core static leakage (``leak_w`` × active cores),
* per-core dynamic power ``dyn_w_per_ghz3 × f**3 × activity`` — the cubic
  clock/power relationship the paper uses to initialize its learner
  (Sec. 3.2), scaled by the application's activity factor,
* a turbo penalty above the machine's turbo knee (makes the Server's
  default configuration energy-inefficient, as observed in Sec. 4.3),
* hyperthreading and memory-controller adders.

Memory-bound applications stall more, which reduces switching activity;
the model scales dynamic power down with the *unsatisfied* fraction of
memory demand so that bandwidth-starved configurations draw less power.
"""

from __future__ import annotations

from .knobs import SystemConfig
from .machine import Cluster, Machine
from .profiles import AppResourceProfile
from .speedup_model import aggregate_capacity, bandwidth_limited_capacity


def cluster_power(
    machine: Machine,
    cluster: Cluster,
    config: SystemConfig,
    profile: AppResourceProfile,
) -> float:
    """Static + dynamic power of one cluster under ``config``."""
    n = config[cluster.cores_knob]
    if n <= 0:
        return 0.0
    f = machine.cluster_speed(cluster, config)
    dynamic = cluster.dyn_w_per_ghz3 * f**3 * profile.activity_factor
    if f > machine.turbo_knee_ghz:
        dynamic += (
            machine.turbo_power_w_per_ghz
            * (f - machine.turbo_knee_ghz)
            * profile.activity_factor
        )
    return n * (cluster.leak_w + dynamic)


def stall_derating(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Dynamic-power derating in (0, 1] from memory-bandwidth stalls.

    If bandwidth satisfies the whole memory-bound demand the factor is 1;
    a fully starved, fully memory-bound workload is derated to 0.55 (cores
    stall but clocks keep switching).
    """
    raw = aggregate_capacity(machine, config, profile)
    limited = bandwidth_limited_capacity(machine, config, profile, raw)
    if raw <= 0.0:
        return 1.0
    starved_fraction = 1.0 - limited / raw
    return 1.0 - 0.45 * starved_fraction


def package_power(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Processor-package power (what the on-chip meters report)."""
    machine.space.validate(config)
    derate = stall_derating(machine, config, profile)
    total = machine.idle_w
    for cluster in machine.clusters:
        static = config[cluster.cores_knob] * cluster.leak_w
        dynamic = (
            cluster_power(machine, cluster, config, profile) - static
        ) * derate
        total += static + dynamic
    if machine.hyperthreading_on(config):
        total += machine.ht_power_w * machine.active_cores(config)
    extra_ctrls = max(0, machine.memory_controllers(config) - 1)
    total += machine.memctrl_power_w * extra_ctrls
    return total


def system_power(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Full-system power: package plus rest-of-system constant draw."""
    return package_power(machine, config, profile) + machine.external_w


def powerup_over_minimal(
    machine: Machine, config: SystemConfig, profile: AppResourceProfile
) -> float:
    """Power increase of ``config`` relative to the minimal config.

    This is the "powerup" column of the paper's Table 3.
    """
    return system_power(machine, config, profile) / system_power(
        machine, machine.space.minimal, profile
    )
