"""repro — a reproduction of *JouleGuard: Energy Guarantees for
Approximate Applications* (Hoffmann, SOSP 2015).

Layers
------
* :mod:`repro.core` — the JouleGuard runtime: bandit learning over
  system configurations (SEO), adaptive-pole speedup control (AAO), the
  Algorithm 1 loop, and the Z-domain analysis behind its guarantees.
* :mod:`repro.hw` — the platform substrate: the paper's three machines
  as analytic power/performance models with noisy sensors.
* :mod:`repro.apps` — the eight approximate applications of Table 2,
  built with PowerDial-style dynamic knobs or loop perforation.
* :mod:`repro.kernels` — real computational kernels backing each
  application's accuracy metric.
* :mod:`repro.workloads` — phased inputs (Sec. 5.6).
* :mod:`repro.runtime` — closed-loop harness, baselines, and oracle.

Quick start
-----------
>>> from repro import get_machine, build_application, run_jouleguard
>>> result = run_jouleguard(
...     get_machine("server"), build_application("x264"), factor=2.0,
...     n_iterations=200,
... )
>>> result.relative_error_pct < 5.0
True
"""

from .apps import build_all, build_application, table2
from .core import (
    Decision,
    EnergyGoal,
    JouleGuardRuntime,
    Measurement,
    PAPER_FACTORS,
    SystemEnergyOptimizer,
)
from .hw import all_machines, get_machine
from .runtime import (
    ExperimentResult,
    oracle_accuracy,
    run_application_only,
    run_jouleguard,
    run_system_only,
    run_uncoordinated,
)
from .workloads import steady, three_scene_video

__version__ = "1.0.0"

__all__ = [
    "Decision",
    "EnergyGoal",
    "ExperimentResult",
    "JouleGuardRuntime",
    "Measurement",
    "PAPER_FACTORS",
    "SystemEnergyOptimizer",
    "all_machines",
    "build_all",
    "build_application",
    "get_machine",
    "oracle_accuracy",
    "run_application_only",
    "run_jouleguard",
    "run_system_only",
    "run_uncoordinated",
    "steady",
    "table2",
    "three_scene_video",
    "__version__",
]
