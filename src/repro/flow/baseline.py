"""Accepted-findings baseline for jgflow.

Flow findings are project-wide and long-lived: a race that is
provably benign ("only runs once at startup") or a ledger revision
with an audit trail should not fail CI forever, but silently
suppressing it in source hides the reasoning.  The baseline file
(``jgflow.baseline.json`` at the repo root) records each accepted
finding with a *mandatory justification* and matches findings by
``(rule, path, symbol)`` — stable across line drift, unlike
line-pinned suppressions.

Stale entries (nothing matches anymore) are reported as warnings so
the baseline shrinks as fixes land; they never fail the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..lint.findings import Finding

__all__ = ["Baseline", "BaselineEntry", "find_baseline"]

#: Default baseline file name, looked up at the repo root.
BASELINE_NAME = "jgflow.baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: rule + site + why it is acceptable."""

    rule: str
    path: str  # repo-relative, posix separators
    symbol: str  # dotted qualname of the containing function
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


@dataclass
class Baseline:
    """A set of accepted findings anchored at ``root``."""

    root: Path
    entries: List[BaselineEntry]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                symbol=item.get("symbol", ""),
                justification=item.get("justification", ""),
            )
            for item in document.get("findings", [])
        ]
        return cls(root=path.parent.resolve(), entries=entries)

    @classmethod
    def empty(cls, root: Path) -> "Baseline":
        return cls(root=root.resolve(), entries=[])

    def save(self, path: Path) -> None:
        document = {
            "note": (
                "Accepted jgflow findings. Every entry needs a "
                "justification; stale entries are warned about and "
                "should be deleted."
            ),
            "findings": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "symbol": entry.symbol,
                    "justification": entry.justification,
                }
                for entry in self.entries
            ],
        }
        path.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )

    # -- matching ----------------------------------------------------------
    def _relative(self, finding_path: str) -> str:
        path = Path(finding_path)
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def _finding_key(self, finding: Finding) -> Tuple[str, str, str]:
        return (
            finding.rule_id,
            self._relative(finding.path),
            finding.symbol,
        )

    def matches(self, finding: Finding) -> bool:
        key = self._finding_key(finding)
        return any(entry.key() == key for entry in self.entries)

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[BaselineEntry]]:
        """Split findings into (new, stale-entries).

        ``new`` is every finding not covered by the baseline; the
        second element lists entries that matched nothing (candidates
        for deletion).
        """
        used: Dict[Tuple[str, str, str], bool] = {
            entry.key(): False for entry in self.entries
        }
        new: List[Finding] = []
        for finding in findings:
            key = self._finding_key(finding)
            if key in used:
                used[key] = True
            else:
                new.append(finding)
        stale = [
            entry for entry in self.entries if not used[entry.key()]
        ]
        return new, stale

    @classmethod
    def from_findings(
        cls,
        root: Path,
        findings: Sequence[Finding],
        justification: str = "TODO: justify or fix",
    ) -> "Baseline":
        baseline = cls.empty(root)
        seen: set = set()
        for finding in findings:
            key = baseline._finding_key(finding)
            if key in seen:
                continue
            seen.add(key)
            baseline.entries.append(
                BaselineEntry(
                    rule=key[0],
                    path=key[1],
                    symbol=key[2],
                    justification=justification,
                )
            )
        return baseline


def find_baseline(start: Path) -> Optional[Path]:
    """Nearest ``jgflow.baseline.json`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        path = candidate / BASELINE_NAME
        if path.is_file():
            return path
    return None
