"""Multi-file project context for jgflow.

Where jglint's :class:`~repro.lint.engine.FileContext` sees one file,
jgflow's :class:`ProjectContext` sees the whole tree at once: every
parsed file, a dotted module name for each, the import graph between
project modules, and a table of every function/method with its
enclosing class.  The analyses and the call graph
(:mod:`repro.flow.callgraph`) are built on top of this.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..lint.engine import FileContext, iter_python_files

__all__ = ["FunctionInfo", "ProjectContext"]


@dataclass
class FunctionInfo:
    """One function or method in the project.

    ``qualname`` is module-relative (``Class.method`` or ``func``);
    ``full_name`` prefixes the module, giving a project-unique key.
    """

    module: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    context: FileContext
    cls: Optional[str] = None

    @property
    def full_name(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


def _module_name_for(context: FileContext, root: Path) -> str:
    """A dotted module name; repro-anchored when possible."""
    anchored = context.module_name()
    if anchored is not None:
        return anchored
    try:
        relative = context.path.resolve().relative_to(root)
    except ValueError:
        relative = Path(context.path.name)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else context.path.stem


def _resolve_relative(
    module: str, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute module named by ``from <dots><target> import …``."""
    parts = module.split(".")
    if len(parts) < level:
        return None
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


@dataclass
class ProjectContext:
    """Every parsed file plus the cross-module indices over them.

    Attributes
    ----------
    files:
        One :class:`FileContext` per successfully parsed file.
    modules:
        Dotted module name → its file context.
    functions:
        ``module.Class.method`` / ``module.func`` → function info.
    imports:
        Per module, local name → the absolute dotted target it binds
        (``from .sessions import SessionManager`` binds
        ``SessionManager`` → ``repro.service.sessions.SessionManager``).
    module_graph:
        Module → project modules it imports (the dependency graph).
    errors:
        Files that failed to parse, with the exception message.
    """

    files: List[FileContext] = field(default_factory=list)
    modules: Dict[str, FileContext] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    imports: Dict[str, Dict[str, str]] = field(default_factory=dict)
    module_graph: Dict[str, Set[str]] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    _module_of_file: Dict[Path, str] = field(default_factory=dict)

    @classmethod
    def load(cls, paths: Sequence[Path]) -> "ProjectContext":
        """Parse every Python file under ``paths`` and index it."""
        project = cls()
        root = Path.cwd()
        for path in paths:
            candidate = path if path.is_dir() else path.parent
            root = candidate.resolve()
            break
        for path in iter_python_files(paths):
            try:
                context = FileContext.from_path(path)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                project.errors.append(f"{path}: {exc}")
                continue
            module = _module_name_for(context, root)
            project.files.append(context)
            project.modules[module] = context
            project._module_of_file[path.resolve()] = module
            project._index_module(module, context)
        project._close_module_graph()
        return project

    def module_of(self, context: FileContext) -> str:
        return self._module_of_file.get(
            context.path.resolve(), context.path.stem
        )

    def functions_in(self, module: str) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.module == module:
                yield info

    def methods_of(
        self, module: str, cls: str
    ) -> Dict[str, FunctionInfo]:
        return {
            info.name: info
            for info in self.functions.values()
            if info.module == module and info.cls == cls
        }

    # -- indexing ----------------------------------------------------------
    def _index_module(self, module: str, context: FileContext) -> None:
        table: Dict[str, str] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    target = (
                        item.name
                        if item.asname
                        else item.name.split(".")[0]
                    )
                    table[local] = target
            elif isinstance(node, ast.ImportFrom):
                base: Optional[str]
                if node.level:
                    base = _resolve_relative(
                        module, node.level, node.module
                    )
                else:
                    base = node.module
                if base is None:
                    continue
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    table[local] = f"{base}.{item.name}"
        self.imports[module] = table
        for node in context.tree.body:
            self._index_scope(module, context, node, cls=None)

    def _index_scope(
        self,
        module: str,
        context: FileContext,
        node: ast.stmt,
        cls: Optional[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{cls}.{node.name}" if cls else node.name
            info = FunctionInfo(
                module=module,
                qualname=qualname,
                node=node,
                context=context,
                cls=cls,
            )
            self.functions[info.full_name] = info
            # Nested defs are not indexed: they are their own scope
            # and the analyses treat them as opaque.
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                self._index_scope(module, context, child, cls=node.name)

    def _close_module_graph(self) -> None:
        known = set(self.modules)
        for module, table in self.imports.items():
            edges: Set[str] = set()
            for target in table.values():
                probe = target
                while probe:
                    if probe in known:
                        edges.add(probe)
                        break
                    if "." not in probe:
                        break
                    probe = probe.rsplit(".", 1)[0]
            edges.discard(module)
            self.module_graph[module] = edges
