"""JGF301 — zero-sum budget paths.

JouleGuard's guarantee is an accounting identity: every joule is
either unspent pool, promised to a live session, or retired as spent
— and transfers between accounts must sum to zero on *every* path,
including the ones an exception takes.  PR 2 fixed a latent
``core.multi`` overdraft by hand; this rule closes the class.

The rule finds every statement that mutates a budget ledger field
(``adjustment_j`` via ``adjust_budget``, ``_spent_closed_j``,
``global_budget_j``, ``reclaimed_j``), enumerates the code paths of
each mutating function (branches split, loop bodies taken once,
``raise``/``return``/``break`` terminate), and requires each path to
be *provably balanced*:

* a syntactic **debit** (``adjust_budget(-x)``, ``field -= x``) must
  pair with a **credit** of the *same amount expression* on the same
  path, and vice versa;
* a **retirement** (crediting ``_spent_closed_j``) is balanced by the
  session leaving the live set on the same path (``del``/``.pop``) —
  but the retired amount must be the *unclamped* spend: an inline
  ``min``/``max`` in a retirement leaks the clamped-away joules back
  into the pool;
* a debit that can raise (``adjust_budget`` enforces the accountant's
  invariant) inside a loop is a partial-application hazard: earlier
  iterations stand if a later one raises.  The sanctioned idiom is a
  **rollback** ``try``/``except`` whose handler compensates and
  re-raises — mutations inside one are balanced by construction;
* a mutation guarded by a ``check(...)`` contract naming the amount
  (the :class:`~repro.core.budget.BudgetAccountant` primitives) is
  **contract-covered** and exempt;
* an absolute assignment to a ledger field (``self.global_budget_j =
  x``) is never zero-sum-provable and must be baselined with its
  audit-trail justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..lint.findings import Finding
from .callgraph import CallGraph, dotted_name
from .engine import FlowRule
from .project import FunctionInfo, ProjectContext

__all__ = ["ZeroSumBudgetRule"]

#: Ledger fields whose mutations must be zero-sum.
_BUDGET_FIELDS = frozenset(
    {"adjustment_j", "_spent_closed_j", "global_budget_j", "reclaimed_j"}
)

#: Fields whose credits retire joules for good (see close()).
_RETIRE_FIELDS = frozenset({"_spent_closed_j"})

#: Functions that initialize rather than transfer.
_INIT_FUNCTIONS = frozenset({"__init__", "__post_init__", "__new__"})

_PATH_CAP = 128


@dataclass
class _Site:
    kind: str  # transfer|field|retire|revise|removal|check|end
    node: Optional[ast.AST] = None
    sign: str = ""  # "pos" | "neg"
    amount: str = ""
    field: str = ""
    clamped: bool = False
    raising: bool = False
    in_loop: bool = False
    protected: bool = False
    covered: bool = False
    text: str = ""  # check-call text for coverage matching


def _normalize(text: str) -> str:
    return re.sub(r"\s+", "", text)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _contains_clamp(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = dotted_name(child.func)
            if name in ("min", "max"):
                return True
    return False


class _SiteExtractor:
    """Collect the budget-relevant sites of one statement/expression."""

    def __init__(self, in_loop: bool) -> None:
        self.in_loop = in_loop
        self.sites: List[_Site] = []

    def expr_sites(self, node: Optional[ast.AST]) -> List[_Site]:
        if node is None:
            return []
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._call(child)
        return self.sites

    def stmt_sites(self, node: ast.stmt) -> List[_Site]:
        if isinstance(node, ast.AugAssign):
            self._aug_assign(node)
            self.expr_sites(node.value)
        elif isinstance(node, ast.Assign):
            self.expr_sites(node.value)
            for target in node.targets:
                self._plain_assign(target, node)
        elif isinstance(node, ast.AnnAssign):
            self.expr_sites(node.value)
            self._plain_assign(node.target, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    chain = dotted_name(target.value)
                    if chain is not None and chain.startswith("self."):
                        self.sites.append(
                            _Site(kind="removal", node=node)
                        )
        else:
            for child in ast.walk(node):
                if isinstance(child, ast.Call):
                    self._call(child)
        return self.sites

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, (ast.Attribute, ast.Name)):
            return
        name = func.attr if isinstance(func, ast.Attribute) else func.id
        if name == "adjust_budget" and len(node.args) == 1:
            self._transfer(node)
        elif name == "pop" and isinstance(func, ast.Attribute):
            chain = dotted_name(func.value)
            if chain is not None and chain.startswith("self."):
                self.sites.append(_Site(kind="removal", node=node))
        elif name == "check":
            self.sites.append(
                _Site(
                    kind="check",
                    node=node,
                    text=_normalize(_unparse(node)),
                )
            )

    def _transfer(self, node: ast.Call) -> None:
        arg = node.args[0]
        sign = "pos"
        amount_node: ast.AST = arg
        if isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub):
            sign = "neg"
            amount_node = arg.operand
        elif isinstance(arg, ast.Constant) and isinstance(
            arg.value, (int, float)
        ):
            sign = "neg" if arg.value < 0 else "pos"
        self.sites.append(
            _Site(
                kind="transfer",
                node=node,
                sign=sign,
                amount=_normalize(_unparse(amount_node)),
                clamped=_contains_clamp(arg),
                raising=sign == "neg",
                in_loop=self.in_loop,
            )
        )

    def _aug_assign(self, node: ast.AugAssign) -> None:
        chain = dotted_name(node.target)
        if chain is None:
            return
        tail = chain.rsplit(".", 1)[-1]
        if tail not in _BUDGET_FIELDS:
            return
        sign = "pos" if isinstance(node.op, ast.Add) else "neg"
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        kind = "retire" if tail in _RETIRE_FIELDS else "field"
        self.sites.append(
            _Site(
                kind=kind,
                node=node,
                sign=sign,
                amount=_normalize(_unparse(node.value)),
                field=tail,
                clamped=_contains_clamp(node.value),
                in_loop=self.in_loop,
            )
        )

    def _plain_assign(self, target: ast.AST, node: ast.stmt) -> None:
        chain = dotted_name(target)
        if chain is None:
            return
        tail = chain.rsplit(".", 1)[-1]
        if tail in _BUDGET_FIELDS:
            self.sites.append(
                _Site(kind="revise", node=node, field=tail)
            )


class _PathEnumerator:
    """Expand one function body into mutation-site paths."""

    def __init__(self) -> None:
        self.loop_depth = 0

    def paths(self, body: Sequence[ast.stmt]) -> List[List[_Site]]:
        paths: List[List[_Site]] = [[]]
        for stmt in body:
            segments = self._segments(stmt)
            extended: List[List[_Site]] = []
            for path in paths:
                if path and path[-1].kind == "end":
                    extended.append(path)
                    continue
                for segment in segments:
                    extended.append(path + segment)
            paths = extended[:_PATH_CAP]
        return paths

    def _expr_sites(self, node: Optional[ast.AST]) -> List[_Site]:
        return _SiteExtractor(self.loop_depth > 0).expr_sites(node)

    def _segments(self, stmt: ast.stmt) -> List[List[_Site]]:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return [[]]
        if isinstance(stmt, ast.If):
            test = self._expr_sites(stmt.test)
            branches = [
                test + path for path in self.paths(stmt.body)
            ] + [test + path for path in self.paths(stmt.orelse)]
            return branches[:_PATH_CAP]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            prefix = self._expr_sites(stmt.iter)
            self.loop_depth += 1
            inner = self.paths(stmt.body)
            self.loop_depth -= 1
            after = self.paths(stmt.orelse)
            combined = [
                prefix + loop_path + tail
                for loop_path in inner
                for tail in after
            ]
            return self._unend_loop(combined)[:_PATH_CAP]
        if isinstance(stmt, ast.While):
            prefix = self._expr_sites(stmt.test)
            self.loop_depth += 1
            inner = self.paths(stmt.body)
            self.loop_depth -= 1
            after = self.paths(stmt.orelse)
            combined = [
                prefix + loop_path + tail
                for loop_path in inner
                for tail in after
            ]
            return self._unend_loop(combined)[:_PATH_CAP]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            prefix: List[_Site] = []
            for item in stmt.items:
                prefix.extend(self._expr_sites(item.context_expr))
            return [
                prefix + path for path in self.paths(stmt.body)
            ][:_PATH_CAP]
        if isinstance(stmt, ast.Try):
            return self._try_segments(stmt)
        if isinstance(stmt, (ast.Return,)):
            sites = self._expr_sites(stmt.value)
            return [sites + [_Site(kind="end")]]
        if isinstance(stmt, ast.Raise):
            sites = self._expr_sites(stmt.exc)
            return [sites + [_Site(kind="end")]]
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return [[_Site(kind="end")]]
        extractor = _SiteExtractor(self.loop_depth > 0)
        return [extractor.stmt_sites(stmt)]

    @staticmethod
    def _unend_loop(paths: List[List[_Site]]) -> List[List[_Site]]:
        """``break``/``continue`` end the loop body, not the function."""
        cleaned = []
        for path in paths:
            if path and path[-1].kind == "end":
                cleaned.append(path[:-1])
            else:
                cleaned.append(path)
        return cleaned

    def _try_segments(self, stmt: ast.Try) -> List[List[_Site]]:
        rollback = any(
            self._is_rollback_handler(handler)
            for handler in stmt.handlers
        )
        body_paths = self.paths(stmt.body)
        if rollback:
            for path in body_paths:
                for site in path:
                    site.protected = True
        final_paths = self.paths(stmt.finalbody)
        orelse_paths = self.paths(stmt.orelse)
        segments = [
            body + orelse + final
            for body in body_paths
            for orelse in orelse_paths
            for final in final_paths
        ]
        for handler in stmt.handlers:
            if rollback and self._is_rollback_handler(handler):
                continue
            for handler_path in self.paths(handler.body):
                for final in final_paths:
                    segments.append(handler_path + final)
        return segments[:_PATH_CAP]

    @staticmethod
    def _is_rollback_handler(handler: ast.ExceptHandler) -> bool:
        """A handler that compensates applied transfers and re-raises."""
        compensates = False
        reraises = False
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                reraises = True
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "adjust_budget"
                ):
                    compensates = True
        return compensates and reraises


class ZeroSumBudgetRule(FlowRule):
    """JGF301: every budget-mutating path balanced or contract-covered."""

    rule_id = "JGF301"
    summary = (
        "code path mutates a budget ledger field without a matching "
        "opposite entry (unpaired debit/credit, clamped retirement, "
        "raising transfer in a loop without rollback, or absolute "
        "revision) — the pool stops being zero-sum"
    )
    components = ("core", "service", "faults", "enforce", "obs")

    def check_project(
        self, project: ProjectContext, callgraph: CallGraph
    ) -> Iterator[Finding]:
        for info in project.functions.values():
            if not self.applies_to(info.context):
                continue
            if info.name in _INIT_FUNCTIONS:
                continue
            yield from self._check_function(info)

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        body = getattr(info.node, "body", [])
        if not self._mentions_ledger(info.node):
            return
        paths = _PathEnumerator().paths(body)
        seen: Set[Tuple[str, int, str]] = set()
        for path in paths:
            self._mark_covered(path)
            for finding in self._check_path(info, path):
                key = (finding.rule_id, finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    @staticmethod
    def _mentions_ledger(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute):
                if child.attr in _BUDGET_FIELDS:
                    return True
            elif isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "adjust_budget"
                ):
                    return True
        return False

    @staticmethod
    def _mark_covered(path: List[_Site]) -> None:
        checks: List[str] = []
        for site in path:
            if site.kind == "check":
                checks.append(site.text)
                continue
            if site.kind in ("transfer", "field", "retire", "revise"):
                token = site.amount or site.field
                if token and any(token in text for text in checks):
                    site.covered = True

    def _check_path(
        self, info: FunctionInfo, path: List[_Site]
    ) -> Iterator[Finding]:
        active = [
            site
            for site in path
            if site.kind in ("transfer", "field", "retire", "revise")
            and not site.protected
            and not site.covered
        ]
        has_removal = any(site.kind == "removal" for site in path)
        for site in active:
            if site.kind == "retire":
                yield from self._check_retire(info, site, has_removal)
            elif site.kind == "revise":
                yield self.finding(
                    info,
                    site.node or info.node,
                    f"absolute assignment to ledger field "
                    f"'{site.field}' cannot be proven zero-sum; "
                    "express it as paired transfers, or baseline the "
                    "site with its audit-trail justification",
                )
        yield from self._check_pairing(info, active)
        yield from self._check_loops(info, active)

    def _check_retire(
        self, info: FunctionInfo, site: _Site, has_removal: bool
    ) -> Iterator[Finding]:
        if site.clamped:
            yield self.finding(
                info,
                site.node or info.node,
                f"retirement into '{site.field}' clamps the amount "
                f"('{site.amount}'): on the overdrawn branch the "
                "clamped-away joules are burned but never retired, so "
                "they leak back into the available pool — retire the "
                "full spend instead",
            )
        elif not has_removal:
            yield self.finding(
                info,
                site.node or info.node,
                f"'{site.field}' is credited on a path that does not "
                "remove the session from the live set — the same "
                "joules stay both retired and committed",
            )

    def _check_pairing(
        self, info: FunctionInfo, active: List[_Site]
    ) -> Iterator[Finding]:
        pool = [
            site
            for site in active
            if site.kind in ("transfer", "field")
        ]
        unpaired_neg: List[_Site] = []
        credits = [site for site in pool if site.sign == "pos"]
        matched: Set[int] = set()
        for site in pool:
            if site.sign != "neg":
                continue
            partner = next(
                (
                    index
                    for index, credit in enumerate(credits)
                    if index not in matched
                    and credit.amount == site.amount
                ),
                None,
            )
            if partner is None:
                unpaired_neg.append(site)
            else:
                matched.add(partner)
        unpaired_pos = [
            credit
            for index, credit in enumerate(credits)
            if index not in matched
        ]
        for site in unpaired_neg:
            yield self.finding(
                info,
                site.node or info.node,
                f"path debits '{site.amount}' without a matching "
                "credit of the same amount — joules vanish from the "
                "ledger on this path",
            )
        for site in unpaired_pos:
            yield self.finding(
                info,
                site.node or info.node,
                f"path credits '{site.amount}' without a matching "
                "debit of the same amount — the ledger mints joules "
                "on this path (if the amount can be negative, this is "
                "also an unprovable-sign transfer)",
            )

    def _check_loops(
        self, info: FunctionInfo, active: List[_Site]
    ) -> Iterator[Finding]:
        for site in active:
            if (
                site.kind == "transfer"
                and site.raising
                and site.in_loop
            ):
                yield self.finding(
                    info,
                    site.node or info.node,
                    f"debit of '{site.amount}' can raise the "
                    "accountant's contract mid-loop, leaving earlier "
                    "iterations applied and the pool unbalanced — "
                    "apply the plan under a rollback try/except that "
                    "compensates and re-raises",
                )
