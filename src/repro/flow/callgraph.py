"""Best-effort call graph and may-suspend summaries.

The asyncio race detector (JGF101) needs to know, for every ``await``
expression, whether control can actually leave the coroutine there.
``await`` on an external callee (``asyncio.sleep``,
``writer.drain()``, a bare task handle) must be assumed to suspend;
``await`` on a *project* coroutine suspends only if that coroutine
itself may suspend.  :class:`CallGraph` resolves call expressions to
:class:`~repro.flow.project.FunctionInfo` targets (``self.method``,
bare module functions, and imported ``module.func`` forms) and
computes the least fixpoint of the ``may_suspend`` predicate over the
resulting graph.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .project import FunctionInfo, ProjectContext

__all__ = ["CallGraph", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def own_body(node: ast.AST) -> Iterator[ast.AST]:
    """Nodes executed by this function itself (nested defs excluded)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class CallGraph:
    """Call resolution plus the may-suspend fixpoint.

    Resolution is deliberately conservative: only ``self.method()``
    (same class), bare ``function()`` (same module), and
    ``alias.function()`` through the module's import table are
    resolved; everything else is *unknown*, and an awaited unknown is
    assumed to suspend.
    """

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self._edges: Dict[str, Set[str]] = {}
        self._may_suspend: Dict[str, bool] = {}
        self._build()

    # -- resolution --------------------------------------------------------
    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """The project function a call lands on, when determinable."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and len(parts) == 2:
            if caller.cls is None:
                return None
            return self.project.functions.get(
                f"{caller.module}.{caller.cls}.{parts[1]}"
            )
        if len(parts) == 1:
            return self.project.functions.get(
                f"{caller.module}.{parts[0]}"
            )
        table = self.project.imports.get(caller.module, {})
        target = table.get(parts[0])
        if target is None:
            return None
        full = ".".join([target, *parts[1:]])
        return self.project.functions.get(full)

    def callees(self, info: FunctionInfo) -> Set[str]:
        return self._edges.get(info.full_name, set())

    # -- may-suspend -------------------------------------------------------
    def may_suspend(self, info: FunctionInfo) -> bool:
        """Can awaiting this function suspend the caller?"""
        return self._may_suspend.get(info.full_name, False)

    def await_suspends(
        self, node: ast.Await, caller: FunctionInfo
    ) -> bool:
        """Whether control may leave the coroutine at this ``await``.

        ``await`` of a resolved project coroutine defers to that
        coroutine's own summary; awaiting anything unresolved (an
        external API, a task handle, a future) is assumed to suspend.
        """
        if isinstance(node.value, ast.Call):
            callee = self.resolve_call(node.value, caller)
            if callee is not None and callee.is_async:
                return self.may_suspend(callee)
        return True

    # -- construction ------------------------------------------------------
    def _build(self) -> None:
        for info in self.project.functions.values():
            edges: Set[str] = set()
            for node in own_body(info.node):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(node, info)
                    if callee is not None:
                        edges.add(callee.full_name)
            self._edges[info.full_name] = edges
            self._may_suspend[info.full_name] = False
        changed = True
        while changed:
            changed = False
            for info in self.project.functions.values():
                if not info.is_async:
                    continue
                if self._may_suspend[info.full_name]:
                    continue
                if self._suspends_directly(info):
                    self._may_suspend[info.full_name] = True
                    changed = True

    def _suspends_directly(self, info: FunctionInfo) -> bool:
        """One fixpoint step: does this coroutine suspend right now?"""
        for node in own_body(info.node):
            if isinstance(node, (ast.AsyncWith, ast.AsyncFor)):
                return True
            if isinstance(node, ast.Await):
                if not isinstance(node.value, ast.Call):
                    return True
                callee = self.resolve_call(node.value, info)
                if callee is None or not callee.is_async:
                    return True
                if self._may_suspend.get(callee.full_name, False):
                    return True
        return False
