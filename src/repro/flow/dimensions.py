"""JGF201 — dimensional inference over budget arithmetic.

jglint's JG003 flags ``*_j + *_w`` when *both* operands wear a unit
suffix.  That misses the common failure mode: a quantity loses its
suffix on the way through a local variable (``share = moved * surplus
/ donor_total``) and then flows into budget arithmetic where nothing
checks its dimension.  JGF201 closes the gap with abstract
interpretation over the unit lattice (:mod:`repro.flow.units`):

* parameters and attributes are seeded from JG003's suffix
  conventions plus the paper's vocabulary (``work``, ``epw``,
  ``factor``, …);
* assignments propagate units through locals; ``*`` and ``/`` add and
  subtract exponent vectors (so ``energy_j / work`` is ``[J/work]``
  and ``power_w * dt_s`` is ``[J]``);
* ``+``/``-``/comparisons across two *different* concrete dimensions
  are flagged, as are assignments whose value's dimension contradicts
  the target name's suffix;
* known budget sinks (``adjust_budget``, ``BudgetAccountant.record``,
  ``EnergyGoal``, ``revise_global_budget``) have typed signatures —
  an argument with the wrong concrete dimension is an error, and a
  bare local of *unknown* dimension feeding a sink is flagged so the
  quantity gets named with its unit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint.findings import Finding
from .callgraph import CallGraph, dotted_name
from .engine import FlowRule
from .project import FunctionInfo, ProjectContext
from .units import (
    BOTTOM,
    ENERGY,
    POWER,
    RATE,
    TIME,
    TOP,
    WORK,
    Unit,
    unit_of_name,
)

__all__ = ["DimensionalInferenceRule"]

#: Calls whose return value has a known dimension.
_TIME_SOURCES = frozenset(
    {
        "time.monotonic",
        "time.time",
        "time.perf_counter",
        "monotonic",
        "perf_counter",
    }
)

#: Builtins that pass their arguments' dimension through.
_PASSTHROUGH = frozenset({"abs", "float", "round", "min", "max"})

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


class _FunctionAnalyzer:
    """Abstract interpretation of one function body."""

    def __init__(
        self, rule: "DimensionalInferenceRule", info: FunctionInfo
    ) -> None:
        self.rule = rule
        self.info = info
        self.env: Dict[str, Unit] = {}
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[int, int, str]] = set()
        args = info.node.args  # type: ignore[attr-defined]
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ):
            seeded = unit_of_name(arg.arg)
            if seeded is not None:
                self.env[arg.arg] = seeded

    # -- reporting ---------------------------------------------------------
    def _report(self, node: ast.AST, message: str) -> None:
        key = (
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(self.rule.finding(self.info, node, message))

    @staticmethod
    def _describe(node: ast.AST) -> str:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            text = "<expr>"
        return text if len(text) <= 40 else text[:37] + "..."

    # -- inference ---------------------------------------------------------
    def unit_of(self, node: Optional[ast.AST]) -> Unit:
        if node is None:
            return BOTTOM
        if isinstance(node, ast.Constant):
            return BOTTOM
        if isinstance(node, ast.Name):
            known = self.env.get(node.id)
            if known is not None and not known.is_bottom:
                return known
            return unit_of_name(node.id) or BOTTOM
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr) or BOTTOM
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            return self._merge(
                self.unit_of(node.body), self.unit_of(node.orelse)
            )
        return BOTTOM

    def _merge(self, left: Unit, right: Unit) -> Unit:
        if left.is_concrete and right.is_concrete and left != right:
            return TOP
        if left.is_concrete:
            return left
        if right.is_concrete:
            return right
        return BOTTOM

    def _binop(self, node: ast.BinOp) -> Unit:
        left = self.unit_of(node.left)
        right = self.unit_of(node.right)
        if isinstance(node.op, ast.Mult):
            return left.mul(right)
        if isinstance(node.op, ast.Div):
            return left.div(right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_additive(node, node.left, node.right, "combined")
            return self._merge(left, right)
        return BOTTOM

    def _call(self, node: ast.Call) -> Unit:
        dotted = dotted_name(node.func)
        if dotted is not None:
            if dotted in _TIME_SOURCES or dotted.endswith(".monotonic"):
                return TIME
            tail = dotted.rsplit(".", 1)[-1]
            if tail in _PASSTHROUGH or tail == "sum":
                folded = BOTTOM
                for arg in node.args:
                    folded = self._merge(folded, self.unit_of(arg))
                return folded
        return BOTTOM

    # -- checks ------------------------------------------------------------
    def _check_additive(
        self,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        verb: str,
    ) -> None:
        left_u = self.unit_of(left)
        right_u = self.unit_of(right)
        if (
            left_u.is_concrete
            and right_u.is_concrete
            and left_u != right_u
        ):
            self._report(
                node,
                f"'{self._describe(left)}' {left_u.label()} and "
                f"'{self._describe(right)}' {right_u.label()} {verb} "
                "across dimensions — a dimensional error "
                "(J = W·s; convert explicitly)",
            )

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, _COMPARE_OPS):
                self._check_additive(node, left, right, "compared")

    def _check_sinks(self, node: ast.AST) -> None:
        for call in ast.walk(node):
            if isinstance(call, ast.Call):
                for expr, expected, sink in self._expectations(call):
                    self._check_sink_arg(expr, expected, sink)

    def _expectations(
        self, call: ast.Call
    ) -> Iterator[Tuple[ast.expr, Unit, str]]:
        func = call.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if (
                attr in ("adjust_budget", "revise_global_budget")
                and len(call.args) == 1
            ):
                yield call.args[0], ENERGY, f"{attr}()"
            elif attr == "record" and self._is_accountant_record(call):
                spec = {"work": WORK, "energy_j": ENERGY}
                for position, arg in enumerate(call.args[:2]):
                    name = ("work", "energy_j")[position]
                    yield arg, spec[name], "BudgetAccountant.record()"
                for keyword in call.keywords:
                    if keyword.arg in spec:
                        yield (
                            keyword.value,
                            spec[keyword.arg],
                            "BudgetAccountant.record()",
                        )
        elif isinstance(func, ast.Name):
            ctor = func.id
            specs: Dict[str, Dict[str, Unit]] = {
                "EnergyGoal": {
                    "total_work": WORK,
                    "budget_j": ENERGY,
                },
                "Measurement": {
                    "work": WORK,
                    "energy_j": ENERGY,
                    "power_w": POWER,
                    "rate": RATE,
                    "dt_s": TIME,
                },
            }
            spec = specs.get(ctor)
            if spec is None:
                return
            positional = list(spec) if ctor == "EnergyGoal" else []
            for position, arg in enumerate(call.args):
                if position < len(positional):
                    yield (
                        arg,
                        spec[positional[position]],
                        f"{ctor}()",
                    )
            for keyword in call.keywords:
                if keyword.arg in spec:
                    yield keyword.value, spec[keyword.arg], f"{ctor}()"

    @staticmethod
    def _is_accountant_record(call: ast.Call) -> bool:
        """Only ``record`` calls that are budget accounting, not logging."""
        if any(k.arg == "energy_j" for k in call.keywords):
            return True
        func = call.func
        receiver = (
            dotted_name(func.value)
            if isinstance(func, ast.Attribute)
            else None
        )
        return receiver is not None and "accountant" in receiver.lower()

    def _check_sink_arg(
        self, expr: ast.expr, expected: Unit, sink: str
    ) -> None:
        actual = self.unit_of(expr)
        if actual.is_concrete and actual != expected:
            self._report(
                expr,
                f"'{self._describe(expr)}' {actual.label()} flows into "
                f"{sink}, which takes {expected.label()} — dimensional "
                "error",
            )
            return
        bare = expr
        while isinstance(bare, ast.UnaryOp):
            bare = bare.operand
        if actual.is_bottom and isinstance(bare, ast.Name):
            suffix = expected.label().strip("[]").lower()
            self._report(
                expr,
                f"'{bare.id}' has no inferable unit but flows into "
                f"{sink}, which takes {expected.label()}; name the "
                f"quantity with its unit (e.g. '{bare.id}_{suffix}') "
                "so the dimension is checkable",
            )

    # -- statement walk ----------------------------------------------------
    def run(self) -> List[Finding]:
        self._stmts(self.info.node.body)  # type: ignore[attr-defined]
        return self.findings

    def _stmts(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _check_expr(self, node: Optional[ast.AST]) -> None:
        """Additive + compare + sink checks over one expression subtree."""
        if node is None:
            return
        self._check_sinks(node)
        for expr in ast.walk(node):
            if isinstance(expr, ast.Compare):
                self._check_compare(expr)
            elif isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.Add, ast.Sub)
            ):
                # unit_of on a +/- BinOp runs the additive check as a
                # side effect; _report dedupes re-visits.
                self.unit_of(expr)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(node, ast.Assign):
            self._check_expr(node)
            value_u = self.unit_of(node.value)
            for target in node.targets:
                self._assign(target, node.value, value_u)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._check_expr(node)
            self._assign(
                node.target, node.value, self.unit_of(node.value)
            )
        elif isinstance(node, ast.AugAssign):
            self._check_expr(node.value)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_additive(
                    node, node.target, node.value, "accumulated"
                )
            elif isinstance(node.op, (ast.Mult, ast.Div)) and isinstance(
                node.target, ast.Name
            ):
                current = self.unit_of(node.target)
                value_u = self.unit_of(node.value)
                self.env[node.target.id] = (
                    current.mul(value_u)
                    if isinstance(node.op, ast.Mult)
                    else current.div(value_u)
                )
        elif isinstance(node, (ast.If, ast.While)):
            self._check_expr(node.test)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_expr(node.iter)
            self._clear_target(node.target)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._check_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._clear_target(item.optional_vars)
            self._stmts(node.body)
        elif isinstance(node, ast.Try):
            self._stmts(node.body)
            for handler in node.handlers:
                self._stmts(handler.body)
            self._stmts(node.orelse)
            self._stmts(node.finalbody)
        else:
            self._check_expr(node)

    def _assign(
        self, target: ast.AST, value: ast.expr, value_u: Unit
    ) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
            self._check_declared(target.id, declared, value, value_u)
            if declared is not None:
                self.env[target.id] = declared
            else:
                self.env[target.id] = value_u
        elif isinstance(target, ast.Attribute):
            declared = unit_of_name(target.attr)
            self._check_declared(target.attr, declared, value, value_u)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: List[Optional[ast.expr]] = [None] * len(
                target.elts
            )
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                elements = list(value.elts)
            for element, sub_value in zip(target.elts, elements):
                if sub_value is not None:
                    self._assign(
                        element, sub_value, self.unit_of(sub_value)
                    )
                else:
                    self._clear_target(element)

    def _check_declared(
        self,
        name: str,
        declared: Optional[Unit],
        value: ast.expr,
        value_u: Unit,
    ) -> None:
        if (
            declared is not None
            and value_u.is_concrete
            and value_u != declared
        ):
            self._report(
                value,
                f"expression '{self._describe(value)}' "
                f"{value_u.label()} assigned to '{name}', whose name "
                f"advertises {declared.label()} — rename one side or "
                "convert explicitly",
            )

    def _clear_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = BOTTOM
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._clear_target(element)
        elif isinstance(target, ast.Starred):
            self._clear_target(target.value)


class DimensionalInferenceRule(FlowRule):
    """JGF201: units propagated through locals; mismatches flagged."""

    rule_id = "JGF201"
    summary = (
        "physical units (J, W, s, work, 1/s) inferred through "
        "assignments; cross-dimension +/-/comparison and unannotated "
        "quantities feeding budget sinks are dimensional errors"
    )
    components = ("core", "service", "hw", "faults")

    def check_project(
        self, project: ProjectContext, callgraph: CallGraph
    ) -> Iterator[Finding]:
        for info in project.functions.values():
            if not self.applies_to(info.context):
                continue
            yield from _FunctionAnalyzer(self, info).run()
