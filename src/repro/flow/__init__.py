"""jgflow — project-wide flow-sensitive analysis for JouleGuard.

jglint (:mod:`repro.lint`) checks one file at a time, syntactically.
The bug classes the service daemon actually grew — read-modify-write
sequences on shared session/budget state spanning an ``await``, W·s vs
J mixups surviving through local variables, rebalance paths that stop
being zero-sum on an exception edge — need *flow*: a module graph, a
call graph with may-suspend summaries, and abstract interpretation
over assignments.  jgflow provides exactly that, reusing jglint's
``Finding``/reporter/suppression machinery::

    python -m repro.flow src/repro
    python -m repro lint --flow src/repro

Three analyses ship on the engine (``--list-rules`` describes them,
``docs/flow.md`` has the design):

* **JGF101** — asyncio atomicity: a shared ``self.*`` attribute read
  before and written after a suspension point without a guarding lock;
* **JGF201** — dimensional inference: physical units (J, W, s, 1/s,
  work, ratios) propagated through assignments and arithmetic, with
  mismatches and unannotated budget sinks flagged;
* **JGF301** — zero-sum budget paths: every path mutating a budget
  ledger field must be balanced (paired debit/credit, rollback on
  exception edges) or explicitly contract-covered.

Accepted findings live in ``jgflow.baseline.json`` at the repo root;
line-level ``# jglint: disable=JGF101`` comments work exactly as they
do for jglint.
"""

from .baseline import Baseline, BaselineEntry
from .callgraph import CallGraph
from .engine import FlowEngine, FlowRule, default_flow_rules
from .project import FunctionInfo, ProjectContext
from .units import BOTTOM, TOP, Unit, join, meet, unit_of_name

__all__ = [
    "BOTTOM",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "FlowEngine",
    "FlowRule",
    "FunctionInfo",
    "ProjectContext",
    "TOP",
    "Unit",
    "default_flow_rules",
    "join",
    "meet",
    "unit_of_name",
]
