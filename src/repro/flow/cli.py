"""The ``python -m repro.flow`` command line.

Mirrors ``python -m repro.lint`` (same exit codes: 0 clean, 1
findings, 2 usage error) and adds baseline handling: findings matched
by ``jgflow.baseline.json`` (found at or above the first path, or
given via ``--baseline``) are accepted and do not fail the run;
``--write-baseline`` regenerates the file from the current findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..lint.engine import iter_python_files
from ..lint.reporters import render_json, render_sarif, render_text
from .baseline import Baseline, find_baseline
from .engine import FlowEngine, default_flow_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flow",
        description=(
            "jgflow: project-wide flow analysis for JouleGuard "
            "(asyncio atomicity, dimensional inference, zero-sum "
            "budget paths)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (as one project)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help=(
            "accepted-findings file (default: jgflow.baseline.json "
            "found at or above the first path)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        nargs="?",
        const=Path("jgflow.baseline.json"),
        metavar="FILE",
        help=(
            "write the current findings as the new baseline "
            "(default file: ./jgflow.baseline.json) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the flow rule registry and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    registry = default_flow_rules()
    if options.list_rules:
        for rule in registry:
            scope = (
                " [only " + ", ".join(
                    f"{component}/" for component in rule.components
                ) + "]"
                if rule.components
                else ""
            )
            print(f"{rule.rule_id}{scope}: {rule.summary}")
        return 0

    if not options.paths:
        parser.error("at least one path is required (or --list-rules)")

    known = {rule.rule_id for rule in registry} | {"JGF000"}
    for ids in (_split_ids(options.select), _split_ids(options.ignore)):
        unknown = set(ids or ()) - known
        if unknown:
            parser.error(
                "unknown rule id(s): " + ", ".join(sorted(unknown))
            )

    missing = [path for path in options.paths if not path.exists()]
    if missing:
        parser.error(
            "no such file or directory: "
            + ", ".join(str(path) for path in missing)
        )

    engine = FlowEngine(
        select=_split_ids(options.select),
        ignore=_split_ids(options.ignore),
    )
    files = list(iter_python_files(options.paths))
    findings = engine.run(options.paths)

    if options.write_baseline is not None:
        root = options.write_baseline.resolve().parent
        baseline = Baseline.from_findings(root, findings)
        baseline.save(options.write_baseline)
        print(
            f"wrote {len(baseline.entries)} baseline entries to "
            f"{options.write_baseline}"
        )
        return 0

    baseline = None
    if not options.no_baseline:
        baseline_path = options.baseline
        if baseline_path is None:
            baseline_path = find_baseline(options.paths[0])
        elif not baseline_path.is_file():
            parser.error(f"no such baseline file: {baseline_path}")
        if baseline_path is not None:
            baseline = Baseline.load(baseline_path)

    if baseline is not None:
        findings, stale = baseline.apply(findings)
        for entry in stale:
            print(
                f"warning: stale baseline entry {entry.rule} "
                f"{entry.path} ({entry.symbol or 'module'}) matches "
                "nothing — delete it",
                file=sys.stderr,
            )

    if options.format == "json":
        renderer = render_json
    elif options.format == "sarif":
        renderer = render_sarif
    else:
        renderer = render_text
    print(renderer(findings, files_checked=len(files)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
