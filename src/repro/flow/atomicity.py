"""JGF101 — asyncio atomicity: cross-await read-modify-write races.

The daemon's correctness argument is "all session state lives on the
event loop thread; request handling is synchronous between awaits, so
no locking is needed".  That argument is only as good as the *between
awaits* part: a coroutine that reads shared state (``self.*`` — the
session manager, budget pool, snapshot store, rid cache, listener
handles), then suspends, then writes the same state has opened a
window in which any other coroutine can interleave and the write
clobbers theirs.

The detector linearizes each ``async def`` body into an event stream
— reads and writes of ``self.*`` attribute chains, suspension points,
lock regions — and flags every chain with an unprotected read before
a suspension point and a write after it.  Suspension points are
refined interprocedurally: ``await`` of a project coroutine that
provably never suspends (per :class:`~repro.flow.callgraph.CallGraph`
summaries) is not a race window.  Reads and writes inside the *same*
``async with <lock>`` region are protected: other holders of that
lock cannot interleave there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint.findings import Finding
from .callgraph import CallGraph, dotted_name
from .engine import FlowRule
from .project import FunctionInfo, ProjectContext

__all__ = ["AsyncAtomicityRule"]

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: Substrings marking an ``async with`` context as a guarding lock.
_LOCKISH = ("lock", "mutex", "sem", "cond")


@dataclass
class _Event:
    kind: str  # "read" | "write" | "suspend"
    chain: str = ""
    node: Optional[ast.AST] = None
    detail: str = ""
    region: Optional[int] = None


class _Linearizer:
    """Flatten a coroutine body into an ordered event stream.

    Control flow is over-approximated: both branches of an ``if`` are
    appended sequentially, loop bodies are walked once (asyncio
    interleaving only happens at suspension points, so a read and
    write with no suspension between them — even inside a loop — is
    atomic).  Nested function definitions are their own scope and are
    skipped.
    """

    def __init__(self, info: FunctionInfo, callgraph: CallGraph) -> None:
        self.info = info
        self.callgraph = callgraph
        self.events: List[_Event] = []
        self._regions: List[int] = []
        self._next_region = 0

    def run(self) -> List[_Event]:
        body = getattr(self.info.node, "body", [])
        self._stmts(body)
        return self.events

    # -- emission ----------------------------------------------------------
    def _emit(
        self,
        kind: str,
        chain: str = "",
        node: Optional[ast.AST] = None,
        detail: str = "",
    ) -> None:
        region = self._regions[-1] if self._regions else None
        self.events.append(
            _Event(
                kind=kind,
                chain=chain,
                node=node,
                detail=detail,
                region=region,
            )
        )

    @staticmethod
    def _shared_chain(node: ast.AST) -> Optional[str]:
        chain = dotted_name(node)
        if chain is not None and chain.startswith("self."):
            return chain
        return None

    # -- expressions -------------------------------------------------------
    def _expr(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            self._expr(node.value)
            if self.callgraph.await_suspends(node, self.info):
                if isinstance(node.value, ast.Call):
                    detail = dotted_name(node.value.func) or "await"
                else:
                    detail = dotted_name(node.value) or "await"
                self._emit("suspend", node=node, detail=detail)
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, (ast.Name, ast.Attribute)):
            chain = self._shared_chain(node)
            if chain is not None:
                self._emit("read", chain=chain, node=node)
                return
            if isinstance(node, ast.Attribute):
                self._expr(node.value)
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        for child in ast.iter_child_nodes(node):
            self._expr(child)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        mutated: Optional[str] = None
        if isinstance(func, ast.Attribute):
            receiver = self._shared_chain(func.value)
            if func.attr in _MUTATORS and receiver is not None:
                mutated = receiver
                self._emit("read", chain=receiver, node=func)
            else:
                self._expr(func.value)
        else:
            self._expr(func)
        for arg in node.args:
            self._expr(arg)
        for keyword in node.keywords:
            self._expr(keyword.value)
        if mutated is not None:
            self._emit("write", chain=mutated, node=node)

    # -- assignment targets ------------------------------------------------
    def _target(self, node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            chain = self._shared_chain(node)
            if chain is not None:
                self._emit("write", chain=chain, node=node)
            else:
                self._expr(node.value)
        elif isinstance(node, ast.Subscript):
            self._expr(node.slice)
            chain = self._shared_chain(node.value)
            if chain is not None:
                self._emit("write", chain=chain, node=node)
            else:
                self._expr(node.value)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._target(element)
        elif isinstance(node, ast.Starred):
            self._target(node.value)
        # Plain names are function-locals: not shared state.

    # -- statements --------------------------------------------------------
    def _stmts(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(node, ast.Assign):
            self._expr(node.value)
            for target in node.targets:
                self._target(target)
        elif isinstance(node, ast.AugAssign):
            # Augmented assignment loads the target before evaluating
            # the value, so the read comes first in the event stream.
            chain = self._shared_chain(node.target)
            if chain is not None:
                self._emit("read", chain=chain, node=node)
            self._expr(node.value)
            self._target(node.target)
        elif isinstance(node, ast.AnnAssign):
            self._expr(node.value)
            self._target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._target(target)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, (ast.While,)):
            self._expr(node.test)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, ast.For):
            self._expr(node.iter)
            self._target(node.target)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, ast.AsyncFor):
            self._expr(node.iter)
            self._emit("suspend", node=node, detail="async for")
            self._target(node.target)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, ast.With):
            self._with(node, is_async=False)
        elif isinstance(node, ast.AsyncWith):
            self._with(node, is_async=True)
        elif isinstance(node, ast.Try):
            self._stmts(node.body)
            for handler in node.handlers:
                self._stmts(handler.body)
            self._stmts(node.orelse)
            self._stmts(node.finalbody)
        elif isinstance(node, (ast.Return, ast.Expr)):
            self._expr(node.value)
        elif isinstance(node, ast.Raise):
            self._expr(node.exc)
            self._expr(node.cause)
        elif isinstance(node, ast.Assert):
            self._expr(node.test)
            self._expr(node.msg)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._stmt(child)
                elif isinstance(child, ast.expr):
                    self._expr(child)

    def _with(self, node: ast.stmt, is_async: bool) -> None:
        items = getattr(node, "items", [])
        lockish = bool(items) and all(
            self._is_lockish(item.context_expr) for item in items
        )
        for item in items:
            self._expr(item.context_expr)
            if item.optional_vars is not None:
                self._target(item.optional_vars)
        if lockish:
            if is_async:
                # Acquiring the lock itself may suspend — that window
                # is *before* the protected region opens.
                self._emit("suspend", node=node, detail="lock acquire")
            self._next_region += 1
            self._regions.append(self._next_region)
            self._stmts(getattr(node, "body", []))
            self._regions.pop()
            return
        if is_async:
            self._emit("suspend", node=node, detail="async with enter")
            self._stmts(getattr(node, "body", []))
            self._emit("suspend", node=node, detail="async with exit")
            return
        self._stmts(getattr(node, "body", []))

    @staticmethod
    def _is_lockish(node: ast.AST) -> bool:
        target = node.func if isinstance(node, ast.Call) else node
        chain = dotted_name(target)
        if chain is None:
            return False
        tail = chain.rsplit(".", 1)[-1].lower()
        return any(mark in tail for mark in _LOCKISH)


class AsyncAtomicityRule(FlowRule):
    """JGF101: unlocked read-modify-write spanning a suspension point."""

    rule_id = "JGF101"
    summary = (
        "shared self.* attribute read before and written after an "
        "await/async-with suspension point without a guarding lock "
        "(asyncio interleaving can clobber concurrent updates)"
    )
    components = ("service", "faults", "enforce", "obs")

    def check_project(
        self, project: ProjectContext, callgraph: CallGraph
    ) -> Iterator[Finding]:
        for info in project.functions.values():
            if not info.is_async:
                continue
            if not self.applies_to(info.context):
                continue
            yield from self._check_function(info, callgraph)

    def _check_function(
        self, info: FunctionInfo, callgraph: CallGraph
    ) -> Iterator[Finding]:
        events = _Linearizer(info, callgraph).run()
        suspends = [
            (index, event)
            for index, event in enumerate(events)
            if event.kind == "suspend"
        ]
        if not suspends:
            return
        reads: Dict[str, List[Tuple[int, _Event]]] = {}
        flagged: Set[str] = set()
        for index, event in enumerate(events):
            if event.kind == "read":
                reads.setdefault(event.chain, []).append((index, event))
                continue
            if event.kind != "write":
                continue
            hit = self._race_for_write(
                index, event, reads.get(event.chain, []), suspends
            )
            # A completed write consumes earlier reads of the chain:
            # the read-modify-write it belonged to is done, so those
            # reads cannot race with a *later* write (e.g. two
            # separate `self.counter += 1` statements around an await
            # are each atomic).
            reads.pop(event.chain, None)
            if hit is None or event.chain in flagged:
                continue
            read_event, suspend_event = hit
            flagged.add(event.chain)
            read_line = getattr(read_event.node, "lineno", "?")
            suspend_line = getattr(suspend_event.node, "lineno", "?")
            at = suspend_event.detail or "await"
            yield self.finding(
                info,
                event.node or info.node,
                f"'{event.chain}' is read (line {read_line}) and "
                f"written back after the suspension point at line "
                f"{suspend_line} ('{at}') with no guarding lock — "
                "another coroutine can interleave and its update is "
                "lost; capture-and-clear before the await, or hold an "
                "'async with' lock across the read-modify-write",
            )

    @staticmethod
    def _race_for_write(
        write_index: int,
        write: _Event,
        chain_reads: List[Tuple[int, _Event]],
        suspends: List[Tuple[int, _Event]],
    ) -> Optional[Tuple[_Event, _Event]]:
        for read_index, read in chain_reads:
            if read_index >= write_index:
                break
            protected = (
                read.region is not None and read.region == write.region
            )
            if protected:
                continue
            for suspend_index, suspend in suspends:
                if read_index < suspend_index < write_index:
                    return read, suspend
        return None
