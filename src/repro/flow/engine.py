"""The jgflow engine: project-wide rules over a :class:`ProjectContext`.

A :class:`FlowRule` differs from a jglint :class:`~repro.lint.engine.Rule`
in scope only — it checks the whole project at once (module graph,
call graph, cross-function state) instead of one file.  Everything
else is shared with jglint: findings are
:class:`~repro.lint.findings.Finding` records, line-level
``# jglint: disable=JGFxxx`` comments and ``disable-file`` pragmas
suppress exactly as they do for jglint, and the same reporters render
the output.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..lint.engine import FileContext, LintEngine
from ..lint.findings import Finding
from .callgraph import CallGraph
from .project import FunctionInfo, ProjectContext

__all__ = ["FlowEngine", "FlowRule", "default_flow_rules"]


class FlowRule:
    """Base class for project-wide flow rules.

    Subclasses set ``rule_id`` (``JGFxxx``), ``summary``, and
    optionally ``components`` — path components at least one of which
    must appear in a file's path for the rule to analyze it (JGF101
    only polices ``service/`` and ``faults/``).  :meth:`check_project`
    yields findings over the whole project.
    """

    rule_id: str = "JGF000"
    summary: str = ""
    components: Optional[Tuple[str, ...]] = None

    def applies_to(self, context: FileContext) -> bool:
        if self.components is None:
            return True
        return any(
            component in context.path.parts
            for component in self.components
        )

    def check_project(
        self, project: ProjectContext, callgraph: CallGraph
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        info: FunctionInfo,
        node: ast.AST,
        message: str,
    ) -> Finding:
        return Finding(
            path=str(info.context.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            symbol=info.qualname,
        )


class FlowEngine:
    """Run flow rules over a project and apply jglint suppressions.

    Parameters mirror :class:`~repro.lint.engine.LintEngine`:
    ``select``/``ignore`` filter by rule id (``ignore`` wins).
    """

    def __init__(
        self,
        rules: Optional[Sequence[FlowRule]] = None,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        if rules is None:
            rules = default_flow_rules()
        selected = {r.upper() for r in select} if select else None
        ignored = {r.upper() for r in ignore} if ignore else set()
        self.rules: List[FlowRule] = [
            rule
            for rule in rules
            if (selected is None or rule.rule_id in selected)
            and rule.rule_id not in ignored
        ]

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        """Analyze every file under ``paths``; return sorted findings."""
        project = ProjectContext.load(paths)
        return self.run_project(project)

    def run_project(self, project: ProjectContext) -> List[Finding]:
        callgraph = CallGraph(project)
        raw: List[Finding] = [
            Finding(
                path=error.split(": ", 1)[0],
                line=1,
                column=0,
                rule_id="JGF000",
                message=f"could not parse file: {error}",
            )
            for error in project.errors
        ]
        for rule in self.rules:
            raw.extend(rule.check_project(project, callgraph))
        return self._apply_suppressions(project, raw)

    @staticmethod
    def _apply_suppressions(
        project: ProjectContext, raw: Sequence[Finding]
    ) -> List[Finding]:
        by_line: Dict[str, Dict[int, Set[str]]] = {}
        by_file: Dict[str, Set[str]] = {}
        for context in project.files:
            key = str(context.path)
            by_line[key] = LintEngine._line_suppressions(context)
            by_file[key] = LintEngine._file_suppressions(context)
        kept = [
            finding
            for finding in sorted(raw)
            if not LintEngine._is_suppressed(
                finding,
                by_line.get(finding.path, {}),
                by_file.get(finding.path, set()),
            )
        ]
        return kept


def default_flow_rules() -> Sequence[FlowRule]:
    """Fresh instances of the full JGF rule set, in id order."""
    from .atomicity import AsyncAtomicityRule
    from .budgetflow import ZeroSumBudgetRule
    from .dimensions import DimensionalInferenceRule

    return (
        AsyncAtomicityRule(),
        DimensionalInferenceRule(),
        ZeroSumBudgetRule(),
    )
