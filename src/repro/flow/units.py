"""The physical-unit lattice behind JGF201.

Every quantity JouleGuard's math touches is a product of three base
dimensions — energy (J), time (s), and abstract work units — so a unit
is an integer exponent vector ``(energy, time, work)``:

=========  ============  ==========================================
unit       exponents     meaning
=========  ============  ==========================================
J          (1, 0, 0)     energy
s          (0, 1, 0)     time
W          (1, -1, 0)    power, J/s
Hz         (0, -1, 0)    frequency, 1/s
work       (0, 0, 1)     work units (frames, queries, …)
work/s     (0, -1, 1)    service rate
J/work     (1, 0, -1)    energy per work (the paper's ``epw``)
ratio      (0, 0, 0)     dimensionless (factors, poles, ε, …)
=========  ============  ==========================================

On top of the concrete dimensions sit the two lattice bounds:
:data:`BOTTOM` (``unknown`` — no evidence yet; literals start here)
and :data:`TOP` (``conflict`` — contradictory evidence).  The order is
flat: ``BOTTOM ≤ d ≤ TOP`` for every dimension ``d``, and distinct
dimensions are incomparable.  :func:`join` and :func:`meet` are the
usual least-upper/greatest-lower bounds; both are commutative,
associative, and idempotent (property-tested in
``tests/flow/test_units.py``).

Name seeding follows jglint's JG003 suffix conventions (``*_j``,
``*_w``, ``*_s``, …) extended with the vocabulary the paper's
equations use (``work``, ``rate``, ``epw``, ``factor``, ``pole``, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "BOTTOM",
    "ENERGY",
    "EPW",
    "FREQUENCY",
    "POWER",
    "RATE",
    "RATIO",
    "TIME",
    "TOP",
    "Unit",
    "WORK",
    "join",
    "meet",
    "unit_of_name",
]

#: Canonical labels for the dimension vectors named above.
_LABELS: Dict[Tuple[int, int, int], str] = {
    (1, 0, 0): "J",
    (0, 1, 0): "s",
    (1, -1, 0): "W",
    (0, -1, 0): "Hz",
    (0, 0, 1): "work",
    (0, -1, 1): "work/s",
    (1, 0, -1): "J/work",
    (0, 0, 0): "ratio",
}


@dataclass(frozen=True, order=True)
class Unit:
    """One element of the unit lattice.

    ``kind`` is ``"bottom"`` (unknown), ``"dim"`` (a concrete
    dimension vector), or ``"top"`` (conflicting evidence); ``dims``
    is the ``(energy, time, work)`` exponent vector, meaningful only
    when ``kind == "dim"``.
    """

    kind: str
    dims: Tuple[int, int, int] = (0, 0, 0)

    @property
    def is_concrete(self) -> bool:
        return self.kind == "dim"

    @property
    def is_bottom(self) -> bool:
        return self.kind == "bottom"

    @property
    def is_top(self) -> bool:
        return self.kind == "top"

    def label(self) -> str:
        """A human-readable rendering, e.g. ``[J]`` or ``[J·s^2]``."""
        if self.kind == "bottom":
            return "[unknown]"
        if self.kind == "top":
            return "[conflict]"
        known = _LABELS.get(self.dims)
        if known is not None:
            return f"[{known}]"
        parts = []
        for base, exponent in zip(("J", "s", "work"), self.dims):
            if exponent == 1:
                parts.append(base)
            elif exponent != 0:
                parts.append(f"{base}^{exponent}")
        return "[" + "·".join(parts) + "]"

    def mul(self, other: "Unit") -> "Unit":
        """The unit of a product: exponent vectors add."""
        return _combine(self, other, 1)

    def div(self, other: "Unit") -> "Unit":
        """The unit of a quotient: exponent vectors subtract."""
        return _combine(self, other, -1)


def _combine(left: Unit, right: Unit, sign: int) -> Unit:
    if left.is_top or right.is_top:
        return TOP
    if left.is_bottom or right.is_bottom:
        return BOTTOM
    dims = tuple(
        a + sign * b for a, b in zip(left.dims, right.dims)
    )
    return Unit("dim", (dims[0], dims[1], dims[2]))


def join(left: Unit, right: Unit) -> Unit:
    """Least upper bound: agreement stands, disagreement is TOP."""
    if left == right:
        return left
    if left.is_bottom:
        return right
    if right.is_bottom:
        return left
    return TOP


def meet(left: Unit, right: Unit) -> Unit:
    """Greatest lower bound: agreement stands, disagreement is BOTTOM."""
    if left == right:
        return left
    if left.is_top:
        return right
    if right.is_top:
        return left
    return BOTTOM


BOTTOM = Unit("bottom")
TOP = Unit("top")
ENERGY = Unit("dim", (1, 0, 0))
TIME = Unit("dim", (0, 1, 0))
POWER = Unit("dim", (1, -1, 0))
FREQUENCY = Unit("dim", (0, -1, 0))
WORK = Unit("dim", (0, 0, 1))
RATE = Unit("dim", (0, -1, 1))
EPW = Unit("dim", (1, 0, -1))
RATIO = Unit("dim", (0, 0, 0))

#: JG003's suffix conventions, mapped onto the lattice, plus the
#: flow-only suffixes jglint has no dimension for.  Longest first so
#: ``_joules`` wins over ``_s``.
_SUFFIX_UNITS: Dict[str, Unit] = {
    "_joules": ENERGY,
    "_joule": ENERGY,
    "_j": ENERGY,
    "_watts": POWER,
    "_watt": POWER,
    "_w": POWER,
    "_seconds": TIME,
    "_secs": TIME,
    "_sec": TIME,
    "_ms": TIME,
    "_s": TIME,
    "_ghz": FREQUENCY,
    "_hz": FREQUENCY,
    "_epw": EPW,
    "_work": WORK,
    "_rate": RATE,
    "_fraction": RATIO,
    "_ratio": RATIO,
    "_factor": RATIO,
    "_margin": RATIO,
    "_pct": RATIO,
}

#: Exact identifiers the paper's equations use without a suffix.
_EXACT_UNITS: Dict[str, Unit] = {
    "work": WORK,
    "total_work": WORK,
    "remaining_work": WORK,
    "work_done": WORK,
    "rate": RATE,
    "epw": EPW,
    "recent_epw": EPW,
    "default_epw": EPW,
    "factor": RATIO,
    "speedup": RATIO,
    "fraction": RATIO,
    "priority": RATIO,
    "epsilon": RATIO,
    "eps": RATIO,
    "pole": RATIO,
    "smoothing": RATIO,
    "probability": RATIO,
    "prob": RATIO,
}


def unit_of_name(identifier: str) -> Optional[Unit]:
    """The unit an identifier's name advertises, if any.

    Seeded from jglint's JG003 suffix table (``dt_s``, ``budget_j``,
    ``power_w``, …) plus exact names from the paper's vocabulary
    (``work``, ``epw``, ``factor``, …).  Returns ``None`` when the
    name carries no unit evidence.
    """
    lowered = identifier.lower()
    exact = _EXACT_UNITS.get(lowered)
    if exact is not None:
        return exact
    for suffix in sorted(_SUFFIX_UNITS, key=len, reverse=True):
        if lowered.endswith(suffix):
            return _SUFFIX_UNITS[suffix]
    return None
