"""The enforcement ladder: a contract-checked tier state machine.

Severity is summarized by an :class:`OverdraftSignal` and mapped to a
desired :class:`Tier` by a :class:`LadderPolicy`; the
:class:`EnforcementLadder` then moves the *actual* tier toward the
desired one under two rules the contracts make unbreakable:

* **monotone escalation** — the ladder climbs at most one rung per
  observation, so every hard tier is preceded by every softer one
  (in particular, a KILL can never fire before a DEGRADE has been
  attempted);
* **hysteresis** — de-escalation needs ``hold_steps`` consecutive
  observations wanting a lower tier, drops one rung at a time, and
  never leaves KILL (termination is terminal).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.contracts import check

__all__ = [
    "DEFAULT_LADDER",
    "EnforcementLadder",
    "KilledSessionError",
    "LadderPolicy",
    "OverdraftSignal",
    "Tier",
    "TierTransition",
    "monotone_transitions",
    "overdraft_signal",
]


class Tier(enum.IntEnum):
    """Enforcement tiers, ordered by severity of intervention."""

    NOMINAL = 0
    ADVISE = 1
    DEGRADE = 2
    THROTTLE = 3
    KILL = 4

    @property
    def label(self) -> str:
        """Lower-case wire/metric name of the tier."""
        return self.name.lower()


class KilledSessionError(RuntimeError):
    """An operation was attempted on a session the ladder killed."""


@dataclass(frozen=True)
class OverdraftSignal:
    """How badly a session is outrunning its energy grant.

    Parameters
    ----------
    projected_overrun:
        Fraction by which the *projected* total spend (spent so far
        plus forecast remaining spend) exceeds the effective budget;
        0.0 when the forecast lands inside the budget.
    burn_fraction:
        Spent joules over the effective budget (1.0 = hard bound hit).
    headroom_steps:
        Remaining joules divided by the recent per-step energy — how
        many more typical steps fit under the hard bound.  ``inf``
        when no per-step estimate exists yet.
    """

    projected_overrun: float
    burn_fraction: float
    headroom_steps: float

    def __post_init__(self) -> None:
        check(
            self.projected_overrun >= 0.0,
            "projected overrun is a fraction >= 0",
        )
        check(self.burn_fraction >= 0.0, "burn fraction cannot be negative")
        check(self.headroom_steps >= 0.0, "headroom cannot be negative")


def overdraft_signal(
    accountant: Any,
    recent_epw: Optional[float],
    recent_step_energy_j: Optional[float],
) -> OverdraftSignal:
    """Build the ladder's input from a budget accountant's state.

    ``accountant`` is any object with the
    :class:`~repro.core.budget.BudgetAccountant` surface
    (``effective_budget_j``, ``energy_used_j``, ``remaining_work``,
    ``remaining_energy_j``).  ``recent_epw`` is the session's smoothed
    energy-per-work estimate (``None`` before the first measurement);
    ``recent_step_energy_j`` the smoothed per-step energy.
    """
    budget_j = max(accountant.effective_budget_j, 1e-12)
    spent_j = accountant.energy_used_j
    burn_fraction = spent_j / budget_j
    if recent_epw is None:
        projected_overrun = 0.0
    else:
        projected_j = spent_j + recent_epw * accountant.remaining_work
        projected_overrun = max(0.0, projected_j / budget_j - 1.0)
    if recent_step_energy_j is None or recent_step_energy_j <= 0.0:
        headroom_steps = math.inf
    else:
        headroom_steps = max(
            0.0, accountant.remaining_energy_j / recent_step_energy_j
        )
    return OverdraftSignal(
        projected_overrun=projected_overrun,
        burn_fraction=burn_fraction,
        headroom_steps=headroom_steps,
    )


@dataclass(frozen=True)
class LadderPolicy:
    """Thresholds mapping an :class:`OverdraftSignal` to a desired tier.

    Two facts about healthy JouleGuard sessions shape the defaults.
    First, a cold controller *always* forecasts an overrun during early
    exploration (it starts at default energy and converges down), so
    severity above ADVISE is gated on burn fraction: a forecast only
    justifies intervention once a real share of the budget is gone and
    the forecast *still* says overrun.  Second, an on-goal session
    spends its budget exactly, so burn approaches 1 and headroom
    approaches 0 at the natural end of *every* healthy run — low
    headroom alone is therefore never a trigger; hard tiers require a
    large surviving overrun forecast as well.  Measured healthy
    sessions show transient overruns up to ~0.55 below 25 % burn and
    ~0.35 past 50 % burn; the thresholds sit well above those with
    margin, while a genuine runaway (forecast overrun of 1.0+ that
    never decays) crosses them rung by rung long before the hard bound
    — early enough that the one-rung-per-observation climb reaches
    KILL with several typical steps of budget remaining, which is what
    makes the guarantee *exactly* zero overdraft, not asymptotic.

    Parameters
    ----------
    advise_overrun / degrade_overrun / throttle_overrun / kill_overrun:
        Projected-overrun fractions: above ``advise_overrun`` the tier
        is at least ADVISE (ungated); above ``degrade_overrun`` with
        ``burn >= degrade_burn_gate`` it is DEGRADE; above
        ``throttle_overrun`` with ``burn >= hard_burn_gate`` it is
        THROTTLE; above ``kill_overrun`` the headroom conditions below
        apply.
    degrade_burn_gate / hard_burn_gate:
        Burn fractions below which DEGRADE (resp. THROTTLE/KILL) is
        never desired — the controller's grace period to converge.
    throttle_headroom_steps / kill_headroom_steps:
        With ``overrun > kill_overrun`` past the hard burn gate, desire
        THROTTLE when fewer than ``throttle_headroom_steps`` typical
        steps of budget remain, and KILL below ``kill_headroom_steps``.
    hold_steps:
        Consecutive calmer observations required before de-escalating
        one rung (hysteresis).
    throttle_unit_s / throttle_max_s:
        Duty-cycle sleep injected per step while throttled: the unit,
        scaled up with overrun severity, capped at the max.
    """

    advise_overrun: float = 0.02
    degrade_overrun: float = 0.40
    throttle_overrun: float = 0.75
    kill_overrun: float = 0.50
    degrade_burn_gate: float = 0.25
    hard_burn_gate: float = 0.50
    throttle_headroom_steps: float = 20.0
    kill_headroom_steps: float = 8.0
    hold_steps: int = 5
    throttle_unit_s: float = 0.002
    throttle_max_s: float = 0.02

    def __post_init__(self) -> None:
        check(
            0.0 <= self.advise_overrun
            < self.degrade_overrun
            < self.throttle_overrun,
            "overrun thresholds must ascend with tier severity",
        )
        check(
            self.advise_overrun < self.kill_overrun,
            "kill overrun must exceed the advisory threshold",
        )
        check(
            0.0 <= self.degrade_burn_gate <= self.hard_burn_gate < 1.0,
            "burn gates must satisfy 0 <= degrade <= hard < 1",
        )
        check(
            0.0 < self.kill_headroom_steps < self.throttle_headroom_steps,
            "kill headroom must be tighter than throttle headroom",
        )
        check(self.hold_steps >= 1, "hysteresis needs at least one step")
        check(
            0.0 < self.throttle_unit_s <= self.throttle_max_s,
            "throttle sleeps must satisfy 0 < unit <= max",
        )

    def desired_tier(self, signal: OverdraftSignal) -> Tier:
        """The tier this signal's severity calls for (no hysteresis)."""
        hard = signal.burn_fraction >= self.hard_burn_gate
        runaway = signal.projected_overrun > self.kill_overrun
        if (
            hard
            and runaway
            and signal.headroom_steps < self.kill_headroom_steps
        ):
            return Tier.KILL
        if hard and (
            signal.projected_overrun > self.throttle_overrun
            or (
                runaway
                and signal.headroom_steps < self.throttle_headroom_steps
            )
        ):
            return Tier.THROTTLE
        if (
            signal.burn_fraction >= self.degrade_burn_gate
            and signal.projected_overrun > self.degrade_overrun
        ):
            return Tier.DEGRADE
        if signal.projected_overrun > self.advise_overrun:
            return Tier.ADVISE
        return Tier.NOMINAL

    def throttle_s(self, signal: OverdraftSignal) -> float:
        """Duty-cycle sleep for one throttled step, scaled by severity."""
        scale = 1.0 + 4.0 * min(signal.projected_overrun, 1.0)
        return min(self.throttle_max_s, self.throttle_unit_s * scale)


#: The shipped default policy (used by the service daemon).
DEFAULT_LADDER = LadderPolicy()


@dataclass(frozen=True)
class TierTransition:
    """One recorded tier change, for the event log and reports."""

    step: int
    from_tier: Tier
    to_tier: Tier
    projected_overrun: float
    burn_fraction: float
    headroom_steps: float

    def as_dict(self) -> Dict[str, Any]:
        headroom = self.headroom_steps
        return {
            "step": self.step,
            "from": self.from_tier.label,
            "to": self.to_tier.label,
            "projected_overrun": self.projected_overrun,
            "burn_fraction": self.burn_fraction,
            "headroom_steps": headroom if math.isfinite(headroom) else None,
        }


@dataclass
class EnforcementLadder:
    """Per-session enforcement state machine.

    Feed one :class:`OverdraftSignal` per step to :meth:`observe`; read
    :attr:`tier`, :meth:`throttle_s`, and :attr:`transitions` back.
    """

    policy: LadderPolicy = DEFAULT_LADDER
    tier: Tier = Tier.NOMINAL
    degrade_attempted: bool = False
    transitions: List[TierTransition] = field(default_factory=list)
    _calm_streak: int = 0
    _last_signal: Optional[OverdraftSignal] = None

    @property
    def killed(self) -> bool:
        return self.tier is Tier.KILL

    def observe(self, signal: OverdraftSignal, step: int) -> Tier:
        """Fold one step's severity into the ladder; return the tier.

        Escalates at most one rung, de-escalates one rung only after
        ``policy.hold_steps`` consecutive calmer observations, and
        never leaves KILL.  The contracts at the bottom re-state those
        rules as runtime-checked invariants.
        """
        check(step >= 0, "step index cannot be negative")
        if self.killed:
            raise KilledSessionError(
                "ladder is in KILL: the session is terminated"
            )
        previous = self.tier
        self._last_signal = signal
        desired = self.policy.desired_tier(signal)
        if desired > previous:
            new_tier = Tier(previous + 1)
            self._calm_streak = 0
        elif desired < previous:
            self._calm_streak += 1
            if self._calm_streak >= self.policy.hold_steps:
                new_tier = Tier(previous - 1)
                self._calm_streak = 0
            else:
                new_tier = previous
        else:
            self._calm_streak = 0
            new_tier = previous

        # Monotone escalation + hysteresis, as runtime contracts: the
        # ladder moves one rung at a time, and a KILL presupposes a
        # DEGRADE attempt (it climbed through DEGRADE to get there).
        check(
            abs(int(new_tier) - int(previous)) <= 1,
            "ladder may move at most one tier per observation",
        )
        check(
            new_tier is not Tier.KILL or self.degrade_attempted,
            "KILL cannot fire before a DEGRADE has been attempted",
        )
        if new_tier is not previous:
            self.transitions.append(
                TierTransition(
                    step=step,
                    from_tier=previous,
                    to_tier=new_tier,
                    projected_overrun=signal.projected_overrun,
                    burn_fraction=signal.burn_fraction,
                    headroom_steps=signal.headroom_steps,
                )
            )
        self.tier = new_tier
        if new_tier >= Tier.DEGRADE:
            self.degrade_attempted = True
        return new_tier

    def throttle_s(self) -> float:
        """The duty-cycle sleep for the current step (0 unless throttled)."""
        if self.tier is not Tier.THROTTLE or self._last_signal is None:
            return 0.0
        return self.policy.throttle_s(self._last_signal)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary for reports and the event log."""
        return {
            "tier": self.tier.label,
            "degrade_attempted": self.degrade_attempted,
            "transitions": [t.as_dict() for t in self.transitions],
        }


def monotone_transitions(
    transitions: List[Dict[str, Any]],
) -> Tuple[bool, str]:
    """Validate a wire-form transition list against the ladder rules.

    Used by the chaos harness on *reports* (the daemon may be remote):
    every escalation moves exactly one rung up, every de-escalation one
    rung down, nothing follows ``kill``, and any ``kill`` is preceded
    by a transition into ``degrade``.  Returns ``(ok, reason)``.
    """
    order = {tier.label: int(tier) for tier in Tier}
    degrade_seen = False
    previous_to: Optional[str] = None
    for transition in transitions:
        from_tier = str(transition.get("from", ""))
        to_tier = str(transition.get("to", ""))
        if from_tier not in order or to_tier not in order:
            return False, f"unknown tier in transition {transition!r}"
        if previous_to is not None and from_tier != previous_to:
            return False, (
                f"discontinuous ladder: {previous_to} -> {from_tier}"
            )
        if previous_to == Tier.KILL.label:
            return False, "transition recorded after kill"
        if abs(order[to_tier] - order[from_tier]) != 1:
            return False, (
                f"ladder jumped {from_tier} -> {to_tier} (not one rung)"
            )
        if order[to_tier] >= int(Tier.DEGRADE):
            degrade_seen = degrade_seen or to_tier != Tier.KILL.label
        if to_tier == Tier.KILL.label and not degrade_seen:
            return False, "kill fired before a degrade was attempted"
        previous_to = to_tier
    return True, ""
