"""repro.enforce: hard energy guarantees before convergence.

JouleGuard *converges* to its energy budget (Eqns. 7-9), but
convergence is an asymptotic property: early in a run — or under
faults — a session can be burning joules faster than its grant allows.
This package turns "the controller will get there" into a *hard*
guarantee by wrapping every session in an **enforcement ladder**, a
small contract-checked state machine::

    NOMINAL -> ADVISE -> DEGRADE -> THROTTLE -> KILL

* **ADVISE** — the session's projected spend overruns its budget;
  nothing changes yet, but the tier is visible in reports, metrics,
  and the event log.
* **DEGRADE** — the overrun is material; the session is pinned to its
  most conservative known-safe configuration (the existing
  :meth:`~repro.core.jouleguard.JouleGuardRuntime.pin_safe_fallback`
  path) and its forecast surplus is reclaimed for the pool.
* **THROTTLE** — spend is approaching the *hard* budget; duty-cycle
  sleeps are injected into the session's step loop so wall-clock burn
  rate drops while the degraded configuration catches up.
* **KILL** — the hard bound is about to be breached; the session is
  terminated and its budget retired exactly (spent joules retired,
  unspent joules returned to the pool — zero-sum, JGF301-clean).

Runtime contracts (:mod:`repro.core.contracts`) enforce **monotone
escalation** — the ladder climbs one rung per observation, so a KILL
can never fire before a DEGRADE has been attempted — and **hysteresis**
on the way down: de-escalation requires a sustained calm streak, and
KILL is terminal.

The tier is chosen from an :class:`OverdraftSignal` (projected
overrun, burn fraction, and headroom measured in steps), computed the
same way for daemon sessions (:mod:`repro.service.sessions`) and
library coordinators (:class:`repro.core.multi.MultiAppCoordinator`).
"""

from .ladder import (
    DEFAULT_LADDER,
    EnforcementLadder,
    KilledSessionError,
    LadderPolicy,
    OverdraftSignal,
    Tier,
    TierTransition,
    monotone_transitions,
    overdraft_signal,
)
from .vector import (
    desired_tier_array,
    ladder_observe_array,
    overdraft_signal_arrays,
    throttle_s_array,
)

__all__ = [
    "DEFAULT_LADDER",
    "EnforcementLadder",
    "KilledSessionError",
    "LadderPolicy",
    "OverdraftSignal",
    "Tier",
    "TierTransition",
    "desired_tier_array",
    "ladder_observe_array",
    "monotone_transitions",
    "overdraft_signal",
    "overdraft_signal_arrays",
    "throttle_s_array",
]
