"""Elementwise tier arithmetic for the enforcement ladder.

The fleet pool (:mod:`repro.fleet`) steps thousands of sessions per
call, so the ladder must run as array math rather than one
:class:`~repro.enforce.ladder.EnforcementLadder` object per session.
This module provides the three pure pieces — signal, desired tier, and
the one-rung transition with hysteresis — each an elementwise twin of
the scalar code in :mod:`repro.enforce.ladder`:

* every comparison and arithmetic op matches the scalar path exactly
  (same expressions, same operand order), so a row fed the same floats
  produces the same tier;
* KILL remains terminal and escalation monotone: callers drop killed
  rows from the step mask, and the transition rule moves at most one
  rung per observation by construction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .ladder import LadderPolicy, Tier

__all__ = [
    "desired_tier_array",
    "ladder_observe_array",
    "overdraft_signal_arrays",
    "throttle_s_array",
]


def overdraft_signal_arrays(
    effective_budget_j: np.ndarray,
    energy_used_j: np.ndarray,
    remaining_work: np.ndarray,
    remaining_energy_j: np.ndarray,
    recent_epw: np.ndarray,
    recent_step_energy_j: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.enforce.ladder.overdraft_signal`.

    Returns ``(projected_overrun, burn_fraction, headroom_steps)``.
    Rows whose smoothed per-step energy is non-positive get infinite
    headroom, mirroring the scalar ``None`` case.  Callers must pass a
    valid (possibly zero) ``recent_epw`` for every row — the fleet pool
    seeds both EWMAs on a session's first step, exactly as the session
    manager does.
    """
    budget = np.maximum(
        np.asarray(effective_budget_j, dtype=np.float64), 1e-12
    )
    spent = np.asarray(energy_used_j, dtype=np.float64)
    burn_fraction = spent / budget
    projected = spent + recent_epw * remaining_work
    projected_overrun = np.maximum(0.0, projected / budget - 1.0)
    step_energy = np.asarray(recent_step_energy_j, dtype=np.float64)
    has_step = step_energy > 0.0
    headroom_steps = np.where(
        has_step,
        np.maximum(
            0.0,
            remaining_energy_j / np.where(has_step, step_energy, 1.0),
        ),
        np.inf,
    )
    return projected_overrun, burn_fraction, headroom_steps


def desired_tier_array(
    policy: LadderPolicy,
    projected_overrun: np.ndarray,
    burn_fraction: np.ndarray,
    headroom_steps: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`LadderPolicy.desired_tier` (no hysteresis)."""
    overrun = np.asarray(projected_overrun, dtype=np.float64)
    burn = np.asarray(burn_fraction, dtype=np.float64)
    headroom = np.asarray(headroom_steps, dtype=np.float64)
    hard = burn >= policy.hard_burn_gate
    runaway = overrun > policy.kill_overrun
    kill = hard & runaway & (headroom < policy.kill_headroom_steps)
    throttle = hard & (
        (overrun > policy.throttle_overrun)
        | (runaway & (headroom < policy.throttle_headroom_steps))
    )
    degrade = (burn >= policy.degrade_burn_gate) & (
        overrun > policy.degrade_overrun
    )
    advise = overrun > policy.advise_overrun
    desired = np.select(
        [kill, throttle, degrade, advise],
        [
            int(Tier.KILL),
            int(Tier.THROTTLE),
            int(Tier.DEGRADE),
            int(Tier.ADVISE),
        ],
        default=int(Tier.NOMINAL),
    )
    return desired.astype(np.int64)


def ladder_observe_array(
    policy: LadderPolicy,
    tier: np.ndarray,
    calm_streak: np.ndarray,
    desired: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One :meth:`EnforcementLadder.observe` transition per row.

    Pure function of ``(tier, calm_streak, desired)`` — returns
    ``(new_tier, new_calm_streak)``.  Escalation moves exactly one rung
    and resets the calm streak; de-escalation requires
    ``policy.hold_steps`` consecutive calmer observations; an equal
    desire resets the streak.  Callers must exclude already-killed rows
    (the scalar ladder raises for those).
    """
    current = np.asarray(tier, dtype=np.int64)
    calm = np.asarray(calm_streak, dtype=np.int64)
    want = np.asarray(desired, dtype=np.int64)
    escalate = want > current
    calmer = want < current
    calm_next = np.where(calmer, calm + 1, 0)
    drop = calmer & (calm_next >= policy.hold_steps)
    new_tier = np.where(
        escalate, current + 1, np.where(drop, current - 1, current)
    )
    calm_next = np.where(drop, 0, calm_next)
    return new_tier.astype(np.int64), calm_next.astype(np.int64)


def throttle_s_array(
    policy: LadderPolicy,
    tier: np.ndarray,
    projected_overrun: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`LadderPolicy.throttle_s`, gated on THROTTLE."""
    overrun = np.asarray(projected_overrun, dtype=np.float64)
    scale = 1.0 + 4.0 * np.minimum(overrun, 1.0)
    sleep = np.minimum(
        policy.throttle_max_s, policy.throttle_unit_s * scale
    )
    result: np.ndarray = np.where(
        np.asarray(tier, dtype=np.int64) == int(Tier.THROTTLE), sleep, 0.0
    )
    return result
