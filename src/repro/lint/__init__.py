"""jglint — JouleGuard-aware static analysis.

The reproduction's correctness argument rests on invariants ordinary
linters do not know about: the controller pole must stay in [0, 1)
(Eqns. 9–11), VDBE's ε is a probability, energy/power/time quantities
must not mix units, and every stochastic component must draw from an
injected seeded generator or the figures stop being reproducible.
``jglint`` checks those properties statically over the AST::

    python -m repro.lint src benchmarks examples

Rules are ``JG001``–``JG009`` (``--list-rules`` describes them, and
``docs/static_analysis.md`` ties each to the paper).  Line-level
``# jglint: disable=JGxxx`` comments sanction deliberate exceptions;
:mod:`repro.core.contracts` provides the runtime twin of these checks.
"""

from .engine import FileContext, LintEngine, Rule, iter_python_files
from .findings import Finding
from .reporters import render_json, render_sarif, render_text
from .rules import default_rules

__all__ = [
    "FileContext",
    "Finding",
    "LintEngine",
    "Rule",
    "default_rules",
    "iter_python_files",
    "render_json",
    "render_sarif",
    "render_text",
]
