"""The ``python -m repro.lint`` command line.

Exit status: 0 when the tree is clean, 1 when findings were reported,
2 on usage errors (unknown rule ids, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import LintEngine, iter_python_files
from .reporters import render_json, render_text
from .rules import default_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "jglint: JouleGuard-aware static analysis "
            "(seeded randomness, stability ranges, unit discipline, "
            "float equality, mutable defaults, runtime excepts, API "
            "drift)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (recursively)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. JG001,JG004)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    registry = default_rules()
    if options.list_rules:
        for rule in registry:
            scope = (
                f" [only {rule.path_filter}/]" if rule.path_filter else ""
            )
            print(f"{rule.rule_id}{scope}: {rule.summary}")
        return 0

    if not options.paths:
        parser.error("at least one path is required (or --list-rules)")

    known = {rule.rule_id for rule in registry}
    for ids in (_split_ids(options.select), _split_ids(options.ignore)):
        unknown = set(ids or ()) - known
        if unknown:
            parser.error(
                "unknown rule id(s): " + ", ".join(sorted(unknown))
            )

    missing = [path for path in options.paths if not path.exists()]
    if missing:
        parser.error(
            "no such file or directory: "
            + ", ".join(str(path) for path in missing)
        )

    engine = LintEngine(
        rules=registry,
        select=_split_ids(options.select),
        ignore=_split_ids(options.ignore),
    )
    files = list(iter_python_files(options.paths))
    findings = engine.run(options.paths)

    renderer = render_json if options.format == "json" else render_text
    print(renderer(findings, files_checked=len(files)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
