"""The ``python -m repro.lint`` command line.

Exit status: 0 when the tree is clean, 1 when findings were reported,
2 on usage errors (unknown rule ids, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import LintEngine, iter_python_files
from .findings import Finding
from .reporters import render_json, render_sarif, render_text
from .rules import default_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "jglint: JouleGuard-aware static analysis "
            "(seeded randomness, stability ranges, unit discipline, "
            "float equality, mutable defaults, runtime excepts, API "
            "drift)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (recursively)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "also run the jgflow project-wide analyses (JGF101, "
            "JGF201, JGF301) with baseline handling"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help=(
            "accepted jgflow findings (default: jgflow.baseline.json "
            "found at or above the first path; only with --flow)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. JG001,JG004)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    registry = default_rules()
    flow_registry = ()
    if options.flow:
        from ..flow.engine import default_flow_rules

        flow_registry = default_flow_rules()
    if options.list_rules:
        for rule in registry:
            scope = (
                f" [only {rule.path_filter}/]" if rule.path_filter else ""
            )
            print(f"{rule.rule_id}{scope}: {rule.summary}")
        for flow_rule in flow_registry:
            scope = (
                " [only " + ", ".join(
                    f"{component}/"
                    for component in flow_rule.components
                ) + "]"
                if flow_rule.components
                else ""
            )
            print(f"{flow_rule.rule_id}{scope}: {flow_rule.summary}")
        return 0

    if not options.paths:
        parser.error("at least one path is required (or --list-rules)")

    known = {rule.rule_id for rule in registry}
    if options.flow:
        known |= {rule.rule_id for rule in flow_registry} | {"JGF000"}
    for ids in (_split_ids(options.select), _split_ids(options.ignore)):
        unknown = set(ids or ()) - known
        if unknown:
            parser.error(
                "unknown rule id(s): " + ", ".join(sorted(unknown))
            )

    missing = [path for path in options.paths if not path.exists()]
    if missing:
        parser.error(
            "no such file or directory: "
            + ", ".join(str(path) for path in missing)
        )

    select = _split_ids(options.select)
    ignore = _split_ids(options.ignore)
    engine = LintEngine(rules=registry, select=select, ignore=ignore)
    files = list(iter_python_files(options.paths))
    findings = engine.run(options.paths)

    if options.flow:
        findings = findings + _run_flow(parser, options, select, ignore)
        findings.sort()

    if options.format == "json":
        renderer = render_json
    elif options.format == "sarif":
        renderer = render_sarif
    else:
        renderer = render_text
    print(renderer(findings, files_checked=len(files)))
    return 1 if findings else 0


def _run_flow(
    parser: argparse.ArgumentParser,
    options: argparse.Namespace,
    select: Optional[List[str]],
    ignore: Optional[List[str]],
) -> List[Finding]:
    """Run jgflow over the same paths, with baseline handling."""
    from ..flow.baseline import Baseline, find_baseline
    from ..flow.engine import FlowEngine

    flow_select = None
    if select is not None:
        flow_select = [i for i in select if i.startswith("JGF")]
        if not flow_select:
            return []
    flow_ignore = [i for i in ignore or () if i.startswith("JGF")]
    engine = FlowEngine(select=flow_select, ignore=flow_ignore)
    findings = engine.run(options.paths)

    baseline_path = options.baseline
    if baseline_path is not None and not baseline_path.is_file():
        parser.error(f"no such baseline file: {baseline_path}")
    if baseline_path is None:
        baseline_path = find_baseline(options.paths[0])
    if baseline_path is not None:
        baseline = Baseline.load(baseline_path)
        findings, stale = baseline.apply(findings)
        for entry in stale:
            print(
                f"warning: stale baseline entry {entry.rule} "
                f"{entry.path} ({entry.symbol or 'module'}) matches "
                "nothing — delete it",
                file=sys.stderr,
            )
    return findings


if __name__ == "__main__":
    sys.exit(main())
