"""Render jglint findings as text or JSON.

The text reporter is the human-facing default (one ``path:line:col:
JGxxx message`` line per finding plus a summary); the JSON reporter
emits a stable machine-readable document for CI annotation tooling.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from .findings import Finding

__all__ = ["render_json", "render_text"]


def render_text(findings: Sequence[Finding], *, files_checked: int) -> str:
    """The default human-readable report."""
    lines: List[str] = [finding.render() for finding in findings]
    if findings:
        per_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(per_rule.items())
        )
        lines.append("")
        lines.append(
            f"jglint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} in "
            f"{files_checked} file{'s' if files_checked != 1 else ''} "
            f"({breakdown})"
        )
    else:
        lines.append(
            f"jglint: clean ({files_checked} "
            f"file{'s' if files_checked != 1 else ''} checked)"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *, files_checked: int) -> str:
    """A stable JSON document: findings plus summary counts."""
    document = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "files_checked": files_checked,
            "by_rule": dict(
                sorted(
                    Counter(f.rule_id for f in findings).items()
                )
            ),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
