"""Render jglint/jgflow findings as text, JSON, or SARIF.

The text reporter is the human-facing default (one ``path:line:col:
JGxxx message`` line per finding plus a summary); the JSON reporter
emits a stable machine-readable document for CI annotation tooling;
the SARIF reporter targets code-scanning uploads (GitHub renders the
findings as inline PR annotations).  All three are shared between
jglint (``JGxxx``) and jgflow (``JGFxxx``) findings.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from .findings import Finding

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(findings: Sequence[Finding], *, files_checked: int) -> str:
    """The default human-readable report."""
    lines: List[str] = [finding.render() for finding in findings]
    if findings:
        per_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(per_rule.items())
        )
        lines.append("")
        lines.append(
            f"jglint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} in "
            f"{files_checked} file{'s' if files_checked != 1 else ''} "
            f"({breakdown})"
        )
    else:
        lines.append(
            f"jglint: clean ({files_checked} "
            f"file{'s' if files_checked != 1 else ''} checked)"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *, files_checked: int) -> str:
    """A stable JSON document: findings plus summary counts."""
    document = {
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "files_checked": files_checked,
            "by_rule": dict(
                sorted(
                    Counter(f.rule_id for f in findings).items()
                )
            ),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    findings: Sequence[Finding],
    *,
    files_checked: int,
    tool_name: str = "jglint",
) -> str:
    """A minimal SARIF 2.1.0 log for code-scanning uploads.

    ``files_checked`` is accepted for signature parity with the other
    reporters; SARIF has no natural slot for it, so it rides along in
    the run's ``properties`` bag.
    """
    rule_ids = sorted({finding.rule_id for finding in findings})
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
        }
        if finding.symbol:
            result["properties"] = {"symbol": finding.symbol}
        results.append(result)
    log = {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": rule_id},
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": results,
                "properties": {"files_checked": files_checked},
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
