"""The jglint rule engine.

The engine walks Python files, parses each into an AST once, hands a
:class:`FileContext` to every registered rule, and filters the findings
through the suppression comments:

* ``# jglint: disable=JG001`` (or ``=JG001,JG004`` / ``=all``) on the
  violating line suppresses matching findings on that line only;
* ``# jglint: disable-file=JG001`` anywhere in the first ten lines
  suppresses matching findings for the whole file.

Rules are small classes with a ``rule_id``, a one-line ``summary``, and
a ``check(context)`` generator; the registry lives in
:mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .findings import Finding

__all__ = ["FileContext", "LintEngine", "Rule", "iter_python_files"]

#: Inline suppression: ``# jglint: disable=JG001,JG002`` or ``=all``.
_SUPPRESS_RE = re.compile(
    r"#\s*jglint:\s*disable=([A-Za-z0-9_,\s]+)"
)
#: File-level suppression, honoured in the first ten lines only.
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*jglint:\s*disable-file=([A-Za-z0-9_,\s]+)"
)
#: How many leading lines may carry a ``disable-file`` pragma.
_FILE_PRAGMA_WINDOW = 10


def _parse_rule_list(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


@dataclass
class FileContext:
    """Everything a rule may need about one file.

    The AST is parsed once per file and shared by all rules; the raw
    source lines support comment-sensitive checks; ``repo_root`` (the
    directory holding ``src``/``docs``, when discoverable) lets
    project-level rules such as JG007 locate ``docs/api.md``.
    """

    path: Path
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    repo_root: Optional[Path] = None

    @classmethod
    def from_path(
        cls, path: Path, repo_root: Optional[Path] = None
    ) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            repo_root=repo_root or find_repo_root(path),
        )

    def line_at(self, lineno: int) -> str:
        """The 1-based physical source line, or '' out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def module_name(self) -> Optional[str]:
        """Dotted module name when the file sits under a ``repro`` tree."""
        parts = list(self.path.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        for anchor in range(len(parts) - 1, -1, -1):
            if parts[anchor] == "repro":
                return ".".join(parts[anchor:])
        return None


class Rule:
    """Base class for jglint rules.

    Subclasses set ``rule_id`` (``JGxxx``), ``summary`` (one line, shown
    by ``--list-rules``), and implement :meth:`check` yielding
    :class:`Finding` objects.  ``path_filter``, when set, restricts the
    rule to files whose path contains that directory component (used by
    JG006, which only polices ``runtime/``).
    """

    rule_id: str = "JG000"
    summary: str = ""
    path_filter: Optional[str] = None

    def applies_to(self, context: FileContext) -> bool:
        if self.path_filter is None:
            return True
        return self.path_filter in context.path.parts

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(context.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def find_repo_root(path: Path) -> Optional[Path]:
    """Nearest ancestor containing ``docs/api.md`` or ``pyproject.toml``."""
    probe = path.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "docs" / "api.md").is_file():
            return candidate
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


class LintEngine:
    """Run a set of rules over files and apply suppressions.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to the full registry.
    select / ignore:
        Optional rule-id allow/deny lists (``ignore`` wins).
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        selected = {r.upper() for r in select} if select else None
        ignored = {r.upper() for r in ignore} if ignore else set()
        self.rules: List[Rule] = [
            rule
            for rule in rules
            if (selected is None or rule.rule_id in selected)
            and rule.rule_id not in ignored
        ]

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        """Lint every Python file under ``paths``; return sorted findings."""
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.run_file(path))
        return sorted(findings)

    def run_file(self, path: Path) -> List[Finding]:
        try:
            context = FileContext.from_path(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            return [
                Finding(
                    path=str(path),
                    line=getattr(exc, "lineno", None) or 1,
                    column=0,
                    rule_id="JG000",
                    message=f"could not parse file: {exc}",
                )
            ]
        return self.run_context(context)

    def run_context(self, context: FileContext) -> List[Finding]:
        raw: List[Finding] = []
        for rule in self.rules:
            if rule.applies_to(context):
                raw.extend(rule.check(context))
        suppressed_lines = self._line_suppressions(context)
        suppressed_file = self._file_suppressions(context)
        kept = [
            finding
            for finding in sorted(raw)
            if not self._is_suppressed(
                finding, suppressed_lines, suppressed_file
            )
        ]
        return kept

    @staticmethod
    def _line_suppressions(context: FileContext) -> Dict[int, Set[str]]:
        table: Dict[int, Set[str]] = {}
        for number, line in enumerate(context.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                table[number] = _parse_rule_list(match.group(1))
        return table

    @staticmethod
    def _file_suppressions(context: FileContext) -> Set[str]:
        rules: Set[str] = set()
        for line in context.lines[:_FILE_PRAGMA_WINDOW]:
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                rules |= _parse_rule_list(match.group(1))
        return rules

    @staticmethod
    def _is_suppressed(
        finding: Finding,
        by_line: Dict[int, Set[str]],
        by_file: Set[str],
    ) -> bool:
        if "ALL" in by_file or finding.rule_id in by_file:
            return True
        line_rules = by_line.get(finding.line, set())
        return "ALL" in line_rules or finding.rule_id in line_rules
