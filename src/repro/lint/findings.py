"""Finding records emitted by jglint rules.

A :class:`Finding` pins one rule violation to a file/line/column so the
reporters can render it and the engine can apply line-level
suppressions.  Findings order by location, which keeps reports stable
across runs and makes diffs between lint runs meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location.

    Parameters
    ----------
    path:
        File the violation was found in (as given to the engine).
    line / column:
        1-based line and 0-based column, matching ``ast`` conventions.
    rule_id:
        The ``JGxxx`` identifier of the rule that fired.
    message:
        Human-readable description of the specific violation.
    symbol:
        Dotted qualname of the enclosing function, when known.  Flow
        rules (``JGFxxx``) set this so baselines can match findings
        stably across line drift; file-local jglint rules leave it
        empty.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str = field(compare=False)
    symbol: str = field(default="", compare=False)

    def render(self) -> str:
        """The canonical one-line ``path:line:col: JGxxx message`` form."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for the JSON reporter."""
        document: Dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
        }
        if self.symbol:
            document["symbol"] = self.symbol
        return document
