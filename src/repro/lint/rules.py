"""The JouleGuard-specific rule set (JG001–JG008).

Each rule encodes an invariant the reproduction's correctness argument
depends on — see ``docs/static_analysis.md`` for the rule-by-rule
rationale tied to the paper's equations:

* JG001 — all randomness must flow through an injected, seeded
  generator, or figure reproduction is not deterministic;
* JG002 — pole / ε / probability literals must respect their stability
  ranges (Eqns. 2, 9–11);
* JG003 — energy/power/time identifiers carry unit suffixes and may not
  be added or compared across units (J = W·s, so ``*_j + *_w`` is a
  dimensional error);
* JG004 — float ``==``/``!=`` on continuous quantities is almost always
  a bug; sanctioned exact zero-guards carry a suppression;
* JG005 — mutable default arguments alias state across calls;
* JG006 — the runtime layer may not swallow arbitrary exceptions;
* JG007 — ``__all__`` must agree with ``docs/api.md``
  (``tools/gen_api_docs.py --check`` is the CI-side twin);
* JG008 — no blocking calls inside ``async def`` bodies: the service
  daemon multiplexes every session on one event loop, so one
  ``time.sleep`` stalls every client's control loop.
* JG009 — the service and fault-injection layers may not swallow an
  exception without leaving a trace: a daemon that silently eats a
  failure shows healthy stats while sessions rot, and the chaos
  harness cannot assert invariants over errors nobody recorded.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, Rule
from .findings import Finding

__all__ = [
    "ApiDriftRule",
    "BlockingAsyncCallRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "OverbroadExceptRule",
    "SwallowedExceptionRule",
    "UnitMismatchRule",
    "UnseededRandomnessRule",
    "UnstableConstantRule",
    "default_rules",
]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _numeric_literal(node: ast.AST) -> Optional[float]:
    """The value of an int/float literal (handling unary +/-), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        inner = _numeric_literal(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    return None


class UnseededRandomnessRule(Rule):
    """JG001: randomness must come from an injected, seeded generator."""

    rule_id = "JG001"
    summary = (
        "module-level random.*/np.random.* call instead of an injected "
        "seeded Generator"
    )

    #: numpy.random constructors that are fine *when given a seed*.
    _SEEDED_CTORS = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "RandomState",
            "PCG64",
            "PCG64DXSM",
            "MT19937",
            "Philox",
            "SFC64",
        }
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        aliases = self._collect_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(context, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(context, node, aliases)

    @staticmethod
    def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
        """Map local names to the canonical modules they alias."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name in ("random", "numpy", "numpy.random"):
                        local = item.asname or item.name.split(".")[0]
                        canonical = (
                            "numpy" if item.name == "numpy" else item.name
                        )
                        aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for item in node.names:
                        if item.name == "random":
                            aliases[item.asname or "random"] = "numpy.random"
        return aliases

    def _check_import_from(
        self, context: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module == "random":
            names = ", ".join(item.name for item in node.names)
            yield self.finding(
                context,
                node,
                f"'from random import {names}' pulls functions bound to "
                "the global, unseeded RNG; inject a seeded "
                "random.Random(seed) instead",
            )
        elif node.module == "numpy.random":
            bad = [
                item.name
                for item in node.names
                if item.name not in self._SEEDED_CTORS
            ]
            if bad:
                yield self.finding(
                    context,
                    node,
                    "'from numpy.random import "
                    + ", ".join(bad)
                    + "' uses the legacy global RNG; use "
                    "np.random.default_rng(seed) and pass the Generator",
                )

    def _check_call(
        self, context: FileContext, node: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        dotted = _dotted_name(node.func)
        if dotted is None or "." not in dotted:
            return
        head, rest = dotted.split(".", 1)
        canonical = aliases.get(head)
        if canonical is None:
            return
        path = f"{canonical}.{rest}"
        if path.startswith("random."):
            fn = path.split(".", 1)[1]
            if fn == "Random" and node.args:
                return  # random.Random(seed): explicit, reproducible.
            yield self.finding(
                context,
                node,
                f"call to global-state '{dotted}()'; draw from an "
                "injected seeded Generator (np.random.default_rng(seed) "
                "or random.Random(seed)) instead",
            )
        elif path.startswith("numpy.random."):
            fn = path.split(".", 2)[2].split(".")[0]
            if fn in self._SEEDED_CTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        context,
                        node,
                        f"'{dotted}()' without a seed is entropy-seeded "
                        "and not reproducible; pass an explicit seed",
                    )
                return
            yield self.finding(
                context,
                node,
                f"legacy global-RNG call '{dotted}()'; use an injected "
                "np.random.default_rng(seed) Generator instead",
            )


#: name (exact or ``*_name`` suffix) → (low, high, high_inclusive).
#: All ranges are closed at the bottom; ``pole`` and ``smoothing`` are
#: open at 1 (a pole on the unit circle is marginally stable, Eqn. 9).
_RANGED_NAMES: Dict[str, Tuple[float, float, bool]] = {
    "pole": (0.0, 1.0, False),
    "smoothing": (0.0, 1.0, False),
    "epsilon": (0.0, 1.0, True),
    "eps": (0.0, 1.0, True),
    "probability": (0.0, 1.0, True),
    "prob": (0.0, 1.0, True),
}


def _range_for(name: str) -> Optional[Tuple[str, float, float, bool]]:
    lowered = name.lower()
    for key, (low, high, inclusive) in _RANGED_NAMES.items():
        if lowered == key or lowered.endswith("_" + key):
            return key, low, high, inclusive
    return None


class UnstableConstantRule(Rule):
    """JG002: pole/ε/probability literals must sit in their stable range."""

    rule_id = "JG002"
    summary = (
        "pole/epsilon/probability literal outside its stability range "
        "(pole in [0,1), Eqns. 9-11; probabilities in [0,1])"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        yield from self._check_binding(
                            context, keyword.arg, keyword.value
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield from self._check_binding(
                            context, target.id, node.value
                        )
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value:
                    yield from self._check_binding(
                        context, node.target.id, node.value
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(context, node)

    def _check_defaults(
        self, context: FileContext, node: ast.FunctionDef
    ) -> Iterator[Finding]:
        positional = node.args.posonlyargs + node.args.args
        for arg, default in zip(
            positional[len(positional) - len(node.args.defaults):],
            node.args.defaults,
        ):
            yield from self._check_binding(context, arg.arg, default)
        for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if default is not None:
                yield from self._check_binding(context, arg.arg, default)

    def _check_binding(
        self, context: FileContext, name: str, value: ast.AST
    ) -> Iterator[Finding]:
        info = _range_for(name)
        if info is None:
            return
        literal = _numeric_literal(value)
        if literal is None:
            return
        key, low, high, inclusive = info
        in_range = (literal >= low) and (
            literal <= high if inclusive else literal < high
        )
        if not in_range:
            bracket = "]" if inclusive else ")"
            yield self.finding(
                context,
                value,
                f"'{name}' = {literal!r} is outside the stable range "
                f"[{low}, {high}{bracket} required of '{key}' values",
            )


#: identifier suffix → physical dimension.
_UNIT_SUFFIXES: Dict[str, str] = {
    "_j": "energy [J]",
    "_joule": "energy [J]",
    "_joules": "energy [J]",
    "_w": "power [W]",
    "_watt": "power [W]",
    "_watts": "power [W]",
    "_s": "time [s]",
    "_sec": "time [s]",
    "_secs": "time [s]",
    "_seconds": "time [s]",
    "_ms": "time [s]",
    "_hz": "frequency [Hz]",
    "_ghz": "frequency [Hz]",
}


def _dimension_of(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(identifier, dimension) when the operand names a united quantity."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    lowered = name.lower()
    # Longest suffix first so ``_joules`` wins over ``_s``.
    for suffix in sorted(_UNIT_SUFFIXES, key=len, reverse=True):
        if lowered.endswith(suffix):
            return name, _UNIT_SUFFIXES[suffix]
    return None


class UnitMismatchRule(Rule):
    """JG003: no +/-/comparison across different unit suffixes."""

    rule_id = "JG003"
    summary = (
        "energy/power/time identifiers with conflicting unit suffixes "
        "combined additively (e.g. *_joules + *_watts)"
    )

    _COMPARE_OPS = (
        ast.Eq,
        ast.NotEq,
        ast.Lt,
        ast.LtE,
        ast.Gt,
        ast.GtE,
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    context, node, node.left, node.right, "added/subtracted"
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    context, node, node.target, node.value, "accumulated"
                )
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], self._COMPARE_OPS):
                    yield from self._check_pair(
                        context,
                        node,
                        node.left,
                        node.comparators[0],
                        "compared",
                    )

    def _check_pair(
        self,
        context: FileContext,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        verb: str,
    ) -> Iterator[Finding]:
        left_info = _dimension_of(left)
        right_info = _dimension_of(right)
        if left_info is None or right_info is None:
            return
        (left_name, left_dim), (right_name, right_dim) = left_info, right_info
        if left_dim != right_dim:
            yield self.finding(
                context,
                node,
                f"'{left_name}' ({left_dim}) and '{right_name}' "
                f"({right_dim}) {verb} across units — dimensional error "
                "(J = W*s; convert explicitly)",
            )


class FloatEqualityRule(Rule):
    """JG004: no ``==``/``!=`` against float literals."""

    rule_id = "JG004"
    summary = (
        "float ==/!= on energy/accuracy/rate values; use math.isclose, a "
        "sign check, or mark a sanctioned zero-guard with a suppression"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = next(
                    (
                        side
                        for side in (left, right)
                        if isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                    ),
                    None,
                )
                if literal is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        context,
                        node,
                        f"float '{symbol} {literal.value!r}' comparison; "
                        "use math.isclose / a sign check, or suppress a "
                        "sanctioned exact zero-guard",
                    )


class MutableDefaultRule(Rule):
    """JG005: no mutable default arguments."""

    rule_id = "JG005"
    summary = "mutable default argument aliases state across calls"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                defaults = list(node.args.defaults) + [
                    default
                    for default in node.args.kw_defaults
                    if default is not None
                ]
                for default in defaults:
                    if self._is_mutable(default):
                        yield self.finding(
                            context,
                            default,
                            "mutable default argument is shared across "
                            "calls; default to None (or use "
                            "dataclasses.field(default_factory=...))",
                        )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (
                ast.List,
                ast.Dict,
                ast.Set,
                ast.ListComp,
                ast.DictComp,
                ast.SetComp,
            ),
        ):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return name in self._MUTABLE_CALLS
        return False


class OverbroadExceptRule(Rule):
    """JG006: the runtime layer may not swallow arbitrary exceptions."""

    rule_id = "JG006"
    summary = (
        "bare/overbroad except in runtime/ hides budget-accounting "
        "failures; catch specific exceptions or re-raise"
    )
    path_filter = "runtime"

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if self._reraises(node):
                continue
            yield self.finding(
                context,
                node,
                f"{broad} silently absorbs control-loop errors; catch "
                "the specific exception or re-raise after cleanup",
            )

    def _broad_name(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return "bare 'except:'"
        names: List[Optional[str]]
        if isinstance(node, ast.Tuple):
            names = [_dotted_name(element) for element in node.elts]
        else:
            names = [_dotted_name(node)]
        for name in names:
            if name is not None and name.split(".")[-1] in self._BROAD:
                return f"'except {name}'"
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(stmt, ast.Raise) for stmt in ast.walk(handler)
        )


class ApiDriftRule(Rule):
    """JG007: every ``__all__`` name must be documented in docs/api.md."""

    rule_id = "JG007"
    summary = (
        "__all__ drifted from docs/api.md; regenerate with "
        "'python tools/gen_api_docs.py' (CI runs --check)"
    )

    def __init__(self) -> None:
        self._api_cache: Dict[Path, Optional[str]] = {}

    def _api_doc(self, repo_root: Optional[Path]) -> Optional[str]:
        if repo_root is None:
            return None
        if repo_root not in self._api_cache:
            candidate = repo_root / "docs" / "api.md"
            self._api_cache[repo_root] = (
                candidate.read_text(encoding="utf-8")
                if candidate.is_file()
                else None
            )
        return self._api_cache[repo_root]

    def check(self, context: FileContext) -> Iterator[Finding]:
        module = context.module_name()
        if module is None:
            return
        api_doc = self._api_doc(context.repo_root)
        if api_doc is None:
            return
        for node in context.tree.body:
            names = self._all_names(node)
            if names is None:
                continue
            missing = [
                name
                for name in names
                if not re.search(
                    r"- `" + re.escape(name) + r"[`(]", api_doc
                )
            ]
            if missing:
                yield self.finding(
                    context,
                    node,
                    f"__all__ of '{module}' lists "
                    + ", ".join(repr(name) for name in missing)
                    + " but docs/api.md does not document "
                    + ("it" if len(missing) == 1 else "them")
                    + "; run 'python tools/gen_api_docs.py'",
                )

    @staticmethod
    def _all_names(node: ast.stmt) -> Optional[List[str]]:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            return None
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            return None
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return None
        names = []
        for element in node.value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.append(element.value)
        return names


class BlockingAsyncCallRule(Rule):
    """JG008: no blocking calls inside ``async def`` bodies.

    The service daemon hosts every session on one event loop; a single
    blocking call inside a coroutine stalls *all* concurrent control
    loops (and their energy accounting) at once.  Flags, directly
    inside an ``async def`` body:

    * ``time.sleep()`` (use ``await asyncio.sleep()``);
    * bare ``input()``;
    * ``socket.create_connection()`` without a ``timeout=`` keyword;
    * blocking calls on socket-like objects (``.accept()``,
      ``.recv()``, ...) — use ``loop.sock_*`` or asyncio streams.

    Nested synchronous ``def``/``lambda`` bodies are exempt: defining a
    blocking helper inside a coroutine does not block the loop (it only
    blocks if *called* there, which is flagged at the call site when the
    call is written in the coroutine itself).
    """

    rule_id = "JG008"
    summary = (
        "blocking call (time.sleep / bare input / un-timed socket op) "
        "inside an async def stalls every session on the event loop"
    )
    path_filter = "repro"

    _SOCKET_METHODS = frozenset(
        {"accept", "connect", "recv", "recvfrom", "recv_into", "sendall"}
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        sleep_aliases = self._time_sleep_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(
                    context, node, sleep_aliases
                )

    @staticmethod
    def _time_sleep_aliases(tree: ast.Module) -> Set[str]:
        """Local names bound to ``time.sleep`` via ``from time import``."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for item in node.names:
                    if item.name == "sleep":
                        aliases.add(item.asname or item.name)
        return aliases

    def _body_nodes(
        self, function: ast.AsyncFunctionDef
    ) -> Iterator[ast.AST]:
        """Nodes executed *by this coroutine* (nested defs excluded)."""
        stack: List[ast.AST] = list(function.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue  # own scope: visited separately if async
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_coroutine(
        self,
        context: FileContext,
        function: ast.AsyncFunctionDef,
        sleep_aliases: Set[str],
    ) -> Iterator[Finding]:
        for node in self._body_nodes(function):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    context, function, node, sleep_aliases
                )

    def _check_call(
        self,
        context: FileContext,
        function: ast.AsyncFunctionDef,
        node: ast.Call,
        sleep_aliases: Set[str],
    ) -> Iterator[Finding]:
        where = f"'async def {function.name}'"
        dotted = _dotted_name(node.func)
        if dotted == "time.sleep" or (
            dotted is not None and dotted in sleep_aliases
        ):
            yield self.finding(
                context,
                node,
                f"blocking '{dotted}()' inside {where} stalls the event "
                "loop and every session on it; use "
                "'await asyncio.sleep()'",
            )
            return
        if dotted == "input":
            yield self.finding(
                context,
                node,
                f"'input()' inside {where} blocks the event loop on the "
                "terminal; read via a thread or a stream instead",
            )
            return
        if dotted is not None and dotted.endswith(
            ".create_connection"
        ) and dotted.split(".")[0] in ("socket",):
            if not any(
                keyword.arg == "timeout" for keyword in node.keywords
            ):
                yield self.finding(
                    context,
                    node,
                    f"'{dotted}()' without 'timeout=' inside {where} can "
                    "block the event loop indefinitely; pass a timeout "
                    "or use 'await asyncio.open_connection()'",
                )
            return
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in self._SOCKET_METHODS
        ):
            receiver = _dotted_name(node.func.value)
            if receiver is not None and "sock" in receiver.lower():
                yield self.finding(
                    context,
                    node,
                    f"blocking socket call '{receiver}."
                    f"{node.func.attr}()' inside {where}; use "
                    f"'loop.sock_{node.func.attr}()' or asyncio streams",
                )


class SwallowedExceptionRule(Rule):
    """JG009: service/faults except clauses must leave a trace.

    The daemon's contract is that failures are *observable*: every
    ``except`` in :mod:`repro.service` and :mod:`repro.faults` must
    either re-raise or record evidence the exception happened.  An
    except body counts as recording when it does any of:

    * re-raise (any ``raise`` statement, including ``raise X from e``);
    * read the bound exception name (``except E as exc`` with ``exc``
      used — building an error envelope, stashing ``last_error``, ...);
    * bump a counter (``self.connection_errors += 1``);
    * call a recorder — a function or method whose dotted name contains
      a logging/metrics verb (``log``, ``warn``, ``error``, ``record``,
      ``metric``, ``count``, ...);
    * assign to an error-evidence name (``sensor_lost``,
      ``close_reason``, ``*_failures``, ...).

    Anything else is a silent swallow: the daemon keeps serving healthy
    stats while sessions rot, and the chaos harness cannot assert
    invariants over errors nobody recorded.
    """

    rule_id = "JG009"
    summary = (
        "except clause in service/faults swallows the exception without "
        "re-raising or recording a metric/log"
    )

    _PATH_COMPONENTS = ("service", "faults")

    #: Substrings marking a call as a recording/telemetry operation.
    _RECORDING_VERBS = (
        "log",
        "warn",
        "error",
        "exception",
        "record",
        "metric",
        "incr",
        "count",
        "note",
        "debug",
        "info",
        "audit",
        "trace",
    )

    #: Substrings marking an assignment target as error evidence.
    _EVIDENCE_NAMES = (
        "error",
        "fail",
        "lost",
        "dropped",
        "skipped",
        "degraded",
        "reason",
        "warning",
    )

    def applies_to(self, context: FileContext) -> bool:
        return any(
            component in context.path.parts
            for component in self._PATH_COMPONENTS
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._leaves_trace(node):
                continue
            caught = self._caught_names(node.type)
            yield self.finding(
                context,
                node,
                f"'except {caught}' swallows the exception without "
                "re-raising or recording it (no counter bump, log/metric "
                "call, or use of the bound exception); silent failures "
                "hide degraded sessions",
            )

    @staticmethod
    def _caught_names(node: Optional[ast.AST]) -> str:
        if node is None:
            return ":"
        if isinstance(node, ast.Tuple):
            names = [
                _dotted_name(element) or "?" for element in node.elts
            ]
            return "(" + ", ".join(names) + ")"
        return _dotted_name(node) or "?"

    def _leaves_trace(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                return True
            if isinstance(node, ast.Call) and self._is_recorder(node):
                return True
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                if self._assigns_evidence(node):
                    return True
        return False

    def _is_recorder(self, node: ast.Call) -> bool:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return False
        lowered = dotted.lower()
        return any(verb in lowered for verb in self._RECORDING_VERBS)

    def _assigns_evidence(self, node: ast.stmt) -> bool:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            return False
        for target in targets:
            name = _dotted_name(target)
            if name is None:
                continue
            lowered = name.lower()
            if any(
                evidence in lowered
                for evidence in self._EVIDENCE_NAMES
            ):
                return True
        return False


def default_rules() -> Sequence[Rule]:
    """Fresh instances of the full JG rule set, in id order."""
    return (
        UnseededRandomnessRule(),
        UnstableConstantRule(),
        UnitMismatchRule(),
        FloatEqualityRule(),
        MutableDefaultRule(),
        OverbroadExceptRule(),
        ApiDriftRule(),
        BlockingAsyncCallRule(),
        SwallowedExceptionRule(),
    )
