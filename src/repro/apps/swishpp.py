"""swish++: document search with a result-count knob (PowerDial).

Table 2: 6 configurations, 1.52x max speedup, 83.4 % max accuracy loss,
accuracy metric precision and recall.  PowerDial converts swish++'s
``max_results`` parameter (Sec. 2); truncating the ranked result list
saves ranking/serialization work but discards results, which is why this
benchmark has by far the largest accuracy loss in the suite.

swish++ is a web-server workload and does not run on Mobile (Sec. 4.1).

:func:`measure_kernel_tradeoff` runs the real inverted-index engine from
:mod:`repro.kernels.search` over a synthetic Gutenberg-like corpus with a
power-law query stream — the paper's own experimental setup (footnote 1).
"""

from __future__ import annotations

from typing import List, Tuple

from ..hw.profiles import AppResourceProfile
from ..kernels.corpus import QueryGenerator, SyntheticCorpus
from ..kernels.search import SearchEngine, f1_score
from .base import ApproximateApplication
from .powerdial import build_table, calibrated_knob

PROFILE = AppResourceProfile(
    name="swish++",
    base_rate=150.0,
    parallel_fraction=0.98,
    clock_sensitivity=0.75,
    memory_boundness=0.45,
    ht_gain=0.4,
    activity_factor=0.85,
)

N_CONFIGS = 6
MAX_SPEEDUP = 1.52
MAX_ACCURACY_LOSS = 0.834
ACCURACY_METRIC = "precision and recall"

#: max_results settings; 0 means unlimited (the default).
RESULT_LIMITS = (0, 100, 50, 25, 10, 5)


def build() -> ApproximateApplication:
    """Construct the swish++ application with its 6-config table."""
    max_results = calibrated_knob(
        "max_results",
        values=tuple(float(v) for v in RESULT_LIMITS),
        max_speedup=MAX_SPEEDUP,
        max_accuracy_loss=MAX_ACCURACY_LOSS,
        loss_exponent=1.0,
    )
    table = build_table([max_results], jitter=0.0, seed=6)
    return ApproximateApplication(
        name="swish",
        framework="powerdial",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="query",
        platforms=("tablet", "server"),
    )


def measure_kernel_tradeoff(
    n_queries: int = 50, seed: int = 0
) -> List[Tuple[float, float]]:
    """Answer real queries at each truncation level; (limit, mean F1).

    Returns (max_results, accuracy) pairs — accuracy is mean F1 against
    the unlimited result list, which decreases monotonically with harsher
    truncation (the structure JouleGuard's Eqn. 6 relies on).
    """
    corpus = SyntheticCorpus(n_docs=120, vocabulary_size=1200, seed=seed)
    engine = SearchEngine(corpus)
    queries = QueryGenerator(corpus, seed=seed + 1).batch(n_queries)
    points = []
    for limit in RESULT_LIMITS:
        scores = []
        for query in queries:
            reference = engine.search(query)
            returned = (
                reference if limit == 0 else engine.search(query, limit)
            )
            scores.append(f1_score(returned, reference))
        points.append((float(limit), sum(scores) / len(scores)))
    return points
