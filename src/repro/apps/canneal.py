"""canneal: simulated-annealing place-and-route (Loop Perforation).

Table 2: 3 configurations, 1.93x max speedup, 7.1 % max accuracy loss,
accuracy metric wire length.  Perforation skips swap evaluations in the
per-temperature move loop; the loop covers most of the runtime but
skipped moves cost routing quality.

canneal is an engineering workload and does not run on Mobile (Sec. 4.1).

:func:`measure_kernel_tradeoff` anneals a real synthetic netlist with
:mod:`repro.kernels.annealing` at matching perforation rates.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hw.profiles import AppResourceProfile
from ..kernels.annealing import Annealer, Netlist, Placement, route_quality
from .base import ApproximateApplication
from .perforation import PerforatableLoop, build_table, rates_for_speedups

PROFILE = AppResourceProfile(
    name="canneal",
    base_rate=3.0,
    parallel_fraction=0.70,
    clock_sensitivity=0.75,
    memory_boundness=0.7,
    ht_gain=0.3,
    activity_factor=0.8,
)

N_CONFIGS = 3
MAX_SPEEDUP = 1.93
MAX_ACCURACY_LOSS = 0.071
ACCURACY_METRIC = "wire length"

#: The perforated swap-evaluation loop: ~80 % of runtime.
SWAP_LOOP = PerforatableLoop(
    name="swap_evaluation",
    runtime_share=0.8,
    quality_sensitivity=0.152,
    loss_exponent=1.5,
)


def build() -> ApproximateApplication:
    """Construct the canneal application with its 3-config table."""
    (mid_rate, max_rate) = rates_for_speedups(SWAP_LOOP, (1.4, MAX_SPEEDUP))
    table = build_table(SWAP_LOOP, rates=(0.0, mid_rate, max_rate))
    return ApproximateApplication(
        name="canneal",
        framework="loop_perforation",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="netlist",
        platforms=("tablet", "server"),
    )


def measure_kernel_tradeoff(seed: int = 0) -> List[Tuple[float, float]]:
    """Anneal a real netlist at each perforation level; (fraction, quality).

    Returns (moves_fraction, route quality vs. the full run) — quality
    degrades as more of the move loop is perforated away.
    """
    netlist = Netlist(n_elements=49, seed=seed)
    reference_placement = Placement(netlist, seed=seed + 1)
    reference_length = Annealer(
        moves_per_temp=120, moves_fraction=1.0, seed=seed + 2
    ).anneal(reference_placement)
    points = [(1.0, 1.0)]
    for fraction in (0.5, 0.2):
        placement = Placement(netlist, seed=seed + 1)
        wire_length = Annealer(
            moves_per_temp=120, moves_fraction=fraction, seed=seed + 2
        ).anneal(placement)
        points.append((fraction, route_quality(wire_length, reference_length)))
    return points
