"""Loop Perforation (Sidiroglou-Douskos et al., ESEC/FSE'11).

Loop perforation transforms loops to skip a fraction of their iterations.
A perforated application's configuration is a *perforation rate* per
tunable loop; speedup follows from the share of runtime the loop covers
(Amdahl over the loop), and accuracy is measured by the application's
quality metric on training inputs.

This module provides:

* :func:`perforate` — the core iteration-skipping transform, usable
  directly on any Python iterable (the kernels use it in examples/tests),
* :class:`PerforatableLoop` — a profiled loop: runtime share + how
  quality degrades with skipped iterations,
* :func:`build_table` — configuration table over a schedule of
  perforation rates for one loop (the paper's canneal / ferret /
  streamcluster tables are small: 3, 8 and 7 configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, TypeVar

from .base import AppConfig, ConfigTable

T = TypeVar("T")


def perforate(iterable: Iterable[T], rate: float) -> Iterator[T]:
    """Yield items of ``iterable``, skipping a ``rate`` fraction evenly.

    ``rate`` 0 yields everything; 0.5 yields every other item; the
    skipping pattern is deterministic and evenly spread (the standard
    modulo perforation transform).
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError("perforation rate must be in [0, 1)")
    if rate <= 0.0:
        yield from iterable
        return
    keep_period = 1.0 / (1.0 - rate)
    next_keep = 0.0
    for i, item in enumerate(iterable):
        if i >= next_keep:
            yield item
            next_keep += keep_period


@dataclass(frozen=True)
class PerforatableLoop:
    """Profile of one perforatable loop.

    Parameters
    ----------
    name:
        Loop identifier (e.g. ``"swap_evaluation"``).
    runtime_share:
        Fraction of total runtime spent in this loop; bounds the speedup
        via Amdahl's law (skipping everything yields
        ``1 / (1 - runtime_share)``).
    quality_sensitivity:
        Accuracy loss when the loop is fully perforated; loss scales as
        ``sensitivity * rate ** loss_exponent``.
    loss_exponent:
        Convexity of the loss curve (skipping the first few iterations is
        usually nearly free).
    """

    name: str
    runtime_share: float
    quality_sensitivity: float
    loss_exponent: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 < self.runtime_share < 1.0:
            raise ValueError("runtime_share must be in (0, 1)")
        if not 0.0 <= self.quality_sensitivity < 1.0:
            raise ValueError("quality_sensitivity must be in [0, 1)")
        if self.loss_exponent <= 0:
            raise ValueError("loss_exponent must be positive")

    def speedup(self, rate: float) -> float:
        """Amdahl speedup of perforating this loop at ``rate``."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        return 1.0 / (1.0 - self.runtime_share * rate)

    def accuracy(self, rate: float) -> float:
        """Quality retained when perforating at ``rate``."""
        return 1.0 - self.quality_sensitivity * rate**self.loss_exponent


def build_table(
    loop: PerforatableLoop,
    rates: Sequence[float],
    power_coupling: float = 0.05,
) -> ConfigTable:
    """Configuration table over perforation ``rates`` (first must be 0)."""
    if not rates:
        raise ValueError("need at least one rate")
    # The default config is *exactly* rate 0 by construction, so an
    # exact sentinel test is correct here.
    if rates[0] != 0.0:  # jglint: disable=JG004
        raise ValueError("first rate must be 0 (the default configuration)")
    configs = []
    for index, rate in enumerate(rates):
        speedup = loop.speedup(rate)
        power_factor = 1.0 - power_coupling * (1.0 - 1.0 / speedup)
        configs.append(
            AppConfig(
                index=index,
                speedup=speedup,
                accuracy=loop.accuracy(rate),
                knob_settings=((f"{loop.name}_rate", rate),),
                power_factor=power_factor,
            )
        )
    return ConfigTable(configs)


def rates_for_speedups(
    loop: PerforatableLoop, speedups: Sequence[float]
) -> list:
    """Invert :meth:`PerforatableLoop.speedup` for a speedup schedule.

    Useful when reproducing a published table (e.g. canneal's 1.93x) —
    the perforation rates are solved so the loop delivers exactly the
    published speedups.
    """
    rates = []
    for target in speedups:
        if target < 1.0:
            raise ValueError("speedups must be >= 1")
        rate = (1.0 - 1.0 / target) / loop.runtime_share
        if rate >= 1.0:
            raise ValueError(
                f"speedup {target} unreachable with runtime share "
                f"{loop.runtime_share}"
            )
        rates.append(rate)
    return rates
