"""swaptions: Monte-Carlo option pricing (PowerDial).

Table 2: 100 configurations, 100.35x max speedup, 1.5 % max accuracy
loss, accuracy metric swaption price.  PowerDial's knob is the number of
simulation trials; with work linear in trials, 100 geometrically spaced
trial counts span the 100x range, and pricing error grows as
``1/sqrt(trials)`` — slow at first, fast at the very end, which the
convex loss curve models.

:func:`measure_kernel_tradeoff` prices a real swaption with
:mod:`repro.kernels.montecarlo` at matching trial counts.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hw.profiles import AppResourceProfile
from ..kernels.montecarlo import (
    MarketModel,
    Swaption,
    price_swaption,
    pricing_accuracy,
)
from .base import ApproximateApplication
from .powerdial import build_table, calibrated_knob

PROFILE = AppResourceProfile(
    name="swaptions",
    base_rate=2.0,
    parallel_fraction=0.99,
    clock_sensitivity=1.0,
    memory_boundness=0.05,
    ht_gain=0.15,
    activity_factor=1.1,
)

N_CONFIGS = 100
MAX_SPEEDUP = 100.35
MAX_ACCURACY_LOSS = 0.015
ACCURACY_METRIC = "swaption price"

#: Full-accuracy trial count; configuration i uses trials / speedup_i.
DEFAULT_TRIALS = 1_000_000


def build() -> ApproximateApplication:
    """Construct the swaptions application with its 100-config table."""
    trials = calibrated_knob(
        "sim_trials",
        values=tuple(
            round(DEFAULT_TRIALS / MAX_SPEEDUP ** (i / (N_CONFIGS - 1)))
            for i in range(N_CONFIGS)
        ),
        max_speedup=MAX_SPEEDUP,
        max_accuracy_loss=MAX_ACCURACY_LOSS,
        loss_exponent=2.0,
    )
    table = build_table([trials], jitter=0.004, seed=100)
    return ApproximateApplication(
        name="swaptions",
        framework="powerdial",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="swaption",
    )


def measure_kernel_tradeoff(seed: int = 0) -> List[Tuple[float, float]]:
    """Price a real swaption at falling trial counts; (speedup, accuracy).

    Speedup is the trial-count ratio (work is linear in trials); accuracy
    is 1 - relative price error against the largest trial count.
    """
    swaption = Swaption()
    market = MarketModel()
    counts = (40_000, 10_000, 2_500, 600, 150)
    reference = price_swaption(swaption, market, counts[0], seed=seed)
    points = []
    for count in counts:
        price = price_swaption(swaption, market, count, seed=seed + 1)
        points.append(
            (counts[0] / count, pricing_accuracy(price, reference))
        )
    return points
