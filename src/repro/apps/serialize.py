"""Save and load configuration tables (and profiled applications).

Profiling a real application (``repro.apps.profiling``) can take long;
the results should be reusable across runs.  Tables serialize to a
stable JSON schema; applications additionally carry their resource
profile and metadata.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from ..hw.profiles import AppResourceProfile
from .base import AppConfig, ApproximateApplication, ConfigTable

PathLike = Union[str, pathlib.Path]

SCHEMA_VERSION = 1


def table_to_dict(table: ConfigTable) -> dict:
    """JSON-ready representation of a configuration table."""
    return {
        "schema": SCHEMA_VERSION,
        "configs": [
            {
                "index": config.index,
                "speedup": config.speedup,
                "accuracy": config.accuracy,
                "power_factor": config.power_factor,
                "knob_settings": [
                    [name, value] for name, value in config.knob_settings
                ],
            }
            for config in table
        ],
    }


def table_from_dict(data: dict) -> ConfigTable:
    """Inverse of :func:`table_to_dict` (validates the schema version)."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported table schema {data.get('schema')!r}"
        )
    return ConfigTable(
        AppConfig(
            index=entry["index"],
            speedup=entry["speedup"],
            accuracy=entry["accuracy"],
            power_factor=entry.get("power_factor", 1.0),
            knob_settings=tuple(
                (name, value) for name, value in entry["knob_settings"]
            ),
        )
        for entry in data["configs"]
    )


def save_table(table: ConfigTable, path: PathLike) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(table_to_dict(table), indent=2) + "\n")
    return path


def load_table(path: PathLike) -> ConfigTable:
    return table_from_dict(json.loads(pathlib.Path(path).read_text()))


def application_to_dict(app: ApproximateApplication) -> dict:
    """JSON-ready representation of a full application."""
    profile = app.resource_profile
    return {
        "schema": SCHEMA_VERSION,
        "name": app.name,
        "framework": app.framework,
        "accuracy_metric": app.accuracy_metric,
        "work_per_iteration": app.work_per_iteration,
        "iteration_name": app.iteration_name,
        "platforms": (
            None if app.platforms is None else list(app.platforms)
        ),
        "accuracy_is_ordinal": app.accuracy_is_ordinal,
        "resource_profile": {
            "name": profile.name,
            "base_rate": profile.base_rate,
            "parallel_fraction": profile.parallel_fraction,
            "clock_sensitivity": profile.clock_sensitivity,
            "memory_boundness": profile.memory_boundness,
            "ht_gain": profile.ht_gain,
            "activity_factor": profile.activity_factor,
        },
        "table": table_to_dict(app.table),
    }


def application_from_dict(data: dict) -> ApproximateApplication:
    """Inverse of :func:`application_to_dict`."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported application schema {data.get('schema')!r}"
        )
    return ApproximateApplication(
        name=data["name"],
        framework=data["framework"],
        accuracy_metric=data["accuracy_metric"],
        table=table_from_dict(data["table"]),
        resource_profile=AppResourceProfile(**data["resource_profile"]),
        work_per_iteration=data["work_per_iteration"],
        iteration_name=data["iteration_name"],
        platforms=(
            None
            if data["platforms"] is None
            else tuple(data["platforms"])
        ),
        accuracy_is_ordinal=data["accuracy_is_ordinal"],
    )


def save_application(
    app: ApproximateApplication, path: PathLike
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(application_to_dict(app), indent=2) + "\n")
    return path


def load_application(path: PathLike) -> ApproximateApplication:
    return application_from_dict(
        json.loads(pathlib.Path(path).read_text())
    )
