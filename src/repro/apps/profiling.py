"""Measured configuration tables: profile a real computation into knobs.

PowerDial builds its dynamic knobs by *profiling*: run the application
at each knob setting on training inputs, record speedup and accuracy
relative to the default, keep the results as the configuration table.
This module provides that workflow for arbitrary Python computations:

* :class:`ProfiledSetting` — one (knob values → work function) case,
* :func:`profile_table` — measure every setting and emit a
  :class:`~repro.apps.base.ConfigTable` usable by the runtime,
* :func:`profile_application` — the same plus an
  :class:`~repro.apps.base.ApproximateApplication` wrapper.

Measurement uses a caller-supplied cost function by default (e.g. a work
counter returned by the kernel) so profiles are deterministic; wall-time
profiling is available via ``cost="time"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..hw.profiles import AppResourceProfile
from .base import AppConfig, ApproximateApplication, ConfigTable

#: A workload to profile: returns (cost, raw quality).  Cost must be a
#: positive effort measure (operation count, wall seconds, ...).
WorkFunction = Callable[[], Tuple[float, float]]


@dataclass(frozen=True)
class ProfiledSetting:
    """One knob setting to profile.

    Parameters
    ----------
    knob_settings:
        Provenance: (name, value) pairs for this setting.
    run:
        Executes the computation at this setting; returns (cost, quality).
    """

    knob_settings: Tuple[Tuple[str, float], ...]
    run: WorkFunction


def profile_table(
    settings: Sequence[ProfiledSetting],
    accuracy_from_quality: Optional[Callable[[float, float], float]] = None,
    repeats: int = 1,
    power_coupling: float = 0.05,
) -> ConfigTable:
    """Measure ``settings`` and build a configuration table.

    The first setting is the default: its cost defines speedup 1 and its
    quality defines accuracy 1.  ``accuracy_from_quality`` maps (quality,
    default quality) to a relative accuracy in [0, 1]; by default the
    ratio ``quality / default_quality`` clipped into [0, 1] (suitable for
    higher-is-better qualities).
    """
    if not settings:
        raise ValueError("no settings to profile")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if accuracy_from_quality is None:
        accuracy_from_quality = lambda q, ref: max(0.0, min(1.0, q / ref))

    measured = []
    for setting in settings:
        costs, qualities = [], []
        for _ in range(repeats):
            cost, quality = setting.run()
            if cost <= 0:
                raise ValueError("profiled cost must be positive")
            costs.append(cost)
            qualities.append(quality)
        measured.append(
            (
                setting,
                sum(costs) / repeats,
                sum(qualities) / repeats,
            )
        )

    default_cost = measured[0][1]
    default_quality = measured[0][2]
    if default_quality == 0:
        raise ValueError("default quality must be nonzero")
    configs = []
    for index, (setting, cost, quality) in enumerate(measured):
        if index == 0:
            speedup, accuracy = 1.0, 1.0
        else:
            speedup = default_cost / cost
            accuracy = accuracy_from_quality(quality, default_quality)
        power_factor = 1.0 - power_coupling * (1.0 - 1.0 / max(speedup, 1.0))
        configs.append(
            AppConfig(
                index=index,
                speedup=speedup,
                accuracy=accuracy,
                knob_settings=setting.knob_settings,
                power_factor=power_factor,
            )
        )
    return ConfigTable(configs)


def profile_application(
    name: str,
    settings: Sequence[ProfiledSetting],
    resource_profile: AppResourceProfile,
    accuracy_metric: str = "measured quality",
    framework: str = "powerdial",
    **profile_kwargs,
) -> ApproximateApplication:
    """Profile ``settings`` and wrap the table as an application."""
    table = profile_table(settings, **profile_kwargs)
    return ApproximateApplication(
        name=name,
        framework=framework,
        accuracy_metric=accuracy_metric,
        table=table,
        resource_profile=resource_profile,
    )


def timed(run: Callable[[], float]) -> WorkFunction:
    """Wrap a quality-returning callable with wall-clock cost measurement."""

    def wrapper() -> Tuple[float, float]:
        start = time.perf_counter()
        quality = run()
        return max(time.perf_counter() - start, 1e-9), quality

    return wrapper
