"""radar: phased-array target detection (PowerDial).

Table 2: 26 configurations, 19.39x max speedup, 5.3 % max accuracy loss,
accuracy metric signal-to-noise ratio.  The knobs perforate the DSP
pipeline of Hoffmann et al. [21]: input decimation (13 levels) and the
number of coherently integrated pulses (2 levels), 13 × 2 = 26
configurations.

:func:`measure_kernel_tradeoff` runs the real matched-filter pipeline
from :mod:`repro.kernels.signal` at matching knob points.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hw.profiles import AppResourceProfile
from ..kernels.signal import RadarScene, detect_targets
from .base import ApproximateApplication
from .powerdial import build_table, calibrated_knob

PROFILE = AppResourceProfile(
    name="radar",
    base_rate=5.0,
    parallel_fraction=0.95,
    clock_sensitivity=0.95,
    memory_boundness=0.2,
    ht_gain=0.2,
    activity_factor=1.05,
)

N_CONFIGS = 26
MAX_SPEEDUP = 19.39
MAX_ACCURACY_LOSS = 0.053
ACCURACY_METRIC = "signal to noise ratio"


def build() -> ApproximateApplication:
    """Construct the radar application with its 26-config table."""
    decimation = calibrated_knob(
        "decimation",
        values=tuple(float(d) for d in range(1, 14)),
        max_speedup=MAX_SPEEDUP / 2.0,
        max_accuracy_loss=0.040,
        loss_exponent=1.5,
    )
    integration = calibrated_knob(
        "integration_pulses",
        values=(16.0, 8.0),
        max_speedup=2.0,
        max_accuracy_loss=1.0 - (1.0 - MAX_ACCURACY_LOSS) / 0.96,
        loss_exponent=1.0,
    )
    table = build_table([decimation, integration], jitter=0.006, seed=26)
    return ApproximateApplication(
        name="radar",
        framework="powerdial",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="dwell",
    )


def measure_kernel_tradeoff(seed: int = 0) -> List[Tuple[float, float]]:
    """Detect targets in a real scene at falling effort; (speedup, SNR dB).

    Work scales as ``pulses × samples``; speedup is the work ratio
    against the full configuration.
    """
    scene = RadarScene(seed=seed)
    returns, chirp = scene.generate()
    settings = ((1, 16), (2, 16), (2, 8), (4, 8), (8, 8))
    full_work = scene.n_pulses * scene.samples_per_pulse
    points = []
    for decimation, pulses in settings:
        _, snr_db = detect_targets(
            returns, chirp, decimation=decimation, integration_pulses=pulses
        )
        work = (pulses * scene.samples_per_pulse) / decimation
        points.append((full_work / work, snr_db))
    return points
