"""ferret: content-based similarity search (Loop Perforation).

Table 2: 8 configurations, 1.24x max speedup, 18.2 % max accuracy loss,
accuracy metric result similarity.  Perforation skips part of the
candidate-ranking loop; the loop covers under half the pipeline's
runtime (feature extraction and index probing are untouched), which is
why ferret's speedup range is the smallest in the suite — and why, on
Tablet and Server, only mild energy-reduction goals are feasible
(Sec. 5.3).

:func:`measure_kernel_tradeoff` queries a real feature database with
:mod:`repro.kernels.similarity` at matching perforation rates.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..hw.profiles import AppResourceProfile
from ..kernels.similarity import (
    FeatureDatabase,
    SimilaritySearch,
    exhaustive_top_k,
    result_similarity,
)
from .base import ApproximateApplication
from .perforation import PerforatableLoop, build_table

PROFILE = AppResourceProfile(
    name="ferret",
    base_rate=8.0,
    parallel_fraction=0.95,
    clock_sensitivity=0.75,
    memory_boundness=0.75,
    ht_gain=0.35,
    activity_factor=0.8,
)

N_CONFIGS = 8
MAX_SPEEDUP = 1.24
MAX_ACCURACY_LOSS = 0.182
ACCURACY_METRIC = "similarity"

#: The perforated candidate-ranking loop: ~45 % of runtime.
RANK_LOOP = PerforatableLoop(
    name="candidate_ranking",
    runtime_share=0.45,
    quality_sensitivity=0.647,
    loss_exponent=1.5,
)


def build() -> ApproximateApplication:
    """Construct the ferret application with its 8-config table."""
    max_rate = (1.0 - 1.0 / MAX_SPEEDUP) / RANK_LOOP.runtime_share
    rates = tuple(max_rate * i / (N_CONFIGS - 1) for i in range(N_CONFIGS))
    table = build_table(RANK_LOOP, rates=rates)
    return ApproximateApplication(
        name="ferret",
        framework="loop_perforation",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="query",
    )


def measure_kernel_tradeoff(
    n_queries: int = 20, seed: int = 0
) -> List[Tuple[float, float]]:
    """Query a real feature database at each rank fraction; (fraction, sim).

    Returns (rank_fraction, mean result similarity vs. exhaustive top-k).
    """
    database = FeatureDatabase(n_items=600, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = [database.sample_query(rng) for _ in range(n_queries)]
    points = []
    for fraction in (1.0, 0.75, 0.5, 0.25):
        search = SimilaritySearch(database, rank_fraction=fraction)
        similarities = []
        for query in queries:
            returned, _ = search.query(query)
            reference = exhaustive_top_k(database, query, search.top_k)
            similarities.append(
                result_similarity(database, query, returned, reference)
            )
        points.append((fraction, float(np.mean(similarities))))
    return points
