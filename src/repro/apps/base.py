"""Approximate-application abstractions.

JouleGuard requires very little from an application (Sec. 3.5–3.6): a set
of configurations, each with a *speedup* relative to the default and a
*total order* on accuracy, plus a way to switch configuration at runtime.
:class:`AppConfig` and :class:`ConfigTable` capture exactly that, and
:class:`ApproximateApplication` bundles a table with the application's
resource profile and workload defaults.

Accuracy here is normalized: the default configuration has accuracy 1.0
and speedup 1.0, as in the paper's presentation ("we report accuracy as a
proportion of that achieved when running in the application's default
configuration", Sec. 4.1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..hw.profiles import AppResourceProfile


@dataclass(frozen=True)
class AppConfig:
    """One application configuration.

    Parameters
    ----------
    index:
        Stable identifier within the application's table.
    speedup:
        Throughput relative to the default configuration (default = 1.0).
    accuracy:
        Accuracy relative to the default (default = 1.0).  When the
        application only defines a preference order (Sec. 3.6), this is
        an ordinal rank scaled into (0, 1]; JouleGuard never does
        arithmetic on it beyond comparisons.
    knob_settings:
        Provenance: the knob values that produce this configuration.
    power_factor:
        Mild multiplicative effect of the application configuration on
        system power (skipping work changes the compute/memory mix); the
        runtime does not model this — it is an unmodeled dependence the
        controller must absorb (Sec. 3.3).
    """

    index: int
    speedup: float
    accuracy: float
    knob_settings: Tuple[Tuple[str, float], ...] = ()
    power_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.speedup <= 0:
            raise ValueError("speedup must be positive")
        if self.accuracy < 0:
            raise ValueError("accuracy cannot be negative")
        if self.power_factor <= 0:
            raise ValueError("power factor must be positive")


class ConfigTable:
    """The application's configuration space with Pareto-frontier queries.

    The table must contain the default configuration (speedup 1, accuracy
    1).  :meth:`best_accuracy_for_speedup` implements the selection rule
    of the paper's Eqn. 6: the most accurate configuration whose speedup
    meets the requested target.
    """

    def __init__(self, configs: Iterable[AppConfig]) -> None:
        self.configs: List[AppConfig] = sorted(
            configs, key=lambda c: c.index
        )
        if not self.configs:
            raise ValueError("empty configuration table")
        indices = [c.index for c in self.configs]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate configuration indices")
        if not any(
            abs(c.speedup - 1.0) < 1e-9 and abs(c.accuracy - 1.0) < 1e-9
            for c in self.configs
        ):
            raise ValueError(
                "table must include the default config (speedup=1, accuracy=1)"
            )
        self._frontier = self._compute_frontier()
        self._frontier_speedups = [c.speedup for c in self._frontier]

    def _compute_frontier(self) -> List[AppConfig]:
        """Pareto-optimal configs, ascending speedup / descending accuracy."""
        by_speedup = sorted(
            self.configs, key=lambda c: (c.speedup, c.accuracy)
        )
        frontier: List[AppConfig] = []
        best_accuracy = -1.0
        # Scan from fastest to slowest, keeping configs whose accuracy
        # beats everything faster than them.
        for config in reversed(by_speedup):
            if config.accuracy > best_accuracy:
                frontier.append(config)
                best_accuracy = config.accuracy
        frontier.reverse()
        return frontier

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def __getitem__(self, index: int) -> AppConfig:
        for config in self.configs:
            if config.index == index:
                return config
        raise KeyError(index)

    # -- queries -------------------------------------------------------------
    @property
    def default(self) -> AppConfig:
        for config in self.configs:
            if (
                abs(config.speedup - 1.0) < 1e-9
                and abs(config.accuracy - 1.0) < 1e-9
            ):
                return config
        raise AssertionError("validated at construction")

    @property
    def pareto_frontier(self) -> List[AppConfig]:
        """Pareto-optimal configs in ascending speedup order."""
        return list(self._frontier)

    @property
    def max_speedup(self) -> float:
        return self._frontier_speedups[-1]

    @property
    def max_accuracy_loss(self) -> float:
        """Largest relative accuracy loss across the table (Table 2)."""
        return 1.0 - min(c.accuracy for c in self.configs)

    def best_accuracy_for_speedup(self, speedup: float) -> AppConfig:
        """Eqn. 6: most accurate config with ``config.speedup >= speedup``.

        If no configuration is fast enough, the fastest one is returned —
        the closest the application can get to the request (the runtime
        detects infeasibility separately, Sec. 3.4.3).
        """
        # Frontier accuracy decreases with speedup, so the slowest
        # frontier config that satisfies the constraint is the answer.
        position = bisect.bisect_left(self._frontier_speedups, speedup)
        if position >= len(self._frontier):
            return self._frontier[-1]
        return self._frontier[position]

    def accuracy_order(self) -> List[AppConfig]:
        """Configs sorted by descending accuracy (the Sec. 3.6 total order)."""
        return sorted(self.configs, key=lambda c: -c.accuracy)


@dataclass
class ApproximateApplication:
    """One approximate application: configs + resource profile + workload.

    Parameters
    ----------
    name:
        Benchmark name (Table 2).
    framework:
        ``"powerdial"`` or ``"loop_perforation"``.
    accuracy_metric:
        Human-readable metric name (Table 2's rightmost column).
    table:
        Configuration table.
    resource_profile:
        How the default computation responds to hardware resources.
    work_per_iteration:
        Nominal work units in one iteration (frame, query, …).
    iteration_name:
        Unit of progress ("frame", "query", …) for reporting.
    platforms:
        Platform names this benchmark runs on; ``None`` means any
        platform (swish++ and canneal set explicit tuples because they
        do not run on Mobile, Sec. 4.1).
    accuracy_is_ordinal:
        True when accuracy values are only a preference order
        (Sec. 3.6); consumers must not treat differences as meaningful.
    """

    name: str
    framework: str
    accuracy_metric: str
    table: ConfigTable
    resource_profile: AppResourceProfile
    work_per_iteration: float = 1.0
    iteration_name: str = "iteration"
    platforms: Optional[Tuple[str, ...]] = None
    accuracy_is_ordinal: bool = False

    def __post_init__(self) -> None:
        if self.framework not in ("powerdial", "loop_perforation"):
            raise ValueError(f"unknown framework {self.framework!r}")
        if self.work_per_iteration <= 0:
            raise ValueError("work_per_iteration must be positive")

    def runs_on(self, platform: str) -> bool:
        return self.platforms is None or platform in self.platforms

    @property
    def default_config(self) -> AppConfig:
        return self.table.default
