"""Approximate applications: frameworks and the eight-benchmark suite.

:mod:`repro.apps.powerdial` and :mod:`repro.apps.perforation` implement
the two approximation frameworks the paper builds on (Sec. 4.1); the
application modules instantiate the suite of Table 2, each backed by a
real computational kernel in :mod:`repro.kernels` for validation.
"""

from .base import AppConfig, ApproximateApplication, ConfigTable
from .perforation import PerforatableLoop, perforate
from .powerdial import DynamicKnob, KnobSetting, calibrated_knob
from .profiling import (
    ProfiledSetting,
    profile_application,
    profile_table,
    timed,
)
from .registry import (
    PAPER_TABLE2,
    Table2Row,
    application_names,
    applications_for_platform,
    build_all,
    build_application,
    table2,
)

__all__ = [
    "AppConfig",
    "ApproximateApplication",
    "ConfigTable",
    "DynamicKnob",
    "KnobSetting",
    "PAPER_TABLE2",
    "PerforatableLoop",
    "ProfiledSetting",
    "Table2Row",
    "application_names",
    "applications_for_platform",
    "build_all",
    "build_application",
    "calibrated_knob",
    "perforate",
    "profile_application",
    "profile_table",
    "table2",
    "timed",
]
