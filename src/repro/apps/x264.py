"""x264: video encoding with dynamic quality knobs (PowerDial).

Table 2: 560 configurations, 4.26x max speedup, 6.2 % max accuracy loss,
accuracy metric PSNR.  The 560 configurations come from three converted
command-line parameters — subpixel refinement effort, motion-estimation
range, and reference frames (8 × 10 × 7) — the parameters PowerDial
converts in the original work.

The kernel validation path (:func:`measure_kernel_tradeoff`) encodes real
synthetic video with :mod:`repro.kernels.video` at matching knob points
and confirms the speedup/PSNR trade is genuine and monotone.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hw.profiles import AppResourceProfile
from ..kernels.video import EncoderConfig, SyntheticVideo, encode_sequence
from .base import ApproximateApplication
from .powerdial import build_table, calibrated_knob

PROFILE = AppResourceProfile(
    name="x264",
    base_rate=1.2,
    parallel_fraction=0.96,
    clock_sensitivity=0.85,
    memory_boundness=0.35,
    ht_gain=0.25,
    activity_factor=1.0,
)

#: Published characteristics (Table 2).
N_CONFIGS = 560
MAX_SPEEDUP = 4.26
MAX_ACCURACY_LOSS = 0.062
ACCURACY_METRIC = "Peak Signal to Noise Ratio (PSNR)"


def build() -> ApproximateApplication:
    """Construct the x264 application with its 560-config table."""
    subme = calibrated_knob(
        "subme",
        values=tuple(range(8, 0, -1)),
        max_speedup=1.9,
        max_accuracy_loss=0.030,
        loss_exponent=1.6,
    )
    me_range = calibrated_knob(
        "me_range",
        values=(24, 20, 16, 14, 12, 10, 8, 6, 4, 2),
        max_speedup=1.5,
        max_accuracy_loss=0.020,
        loss_exponent=1.4,
    )
    ref_frames = calibrated_knob(
        "ref_frames",
        values=(7, 6, 5, 4, 3, 2, 1),
        max_speedup=MAX_SPEEDUP / (1.9 * 1.5),
        max_accuracy_loss=1.0 - (1.0 - MAX_ACCURACY_LOSS) / (0.97 * 0.98),
        loss_exponent=1.3,
    )
    table = build_table(
        [subme, me_range, ref_frames], jitter=0.008, seed=264
    )
    return ApproximateApplication(
        name="x264",
        framework="powerdial",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="frame",
    )


def measure_kernel_tradeoff(
    n_frames: int = 6, seed: int = 0
) -> List[Tuple[float, float]]:
    """Run the real encoder at decreasing effort; return (speedup, PSNR).

    Speedup is computed from the encoder's work counter, normalized to the
    most expensive configuration; PSNR is absolute (dB).
    """
    video = SyntheticVideo(width=32, height=32, complexity=0.6, seed=seed)
    frames = list(video.frames(n_frames))
    points = []
    for radius, quant in ((4, 1.0), (3, 2.0), (2, 4.0), (1, 8.0), (0, 16.0)):
        quality, work = encode_sequence(
            frames, EncoderConfig(search_radius=radius, quant_step=quant)
        )
        points.append((work, quality))
    reference_work = points[0][0]
    return [(reference_work / work, quality) for work, quality in points]
