"""Application registry: the paper's benchmark suite (Table 2).

Builds all eight approximate applications and exposes Table 2's published
characteristics so the benchmark harness can print paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from . import (
    bodytrack,
    canneal,
    ferret,
    radar,
    streamcluster,
    swaptions,
    swishpp,
    x264,
)
from .base import ApproximateApplication

_MODULES = {
    "x264": x264,
    "swaptions": swaptions,
    "bodytrack": bodytrack,
    "swish": swishpp,
    "radar": radar,
    "canneal": canneal,
    "ferret": ferret,
    "streamcluster": streamcluster,
}

#: Paper Table 2 rows: (configs, max speedup, max accuracy loss %).
PAPER_TABLE2: Dict[str, tuple] = {
    "x264": (560, 4.26, 6.2),
    "swaptions": (100, 100.35, 1.5),
    "bodytrack": (200, 7.38, 14.4),
    "swish": (6, 1.52, 83.4),
    "radar": (26, 19.39, 5.3),
    "canneal": (3, 1.93, 7.1),
    "ferret": (8, 1.24, 18.2),
    "streamcluster": (7, 5.52, 0.55),
}


@dataclass(frozen=True)
class Table2Row:
    """One measured row of Table 2, with the published values alongside."""

    application: str
    configs: int
    max_speedup: float
    max_accuracy_loss_pct: float
    accuracy_metric: str
    paper_configs: int
    paper_max_speedup: float
    paper_max_accuracy_loss_pct: float


def application_names() -> List[str]:
    """Benchmark names in Table 2 order."""
    return list(_MODULES)


def build_application(name: str) -> ApproximateApplication:
    """Build one application by name."""
    try:
        module = _MODULES[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; expected one of {list(_MODULES)}"
        ) from None
    return module.build()


def build_all() -> Dict[str, ApproximateApplication]:
    """Build the full suite keyed by name."""
    return {name: build_application(name) for name in _MODULES}


def applications_for_platform(platform: str) -> Dict[str, ApproximateApplication]:
    """The suite restricted to apps that run on ``platform`` (Sec. 4.1)."""
    return {
        name: app
        for name, app in build_all().items()
        if app.runs_on(platform)
    }


def table2() -> List[Table2Row]:
    """Measured Table 2 with published values for comparison."""
    rows = []
    for name, app in build_all().items():
        paper_configs, paper_speedup, paper_loss = PAPER_TABLE2[name]
        rows.append(
            Table2Row(
                application=name,
                configs=len(app.table),
                max_speedup=app.table.max_speedup,
                max_accuracy_loss_pct=100.0 * app.table.max_accuracy_loss,
                accuracy_metric=app.accuracy_metric,
                paper_configs=paper_configs,
                paper_max_speedup=paper_speedup,
                paper_max_accuracy_loss_pct=paper_loss,
            )
        )
    return rows
