"""PowerDial-style dynamic knobs (Hoffmann et al., ASPLOS'11).

PowerDial turns static command-line parameters into runtime-tunable
*dynamic knobs*: each knob setting is profiled once for speedup and
accuracy relative to the default, and the cross-product of knob settings
becomes the application's configuration space.  This module provides:

* :class:`DynamicKnob` — one converted parameter with per-setting
  speedup/accuracy effects,
* :func:`build_table` — the cross-product profiling result as a
  :class:`~repro.apps.base.ConfigTable`, with optional deterministic
  profiling jitter (real profiles are noisy, which is what puts some
  configurations off the Pareto frontier),
* :func:`calibrated_knob` — helper to synthesize a knob whose settings
  span a target speedup range with a convex accuracy-loss curve, used by
  the application modules to match Table 2 exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .base import AppConfig, ConfigTable


@dataclass(frozen=True)
class KnobSetting:
    """One profiled setting of a dynamic knob."""

    value: float
    speedup: float
    accuracy: float

    def __post_init__(self) -> None:
        if self.speedup <= 0:
            raise ValueError("speedup must be positive")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")


@dataclass(frozen=True)
class DynamicKnob:
    """A command-line parameter converted into a runtime knob.

    The first setting must be the default (speedup 1, accuracy 1); later
    settings typically trade accuracy for speed.
    """

    name: str
    settings: Tuple[KnobSetting, ...]

    def __post_init__(self) -> None:
        if not self.settings:
            raise ValueError(f"knob {self.name!r} has no settings")
        first = self.settings[0]
        if abs(first.speedup - 1.0) > 1e-9 or abs(first.accuracy - 1.0) > 1e-9:
            raise ValueError(
                f"knob {self.name!r}: first setting must be the default"
            )


def calibrated_knob(
    name: str,
    values: Sequence[float],
    max_speedup: float,
    max_accuracy_loss: float,
    loss_exponent: float = 1.5,
    speedup_shape: str = "geometric",
) -> DynamicKnob:
    """Synthesize a profiled knob spanning given speedup/loss ranges.

    Speedups rise from 1 to ``max_speedup`` across ``values``
    (geometrically or linearly); accuracy falls convexly to
    ``1 - max_accuracy_loss`` following ``loss ∝ progress**loss_exponent``
    — the shape real PowerDial profiles exhibit (cheap savings first).
    """
    n = len(values)
    if n < 1:
        raise ValueError("need at least one value")
    if max_speedup < 1.0:
        raise ValueError("max_speedup must be >= 1")
    if not 0.0 <= max_accuracy_loss < 1.0:
        raise ValueError("max_accuracy_loss must be in [0, 1)")
    settings = []
    for i, value in enumerate(values):
        progress = i / (n - 1) if n > 1 else 0.0
        if speedup_shape == "geometric":
            speedup = max_speedup**progress
        elif speedup_shape == "linear":
            speedup = 1.0 + (max_speedup - 1.0) * progress
        else:
            raise ValueError(f"unknown speedup_shape {speedup_shape!r}")
        accuracy = 1.0 - max_accuracy_loss * progress**loss_exponent
        settings.append(
            KnobSetting(value=value, speedup=speedup, accuracy=accuracy)
        )
    return DynamicKnob(name=name, settings=tuple(settings))


def build_table(
    knobs: Sequence[DynamicKnob],
    jitter: float = 0.0,
    power_coupling: float = 0.05,
    seed: int = 0,
) -> ConfigTable:
    """Cross-product of knob settings → configuration table.

    Speedups multiply across knobs and accuracy losses compound
    (``accuracy = Π accuracy_k``), the first-order model PowerDial's
    profiling validates.  ``jitter`` adds deterministic relative noise to
    non-default configs (profiling variance), and ``power_coupling``
    derives each configuration's mild power factor from its speedup —
    the unmodeled application/system dependence of Sec. 3.3.
    """
    if not knobs:
        raise ValueError("need at least one knob")
    rng = np.random.default_rng(seed)
    configs = []
    for index, combo in enumerate(
        itertools.product(*(k.settings for k in knobs))
    ):
        speedup = 1.0
        accuracy = 1.0
        for setting in combo:
            speedup *= setting.speedup
            accuracy *= setting.accuracy
        is_default = index == 0
        if jitter > 0.0 and not is_default:
            speedup *= float(np.exp(rng.normal(0.0, jitter)))
            accuracy *= float(
                np.clip(1.0 + rng.normal(0.0, jitter / 2), 0.0, None)
            )
            accuracy = min(accuracy, 1.0)
        power_factor = 1.0 - power_coupling * (1.0 - 1.0 / speedup)
        configs.append(
            AppConfig(
                index=index,
                speedup=speedup if not is_default else 1.0,
                accuracy=accuracy if not is_default else 1.0,
                knob_settings=tuple(
                    (knob.name, setting.value)
                    for knob, setting in zip(knobs, combo)
                ),
                power_factor=power_factor,
            )
        )
    return ConfigTable(configs)
