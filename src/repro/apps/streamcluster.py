"""streamcluster: streaming k-median clustering (Loop Perforation).

Table 2: 7 configurations, 5.52x max speedup, 0.55 % max accuracy loss,
accuracy metric quality of clustering.  Perforation subsamples the
candidate-evaluation loop of the k-median local search; the loop
dominates runtime and the clustering cost is remarkably insensitive to
it — streamcluster is the benchmark where perforation is nearly free.

:func:`measure_kernel_tradeoff` clusters a real synthetic stream with
:mod:`repro.kernels.clustering` at matching evaluation fractions.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..hw.profiles import AppResourceProfile
from ..kernels.clustering import (
    StreamCluster,
    clustering_cost,
    gaussian_mixture_stream,
)
from .base import ApproximateApplication
from .perforation import PerforatableLoop, build_table

PROFILE = AppResourceProfile(
    name="streamcluster",
    base_rate=2.5,
    parallel_fraction=0.97,
    clock_sensitivity=0.8,
    memory_boundness=0.6,
    ht_gain=0.25,
    activity_factor=0.9,
)

N_CONFIGS = 7
MAX_SPEEDUP = 5.52
MAX_ACCURACY_LOSS = 0.0055
ACCURACY_METRIC = "quality of clustering"

#: The perforated candidate-evaluation loop: ~90 % of runtime.
EVALUATION_LOOP = PerforatableLoop(
    name="candidate_evaluation",
    runtime_share=0.9,
    quality_sensitivity=0.0063,
    loss_exponent=1.5,
)


def build() -> ApproximateApplication:
    """Construct the streamcluster application with its 7-config table."""
    max_rate = (1.0 - 1.0 / MAX_SPEEDUP) / EVALUATION_LOOP.runtime_share
    rates = tuple(max_rate * i / (N_CONFIGS - 1) for i in range(N_CONFIGS))
    table = build_table(EVALUATION_LOOP, rates=rates)
    return ApproximateApplication(
        name="streamcluster",
        framework="loop_perforation",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="chunk",
    )


def measure_kernel_tradeoff(seed: int = 0) -> List[Tuple[float, float]]:
    """Cluster a real stream at each evaluation fraction; (fraction, quality).

    Quality is the full run's clustering cost divided by the perforated
    run's cost (≤ 1, higher is better).
    """
    chunks, _ = gaussian_mixture_stream(
        n_chunks=4, chunk_size=60, k=5, seed=seed
    )
    points_array = np.vstack(chunks)
    reference_centers = StreamCluster(
        k=5, evaluation_fraction=1.0, seed=seed + 1
    ).cluster(chunks)
    reference_cost = clustering_cost(points_array, reference_centers)
    results = [(1.0, 1.0)]
    for fraction in (0.5, 0.25, 0.1):
        centers = StreamCluster(
            k=5, evaluation_fraction=fraction, seed=seed + 1
        ).cluster(chunks)
        cost = clustering_cost(points_array, centers)
        results.append((fraction, min(1.0, reference_cost / cost)))
    return results
