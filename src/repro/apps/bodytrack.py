"""bodytrack: annealed-particle-filter tracking (PowerDial).

Table 2: 200 configurations, 7.38x max speedup, 14.4 % max accuracy
loss, accuracy metric track quality.  PowerDial converts the particle
count and annealing-layer count (50 × 4 = 200 configurations); work is
roughly linear in particles × layers.

:func:`measure_kernel_tradeoff` tracks a real synthetic scene with
:mod:`repro.kernels.tracking` at matching knob points.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hw.profiles import AppResourceProfile
from ..kernels.tracking import AnnealedParticleFilter, BodyScene, track_quality
from .base import ApproximateApplication
from .powerdial import build_table, calibrated_knob

PROFILE = AppResourceProfile(
    name="bodytrack",
    base_rate=1.5,
    parallel_fraction=0.93,
    clock_sensitivity=0.9,
    memory_boundness=0.3,
    ht_gain=0.2,
    activity_factor=1.0,
)

N_CONFIGS = 200
MAX_SPEEDUP = 7.38
MAX_ACCURACY_LOSS = 0.144
ACCURACY_METRIC = "track quality"


def build() -> ApproximateApplication:
    """Construct the bodytrack application with its 200-config table."""
    particles = calibrated_knob(
        "particles",
        values=tuple(range(4000, 4000 - 50 * 72, -72)),
        max_speedup=4.5,
        max_accuracy_loss=0.10,
        loss_exponent=1.7,
    )
    layers = calibrated_knob(
        "annealing_layers",
        values=(5, 4, 3, 2),
        max_speedup=MAX_SPEEDUP / 4.5,
        max_accuracy_loss=1.0 - (1.0 - MAX_ACCURACY_LOSS) / 0.90,
        loss_exponent=1.4,
    )
    table = build_table([particles, layers], jitter=0.01, seed=200)
    return ApproximateApplication(
        name="bodytrack",
        framework="powerdial",
        accuracy_metric=ACCURACY_METRIC,
        table=table,
        resource_profile=PROFILE,
        work_per_iteration=1.0,
        iteration_name="frame",
    )


def measure_kernel_tradeoff(
    n_frames: int = 40, seed: int = 0
) -> List[Tuple[float, float]]:
    """Track a real scene at falling effort; return (speedup, quality).

    Speedup comes from the filter's likelihood-evaluation counter;
    quality is ground-truth track quality in [0, 1].
    """
    scene = BodyScene(n_frames=n_frames, seed=seed)
    truth, observations = scene.generate()
    settings = ((400, 3), (200, 3), (100, 2), (50, 2), (25, 1))
    points = []
    reference_evals = None
    for particles, layers in settings:
        tracker = AnnealedParticleFilter(
            n_particles=particles, n_layers=layers, seed=seed + 1
        )
        estimates, evaluations = tracker.track(observations)
        if reference_evals is None:
            reference_evals = evaluations
        points.append(
            (
                reference_evals / evaluations,
                track_quality(estimates, truth),
            )
        )
    return points
