"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``machines``
    List the platform models and their configuration-space sizes.
``apps``
    Print the Table 2 application registry.
``characterize``
    Print a platform's energy-efficiency landscape for one application
    (the paper's Fig. 3 data).
``run``
    One closed-loop experiment: an application on a platform under an
    energy-reduction factor, with any of the four controllers; optional
    CSV/JSON export.
``sweep``
    The Fig. 5/6 sweep for one platform (all its applications × the
    paper's factors), optional CSV export.
``oracle``
    The clairvoyant optimum and feasibility limit for a combination.
``serve``
    Run the multi-tenant JouleGuard daemon (``repro.service``) in the
    foreground on a TCP port and/or Unix socket.
``client``
    Drive one synthetic closed-loop session against a running daemon,
    or a concurrent load run with ``--clients N``.
``chaos``
    Run the seeded fault-injection suite (``repro.faults``) and check
    its invariants: budgets never silently overdrawn, pole stable,
    accuracy monotone in fault severity, runs replayable.  With
    ``--enforce``, run the enforcement-ladder scenario instead:
    escalating runaway sessions against a live manager, asserting
    hard-tier sessions end with exactly zero budget overdraft.
``dash``
    Live ascii dashboard over a running daemon's ``metrics`` and
    ``events`` verbs (``repro.obs``).
``fleet``
    Vectorized fleet simulation (``repro.fleet``): cohorts of sessions
    stepped as numpy arrays under arrivals, churn, warm starts, and
    the enforcement ladder; ``--smoke`` gates CI on zero hard-tier
    overdraft plus a pool/scalar equivalence spot check.
``lint``
    Forward to ``python -m repro.lint``: jglint static analysis, plus
    the jgflow project-wide flow analyses with ``--flow``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import applications_for_platform, build_application, table2
from .core.budget import PAPER_FACTORS
from .hw import PlatformSimulator, all_machines, get_machine
from .runtime.baselines import (
    run_application_only,
    run_system_only,
    run_uncoordinated,
)
from .runtime.ascii_plot import chart, sparkline
from .runtime.export import (
    summary_dict,
    write_sweep_csv,
    write_summary_json,
    write_trace_csv,
)
from .runtime.harness import run_jouleguard
from .runtime.oracle import max_feasible_factor, oracle_accuracy

CONTROLLERS = {
    "jouleguard": run_jouleguard,
    "system-only": run_system_only,
    "app-only": run_application_only,
    "uncoordinated": run_uncoordinated,
}


def _cmd_machines(args: argparse.Namespace) -> int:
    print(f"{'name':<10}{'configs':>9}{'clusters':>10}{'idle W':>8}"
          f"{'ext W':>7}")
    for name, machine in all_machines().items():
        print(f"{name:<10}{len(machine.space):>9d}"
              f"{len(machine.clusters):>10d}{machine.idle_w:>8.2f}"
              f"{machine.external_w:>7.2f}")
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    print(f"{'application':<15}{'framework':<18}{'configs':>8}"
          f"{'speedup':>9}{'loss %':>8}  metric")
    for row in table2():
        app = build_application(row.application)
        print(f"{row.application:<15}{app.framework:<18}"
              f"{row.configs:>8d}{row.max_speedup:>9.2f}"
              f"{row.max_accuracy_loss_pct:>8.2f}  {row.accuracy_metric}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    app = build_application(args.app)
    if not app.runs_on(machine.name):
        print(f"{args.app} does not run on {args.machine}", file=sys.stderr)
        return 2
    simulator = PlatformSimulator(machine, app.resource_profile)
    linear = machine.space.linearized()
    print(f"# {args.app} on {args.machine}: efficiency per config index")
    print("index,efficiency,rate,power_w")
    step = max(1, len(linear) // args.points)
    for i in range(0, len(linear), step):
        config = linear[i]
        print(f"{i},{simulator.energy_efficiency(config):.6f},"
              f"{simulator.ideal_rate(config):.4f},"
              f"{simulator.ideal_power(config):.4f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    app = build_application(args.app)
    runner = CONTROLLERS[args.controller]
    result = runner(
        machine,
        app,
        factor=args.factor,
        n_iterations=args.iterations,
        seed=args.seed,
    )
    for key, value in summary_dict(result).items():
        print(f"{key:>24}: {value}")
    if args.plot:
        print()
        print(
            chart(
                list(result.trace.energy_per_work()),
                target=result.goal.energy_per_work,
                label="energy per work unit (J; target line dashed)",
            )
        )
        print(f"accuracy  {sparkline(result.trace.accuracy)}")
        print(f"epsilon   {sparkline(result.trace.epsilon)}")
    if args.trace_csv:
        print(f"{'trace':>24}: {write_trace_csv(result, args.trace_csv)}")
    if args.summary_json:
        print(
            f"{'summary':>24}: "
            f"{write_summary_json(result, args.summary_json)}"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    results = []
    print(f"{'app':<15}{'factor':>8}{'rel err %':>11}{'accuracy':>10}"
          f"{'effective':>11}")
    for app_name, app in applications_for_platform(machine.name).items():
        limit = max_feasible_factor(machine, app) * args.margin
        for factor in PAPER_FACTORS:
            if factor > limit:
                continue
            result = run_jouleguard(
                machine,
                app,
                factor=factor,
                n_iterations=args.iterations,
                seed=args.seed,
            )
            results.append(result)
            print(f"{app_name:<15}{factor:>8.2f}"
                  f"{result.relative_error_pct:>11.2f}"
                  f"{result.mean_accuracy:>10.4f}"
                  f"{result.effective_acc:>11.4f}")
    if args.csv:
        print(f"\nwrote {write_sweep_csv(results, args.csv)}")
    return 0


def _cmd_racepace(args: argparse.Namespace) -> int:
    from .hw import GENERIC_PROFILE, compare_policies
    from .hw.speedup_model import work_rate

    machine = get_machine(args.machine)
    rate = work_rate(machine, machine.default_config, GENERIC_PROFILE)
    print(f"{'slack':>7}{'race J':>10}{'pace J':>10}{'hybrid J':>10}"
          f"{'winner':>8}")
    for slack in args.slacks:
        comparison = compare_policies(
            machine, GENERIC_PROFILE, work=1.0, period_s=slack / rate,
            deep_sleep_fraction=args.deep_sleep,
        )
        if comparison.winner == "infeasible":
            print(f"{slack:>6.1f}x  infeasible")
            continue
        print(f"{slack:>6.1f}x"
              f"{comparison.race.energy_j:>10.4f}"
              f"{comparison.pace.energy_j:>10.4f}"
              f"{comparison.hybrid.energy_j:>10.4f}"
              f"{comparison.winner:>8}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import pathlib

    from .service import SessionManager, SnapshotStore, serve

    if args.host is None and args.unix is None:
        print("serve needs --host/--port and/or --unix", file=sys.stderr)
        return 2
    where = []
    if args.host is not None:
        where.append(f"tcp {args.host}:{args.port}")
    if args.unix is not None:
        where.append(f"unix {args.unix}")
    if args.metrics_host is not None:
        where.append(
            f"metrics http://{args.metrics_host}:{args.metrics_port}"
            "/metrics"
        )
    if args.shards > 1:
        from .service import ShardRouter, serve_sharded

        router = ShardRouter(
            n_shards=args.shards,
            budget_j=args.budget_j,
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            state_dir=args.state_dir,
            idle_timeout_s=args.idle_timeout,
            reap_interval_s=args.reap_interval,
            metrics_host=args.metrics_host,
            metrics_port=args.metrics_port,
            exec_mode=args.exec_mode,
            vexec_solo_after=args.vexec_solo_after,
        )
        print(
            f"serving sharded JouleGuard ({args.shards} workers) on "
            f"{', '.join(where)} (budget {args.budget_j:.0f} J)"
        )
        serve_sharded(router)
        return 0
    store = SnapshotStore(
        directory=pathlib.Path(args.state_dir)
        if args.state_dir
        else None
    )
    manager = SessionManager(
        global_budget_j=args.budget_j,
        store=store,
        idle_timeout_s=args.idle_timeout,
        session_prefix=args.session_prefix,
        external_rebalance=args.external_rebalance,
    )
    print(f"serving JouleGuard on {', '.join(where)} "
          f"(budget {args.budget_j:.0f} J)")
    serve(
        manager,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        reap_interval_s=args.reap_interval,
        metrics_host=args.metrics_host,
        metrics_port=args.metrics_port,
        admin=args.admin,
        exec_mode=args.exec_mode,
        vexec_solo_after=args.vexec_solo_after,
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile the canned service workload with cProfile.

    The workload is the daemon's step hot path, in-process (no
    sockets): N sessions driven round-robin for S heartbeats each,
    through the scalar ``handle_line`` or the vectorized engine —
    exactly what the throughput bench times, so hot-path claims in
    BENCH files can be checked against a named function list.
    """
    import asyncio
    import cProfile
    import json as jsonlib
    import pstats

    from .service import (
        ServiceServer,
        SessionManager,
        SnapshotStore,
        encode_message,
    )
    from .service.vexec import VexecEngine

    manager = SessionManager(
        global_budget_j=1e9, store=SnapshotStore()
    )
    server = ServiceServer(
        manager, unix_path="/unused-profile.sock"
    )
    session_ids = [
        manager.open_session(
            machine_name=args.machine,
            app_name=args.app,
            factor=args.factor,
            # Enough work that no session retires mid-profile, small
            # enough that N sessions always fit the global budget.
            total_work=2.0 * args.steps + 100.0,
            seed=seed,
        ).session_id
        for seed in range(args.sessions)
    ]
    measurement = {
        "work": 1.0,
        "energy_j": 0.5,
        "rate": 10.0,
        "power_w": 5.0,
    }
    profiler = cProfile.Profile()
    if args.exec_mode == "vector":
        from .core.types import Measurement

        heartbeat = Measurement(**measurement)

        async def drive() -> None:
            engine = VexecEngine(manager)
            engine.start()
            try:
                for _ in range(args.steps):
                    await asyncio.gather(*[
                        engine.step_one(sid, heartbeat)
                        for sid in session_ids
                    ])
            finally:
                await engine.aclose()

        profiler.enable()
        asyncio.run(drive())
        profiler.disable()
    else:
        lines = [
            encode_message(
                {
                    "type": "step",
                    "session": sid,
                    "measurement": measurement,
                }
            )
            for _ in range(args.steps)
            for sid in session_ids
        ]
        profiler.enable()
        for line in lines:
            server.handle_line(line)
        profiler.disable()

    stats = pstats.Stats(profiler)
    heartbeats = args.steps * args.sessions
    if args.json:
        rows = []
        for (path, lineno, name), record in stats.stats.items():
            cc, nc, tottime, cumtime, _ = record
            rows.append(
                {
                    "function": name,
                    "file": path,
                    "line": lineno,
                    "ncalls": nc,
                    "tottime_s": round(tottime, 6),
                    "cumtime_s": round(cumtime, 6),
                }
            )
        rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
        print(
            jsonlib.dumps(
                {
                    "workload": {
                        "exec": args.exec_mode,
                        "machine": args.machine,
                        "app": args.app,
                        "factor": args.factor,
                        "sessions": args.sessions,
                        "steps_per_session": args.steps,
                        "heartbeats": heartbeats,
                    },
                    "total_s": round(stats.total_tt, 6),
                    "steps_per_s": round(
                        heartbeats / max(stats.total_tt, 1e-12), 1
                    ),
                    "top": rows[: args.top],
                },
                indent=2,
            )
        )
    else:
        print(
            f"profiled {heartbeats} heartbeats "
            f"({args.sessions} sessions x {args.steps} steps, "
            f"exec={args.exec_mode}): {stats.total_tt:.3f} s, "
            f"{heartbeats / max(stats.total_tt, 1e-12):,.0f} steps/s"
        )
        stats.sort_stats("cumulative").print_stats(args.top)
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from .obs.dash import run_dash
    from .service import ServiceError

    if (args.unix is None) == (args.host is None):
        print("dash needs --host/--port or --unix", file=sys.stderr)
        return 2
    try:
        run_dash(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            interval_s=args.interval,
            frames=args.frames,
            clear=not args.no_clear,
        )
    except KeyboardInterrupt:
        print()
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"dash failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .service import (
        RetryPolicy,
        ServiceClient,
        ServiceError,
        drive_synthetic_session,
        run_load,
    )

    if (args.unix is None) == (args.host is None):
        print("client needs --host/--port or --unix", file=sys.stderr)
        return 2
    retry = RetryPolicy(seed=args.seed) if args.retry else None
    if args.clients > 1:
        report = run_load(
            args.clients,
            steps=args.steps,
            machine=args.machine,
            app=args.app,
            factor=args.factor,
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            base_seed=args.seed,
            retry=retry,
            batch=args.batch,
            fast=args.fast,
        )
        for key, value in report.as_dict().items():
            print(f"{key:>22}: {value}")
        return 0 if report.errors == 0 else 1
    try:
        with ServiceClient(
            host=args.host, port=args.port, unix_path=args.unix,
            retry=retry,
        ) as client:
            run = drive_synthetic_session(
                client,
                machine=args.machine,
                app=args.app,
                factor=args.factor,
                steps=args.steps,
                seed=args.seed,
                warm_start=not args.cold,
                take_snapshot=args.snapshot,
                batch=args.batch,
                fast=args.fast,
            )
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"client failed: {exc}", file=sys.stderr)
        return 1
    print(f"{'session':>22}: {run.session}")
    print(f"{'warm start':>22}: {run.warm}")
    print(f"{'steps':>22}: {run.steps}")
    print(f"{'convergence step':>22}: {run.convergence_step()}")
    print(f"{'final epsilon':>22}: "
          f"{run.decisions[-1]['epsilon']:.4f}")
    if run.state is not None:
        print(f"{'snapshot':>22}: saved "
              f"({run.state['machine']}, {run.state['app']})")
    for key in ("energy_used_j", "effective_budget_j", "work_done"):
        if key in run.report:
            print(f"{key:>22}: {run.report[key]}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .faults import (
        run_chaos_suite,
        run_enforcement_chaos,
        shipped_plans,
    )

    if args.enforce:
        report = run_enforcement_chaos(
            machine=args.machine,
            app=args.app,
            factor=args.factor,
            seed=args.seed,
        )
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            for session in report["sessions"]:
                print(
                    f"x{session['inflation']:<6g}"
                    f"{session['tier']:<10}"
                    f"killed={str(session['killed']):<6}"
                    f"steps={session['steps']:<4d}"
                    f"overdraft={session['hard_overdraft_j']:.6f} J"
                )
            for violation in report["violations"]:
                print(f"    {violation}")
            print(
                "enforcement chaos: "
                f"{'PASS' if report['passed'] else 'FAIL'}"
            )
        return 0 if report["passed"] else 1
    if args.list:
        for name, plan in shipped_plans(seed=args.seed).items():
            parts = [
                part
                for part, present in (
                    ("sensor", plan.sensor),
                    ("channel", plan.channel),
                    ("budget", plan.budget),
                    ("network", plan.network),
                    ("crash", plan.crash),
                )
                if present is not None
            ]
            print(f"{name:<20} {'+'.join(parts)}")
        return 0
    try:
        suite = run_chaos_suite(
            plan_names=args.plan or None,
            seed=args.seed,
            n_iterations=args.iterations,
            steps=args.steps,
            machine=args.machine,
            app=args.app,
            factor=args.factor,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(suite, indent=2, sort_keys=True))
    else:
        for name, report in suite["plans"].items():
            status = "PASS" if report["passed"] else "FAIL"
            print(f"{name:<20} {status}")
            for violation in report.get("violations", []):
                print(f"    {violation}")
        print(f"chaos suite: {'PASS' if suite['passed'] else 'FAIL'}")
    return 0 if suite["passed"] else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    import pathlib
    from dataclasses import replace as _replace

    from .fleet import (
        FleetScenario,
        FleetSimulator,
        preset_scenario,
    )

    if args.scenario:
        text = pathlib.Path(args.scenario).read_text(encoding="utf-8")
        scenario = FleetScenario.from_json(text)
        if args.seed is not None:
            scenario = _replace(scenario, seed=args.seed)
    else:
        scenario = preset_scenario(
            args.preset, seed=args.seed if args.seed is not None else 0
        )
    if args.devices is not None:
        scenario = _replace(scenario, devices=float(args.devices))
    if args.epochs is not None:
        scenario = _replace(scenario, n_epochs=args.epochs)
    if args.scenario_out:
        pathlib.Path(args.scenario_out).write_text(
            scenario.to_json() + "\n", encoding="utf-8"
        )

    simulator = FleetSimulator(scenario)
    report = simulator.run()
    summary = report.as_dict()
    if args.prom:
        pathlib.Path(args.prom).write_text(
            simulator.metrics.render(), encoding="utf-8"
        )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"scenario            : {scenario.name}")
        print(
            f"epochs x steps      : {scenario.n_epochs} x "
            f"{scenario.steps_per_epoch}"
        )
        print(f"devices opened      : {summary['opened']}")
        print(f"device steps        : {summary['device_steps']}")
        print(
            "retired             : "
            f"{summary['completed']} completed, "
            f"{summary['killed']} killed, "
            f"{summary['churned']} churned, "
            f"{summary['running']} running, "
            f"{summary['shed']} shed"
        )
        print(
            f"violations / million: "
            f"{summary['violations_per_million']:.1f}"
        )
        print(
            f"hard-tier sessions  : {summary['hard_tier_sessions']} "
            f"(overdraft: {summary['hard_tier_overdraft']})"
        )
        burn = summary["burn_fraction"]
        print(
            "burn fraction       : "
            f"p50 {burn['p50']:.3f}  p95 {burn['p95']:.3f}  "
            f"p99 {burn['p99']:.3f}  max {burn['max']:.3f}"
        )
        accuracy = summary["accuracy"]
        print(
            "accuracy            : "
            f"mean {accuracy['mean']:.4f}  p05 {accuracy['p05']:.4f}  "
            f"p01 {accuracy['p01']:.4f}"
        )

    if not args.smoke:
        return 0
    failures = []
    if summary["hard_tier_overdraft"] != 0:
        failures.append(
            f"{summary['hard_tier_overdraft']} hard-tier sessions "
            "finished over budget (the ladder guarantee requires 0)"
        )
    if summary["killed"] == 0:
        failures.append(
            "no sessions were killed: the smoke run must exercise "
            "the full enforcement ladder"
        )
    mismatches = _fleet_equivalence_spot_check(scenario)
    if mismatches:
        failures.append(
            f"pool/scalar equivalence: {len(mismatches)} divergences, "
            f"first: {mismatches[0]}"
        )
    for failure in failures:
        print(f"smoke: {failure}")
    print(f"fleet smoke: {'PASS' if not failures else 'FAIL'}")
    return 0 if not failures else 1


def _fleet_equivalence_spot_check(
    scenario: "object", n_sessions: int = 8, n_steps: int
    = 120
) -> List[str]:
    """Replay a small mixed cohort in exact mode against the scalar
    runtime + ladder; return the divergences (empty = equivalent)."""
    import numpy as np

    from .fleet import (
        CohortHardwareModel,
        CohortSpec,
        ScalarSessionLoop,
        SessionPool,
        run_lockstep,
    )
    from .hw import GENERIC_PROFILE
    from .hw.vector import MachineTables

    cohort = scenario.cohorts[0]  # type: ignore[attr-defined]
    seed = scenario.seed  # type: ignore[attr-defined]
    machine = get_machine(cohort.machine)
    app = build_application(cohort.app)
    spec = CohortSpec.from_pair(machine, app)
    tables = MachineTables.build(machine, GENERIC_PROFILE)
    waste = np.ones(n_sessions)
    waste[n_sessions // 2 :] = cohort.runaway_waste
    model = CohortHardwareModel(
        tables, spec, n_sessions, waste=waste, seed=seed + 17
    )
    work = np.full(n_sessions, 40.0)
    seeds = np.arange(n_sessions, dtype=np.int64) * 13 + seed
    factors = np.linspace(
        cohort.min_factor, cohort.max_factor, n_sessions
    )
    pool = SessionPool(spec, mode="exact")
    pool.open(work, seeds, factors=factors)
    loops = [
        ScalarSessionLoop(
            machine,
            app,
            float(work[i]),
            int(seeds[i]),
            factor=float(factors[i]),
        )
        for i in range(n_sessions)
    ]
    return run_lockstep(pool, loops, model, n_steps)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    return lint_main(args.args)


def _cmd_oracle(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    app = build_application(args.app)
    limit = max_feasible_factor(machine, app)
    result = oracle_accuracy(machine, app, factor=args.factor)
    print(f"default energy/work : {result.default_epw:.6f} J")
    print(f"best system epw     : {result.best_system_epw:.6f} J")
    print(f"required speedup    : {result.required_speedup:.3f}")
    print(f"oracle accuracy     : {result.accuracy:.4f}")
    print(f"feasible            : {result.feasible}")
    print(f"max feasible factor : {limit:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JouleGuard (SOSP'15) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list platform models").set_defaults(
        func=_cmd_machines
    )
    sub.add_parser("apps", help="list the Table 2 suite").set_defaults(
        func=_cmd_apps
    )

    characterize = sub.add_parser(
        "characterize", help="Fig. 3 efficiency landscape (CSV to stdout)"
    )
    characterize.add_argument("machine", choices=["mobile", "tablet", "server"])
    characterize.add_argument("app")
    characterize.add_argument("--points", type=int, default=64)
    characterize.set_defaults(func=_cmd_characterize)

    run = sub.add_parser("run", help="one closed-loop experiment")
    run.add_argument("machine", choices=["mobile", "tablet", "server"])
    run.add_argument("app")
    run.add_argument("factor", type=float)
    run.add_argument("--controller", choices=sorted(CONTROLLERS), default="jouleguard")
    run.add_argument("--iterations", type=int, default=400)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--trace-csv")
    run.add_argument("--summary-json")
    run.add_argument(
        "--plot", action="store_true",
        help="render ASCII charts of the run",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="Fig. 5/6 sweep for one platform")
    sweep.add_argument("machine", choices=["mobile", "tablet", "server"])
    sweep.add_argument("--iterations", type=int, default=400)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--margin", type=float, default=0.9,
                       help="feasibility margin on the max factor")
    sweep.add_argument("--csv")
    sweep.set_defaults(func=_cmd_sweep)

    oracle = sub.add_parser("oracle", help="clairvoyant optimum for a goal")
    oracle.add_argument("machine", choices=["mobile", "tablet", "server"])
    oracle.add_argument("app")
    oracle.add_argument("factor", type=float)
    oracle.set_defaults(func=_cmd_oracle)

    racepace = sub.add_parser(
        "racepace", help="race-to-idle vs pacing for a periodic job"
    )
    racepace.add_argument("machine", choices=["mobile", "tablet", "server"])
    racepace.add_argument(
        "--slacks", type=float, nargs="+",
        default=[1.2, 2.0, 4.0, 8.0, 16.0],
        help="period as a multiple of the default-config busy time",
    )
    racepace.add_argument("--deep-sleep", type=float, default=0.0)
    racepace.set_defaults(func=_cmd_racepace)

    serve_cmd = sub.add_parser(
        "serve", help="run the multi-tenant JouleGuard daemon"
    )
    serve_cmd.add_argument("--host", help="TCP listen address")
    serve_cmd.add_argument("--port", type=int, default=7715)
    serve_cmd.add_argument("--unix", help="unix socket path")
    serve_cmd.add_argument(
        "--budget-j", type=float, default=1e9,
        help="global energy budget the daemon may promise",
    )
    serve_cmd.add_argument(
        "--state-dir",
        help="directory persisting warm-start snapshots",
    )
    serve_cmd.add_argument("--idle-timeout", type=float, default=300.0)
    serve_cmd.add_argument("--reap-interval", type=float, default=5.0)
    serve_cmd.add_argument(
        "--metrics-host",
        help="also expose Prometheus metrics over HTTP on this address",
    )
    serve_cmd.add_argument(
        "--metrics-port", type=int, default=0,
        help="metrics HTTP port (0 picks a free one)",
    )
    serve_cmd.add_argument(
        "--shards", type=int, default=1,
        help="run a shard router over this many pinned worker "
        "processes (1 = single-process daemon)",
    )
    serve_cmd.add_argument(
        "--session-prefix", default="",
        help="prefix baked into every session id (shard workers)",
    )
    serve_cmd.add_argument(
        "--external-rebalance", action="store_true",
        help="disable the local rebalance cadence; an external "
        "coordinator drives rebalances via the admin verbs",
    )
    serve_cmd.add_argument(
        "--admin", action="store_true",
        help="serve the admin_* verbs (shard workers only; never on "
        "a listener facing untrusted clients)",
    )
    serve_cmd.add_argument(
        "--exec", dest="exec_mode", choices=("scalar", "vector"),
        default="scalar",
        help="step execution backend: 'scalar' steps one session per "
        "heartbeat; 'vector' micro-batches concurrent heartbeats into "
        "exact-mode SessionPool steps (same decisions, A/B-able)",
    )
    serve_cmd.add_argument(
        "--vexec-solo-after", dest="vexec_solo_after", type=int,
        default=None, metavar="N",
        help="with --exec vector: after N consecutive single-session "
        "flushes, serve lone heartbeats scalar-side (uncontended fast "
        "path; negative keeps every heartbeat in the pool)",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    profile_cmd = sub.add_parser(
        "profile",
        help="cProfile the daemon's step hot path on a canned workload",
    )
    profile_cmd.add_argument("--machine", default="tablet",
                             choices=["mobile", "tablet", "server"])
    profile_cmd.add_argument("--app", default="x264")
    profile_cmd.add_argument("--factor", type=float, default=1.5)
    profile_cmd.add_argument(
        "--sessions", type=int, default=8,
        help="concurrent sessions driven round-robin",
    )
    profile_cmd.add_argument(
        "--steps", type=int, default=2000,
        help="heartbeats per session",
    )
    profile_cmd.add_argument(
        "--exec", dest="exec_mode", choices=("scalar", "vector"),
        default="scalar",
        help="which step execution backend to profile",
    )
    profile_cmd.add_argument(
        "--top", type=int, default=25,
        help="functions shown, hottest (by cumulative time) first",
    )
    profile_cmd.add_argument(
        "--json", action="store_true",
        help="machine-readable output instead of the pstats table",
    )
    profile_cmd.set_defaults(func=_cmd_profile)

    dash_cmd = sub.add_parser(
        "dash", help="live ascii dashboard over a running daemon"
    )
    dash_cmd.add_argument("--host", help="daemon TCP address")
    dash_cmd.add_argument("--port", type=int, default=7715)
    dash_cmd.add_argument("--unix", help="daemon unix socket path")
    dash_cmd.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes",
    )
    dash_cmd.add_argument(
        "--frames", type=int,
        help="stop after this many refreshes (default: run until ^C)",
    )
    dash_cmd.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )
    dash_cmd.set_defaults(func=_cmd_dash)

    client_cmd = sub.add_parser(
        "client", help="synthetic closed-loop client for the daemon"
    )
    client_cmd.add_argument("--host", help="daemon TCP address")
    client_cmd.add_argument("--port", type=int, default=7715)
    client_cmd.add_argument("--unix", help="daemon unix socket path")
    client_cmd.add_argument("--machine", default="tablet",
                            choices=["mobile", "tablet", "server"])
    client_cmd.add_argument("--app", default="x264")
    client_cmd.add_argument("--factor", type=float, default=1.5)
    client_cmd.add_argument("--steps", type=int, default=50)
    client_cmd.add_argument("--seed", type=int, default=0)
    client_cmd.add_argument(
        "--clients", type=int, default=1,
        help="run a concurrent load with this many clients",
    )
    client_cmd.add_argument(
        "--cold", action="store_true",
        help="skip warm-start even when a snapshot exists",
    )
    client_cmd.add_argument(
        "--snapshot", action="store_true",
        help="store this session's learned state before closing",
    )
    client_cmd.add_argument(
        "--retry", action="store_true",
        help="retry lost requests with backoff and idempotent ids",
    )
    client_cmd.add_argument(
        "--batch", type=int, default=1,
        help="send heartbeats in protocol-v3 batched frames of this "
        "size (1 = one step per round trip)",
    )
    client_cmd.add_argument(
        "--fast", action="store_true",
        help="cheap seeded heartbeat source instead of the full "
        "platform simulator (load generation only)",
    )
    client_cmd.set_defaults(func=_cmd_client)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run the seeded fault-injection suite and its invariants",
    )
    chaos_cmd.add_argument(
        "--plan", action="append",
        help="run only this plan (repeatable; default: all shipped)",
    )
    chaos_cmd.add_argument(
        "--list", action="store_true",
        help="list the shipped fault plans and exit",
    )
    chaos_cmd.add_argument("--machine", default="tablet",
                           choices=["mobile", "tablet", "server"])
    chaos_cmd.add_argument("--app", default="x264")
    chaos_cmd.add_argument("--factor", type=float, default=1.5)
    chaos_cmd.add_argument(
        "--iterations", type=int, default=120,
        help="closed-loop iterations per severity level",
    )
    chaos_cmd.add_argument(
        "--steps", type=int, default=25,
        help="steps per session in service-level scenarios",
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument(
        "--enforce", action="store_true",
        help="run the enforcement-ladder scenario instead of the "
        "fault-plan suite",
    )
    chaos_cmd.add_argument(
        "--json", action="store_true",
        help="emit the full machine-readable report",
    )
    chaos_cmd.set_defaults(func=_cmd_chaos)

    fleet_cmd = sub.add_parser(
        "fleet",
        help="vectorized fleet simulation (repro.fleet)",
    )
    fleet_cmd.add_argument(
        "--preset",
        default="smoke",
        choices=["smoke", "city", "million"],
        help="named scenario preset (default smoke)",
    )
    fleet_cmd.add_argument(
        "--scenario",
        default=None,
        help="path to a scenario JSON (overrides --preset)",
    )
    fleet_cmd.add_argument(
        "--scenario-out",
        default=None,
        help="write the resolved scenario JSON to this path",
    )
    fleet_cmd.add_argument(
        "--devices",
        type=float,
        default=None,
        help="override the expected device count",
    )
    fleet_cmd.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="override the number of simulation epochs",
    )
    fleet_cmd.add_argument(
        "--seed", type=int, default=None, help="scenario seed"
    )
    fleet_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the fleet report as JSON",
    )
    fleet_cmd.add_argument(
        "--prom",
        default=None,
        help="write Prometheus text metrics to this path",
    )
    fleet_cmd.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI gate: require kills with zero hard-tier overdraft "
            "and re-verify pool/scalar equivalence"
        ),
    )
    fleet_cmd.set_defaults(func=_cmd_fleet)

    lint_cmd = sub.add_parser(
        "lint",
        help="jglint static analysis (add --flow for jgflow)",
    )
    lint_cmd.add_argument(
        "args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.lint",
    )
    lint_cmd.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Route ``lint`` before argparse: REMAINDER does not forward
    # leading options like ``--flow`` through a subparser.
    if list(argv)[:1] == ["lint"]:
        from .lint.cli import main as lint_main

        return lint_main(list(argv)[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
