"""Export run traces and sweep results to CSV/JSON.

The figure benchmarks print text tables; downstream users typically want
machine-readable artifacts to plot.  This module writes:

* per-iteration traces (one CSV row per iteration),
* experiment summaries (JSON, one object per run),
* sweep matrices (CSV rows of machine, app, factor, error, accuracy).

Everything is plain stdlib (``csv``/``json``) — no plotting dependency.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, Union

from .harness import ExperimentResult

PathLike = Union[str, pathlib.Path]

TRACE_COLUMNS = (
    "iteration",
    "work",
    "time_s",
    "true_energy_j",
    "measured_energy_j",
    "true_power_w",
    "rate",
    "accuracy",
    "speedup_setpoint",
    "system_index",
    "app_index",
    "pole",
    "epsilon",
    "explored",
    "feasible",
)


def write_trace_csv(result: ExperimentResult, path: PathLike) -> pathlib.Path:
    """Write one run's per-iteration trace as CSV; returns the path."""
    path = pathlib.Path(path)
    trace = result.trace
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_COLUMNS)
        for i in range(len(trace)):
            writer.writerow(
                [
                    i,
                    trace.work[i],
                    trace.time_s[i],
                    trace.true_energy_j[i],
                    trace.measured_energy_j[i],
                    trace.true_power_w[i],
                    trace.rate[i],
                    trace.accuracy[i],
                    trace.speedup_setpoint[i],
                    trace.system_index[i],
                    trace.app_index[i],
                    trace.pole[i],
                    trace.epsilon[i],
                    int(trace.explored[i]),
                    int(trace.feasible[i]),
                ]
            )
    return path


def summary_dict(result: ExperimentResult) -> dict:
    """JSON-ready summary of one run."""
    summary = {
        "machine": result.machine_name,
        "application": result.app_name,
        "controller": result.controller_name,
        "factor": result.factor,
        "iterations": len(result.trace),
        "budget_j": result.goal.budget_j,
        "achieved_energy_j": result.achieved_energy_j,
        "relative_error_pct": result.relative_error_pct,
        "mean_accuracy": result.mean_accuracy,
        "energy_savings": result.energy_savings,
        "default_energy_per_work": result.default_epw,
    }
    if result.oracle_acc is not None:
        summary["oracle_accuracy"] = result.oracle_acc
        summary["effective_accuracy"] = result.effective_acc
    return summary


def write_summary_json(
    result: ExperimentResult, path: PathLike
) -> pathlib.Path:
    """Write one run's summary as JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(summary_dict(result), indent=2) + "\n")
    return path


def write_sweep_csv(
    results: Iterable[ExperimentResult], path: PathLike
) -> pathlib.Path:
    """Write a sweep of runs as one CSV (one row per run)."""
    path = pathlib.Path(path)
    rows = [summary_dict(result) for result in results]
    if not rows:
        raise ValueError("no results to write")
    columns = list(rows[0])
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})
    return path
