"""Execution harness, baselines, oracle, and evaluation metrics."""

from .adapters import CallbackSystem, IterationReport, run_with_callbacks
from .ascii_plot import chart, sparkline
from .baselines import (
    app_only_accuracy,
    max_system_only_savings,
    run_application_only,
    run_system_only,
    run_uncoordinated,
)
from .export import (
    summary_dict,
    write_summary_json,
    write_sweep_csv,
    write_trace_csv,
)
from .green import GreenController, run_green
from .harness import ExperimentResult, prior_shapes, run_jouleguard
from .metrics import effective_accuracy, relative_error
from .repeat import MetricSummary, ReplicateSummary, replicate
from .sweep import (
    SweepCell,
    SweepSummary,
    filter_cells,
    summarize,
    sweep_all,
    sweep_platform,
)
from .oracle import (
    OracleResult,
    best_system_energy_per_work,
    default_energy_per_work,
    max_feasible_factor,
    oracle_accuracy,
)
from .trace import RunTrace

__all__ = [
    "CallbackSystem",
    "ExperimentResult",
    "GreenController",
    "IterationReport",
    "MetricSummary",
    "OracleResult",
    "ReplicateSummary",
    "RunTrace",
    "SweepCell",
    "SweepSummary",
    "app_only_accuracy",
    "best_system_energy_per_work",
    "chart",
    "default_energy_per_work",
    "effective_accuracy",
    "filter_cells",
    "max_feasible_factor",
    "max_system_only_savings",
    "oracle_accuracy",
    "prior_shapes",
    "relative_error",
    "replicate",
    "run_application_only",
    "run_green",
    "run_jouleguard",
    "run_system_only",
    "run_uncoordinated",
    "run_with_callbacks",
    "sparkline",
    "summarize",
    "summary_dict",
    "sweep_all",
    "sweep_platform",
    "write_summary_json",
    "write_sweep_csv",
    "write_trace_csv",
]
