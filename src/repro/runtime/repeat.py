"""Seed replication and summary statistics for experiments.

The paper reports averages over runs; this module makes replication a
one-liner: run any experiment function over a list of seeds and get a
:class:`ReplicateSummary` with mean/std/min/max and a normal-theory
confidence interval for each metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .harness import ExperimentResult

#: Metrics extracted from each run for aggregation.
METRICS = (
    "relative_error_pct",
    "mean_accuracy",
    "energy_savings",
)


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate statistics of one metric over replicated runs."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-theory CI for the mean (z = 1.96 → ~95 %)."""
        if self.n < 2:
            return (self.mean, self.mean)
        half_width = z * self.std / math.sqrt(self.n)
        return (self.mean - half_width, self.mean + half_width)


@dataclass(frozen=True)
class ReplicateSummary:
    """All runs plus per-metric aggregates."""

    results: Tuple[ExperimentResult, ...]
    metrics: Dict[str, MetricSummary]

    def __getitem__(self, metric: str) -> MetricSummary:
        return self.metrics[metric]


def _summarize(name: str, values: Sequence[float]) -> MetricSummary:
    n = len(values)
    mean = sum(values) / n
    variance = (
        sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    )
    return MetricSummary(
        name=name,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        n=n,
    )


def replicate(
    runner: Callable[..., ExperimentResult],
    seeds: Sequence[int],
    include_effective_accuracy: bool = True,
    **kwargs,
) -> ReplicateSummary:
    """Run ``runner(seed=s, **kwargs)`` for each seed and aggregate.

    ``runner`` is any of the harness/baseline entry points
    (``run_jouleguard``, ``run_system_only``, …).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results: List[ExperimentResult] = [
        runner(seed=seed, **kwargs) for seed in seeds
    ]
    metric_names = list(METRICS)
    if include_effective_accuracy and results[0].oracle_acc is not None:
        metric_names.append("effective_acc")
    metrics = {
        name: _summarize(
            name, [getattr(result, name) for result in results]
        )
        for name in metric_names
    }
    return ReplicateSummary(results=tuple(results), metrics=metrics)
