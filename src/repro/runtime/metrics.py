"""Evaluation metrics (paper Eqns. 12–13).

* *Relative error* quantifies how well a run met its energy goal — only
  overshoot counts ("we only count the error if it is above the target",
  Sec. 5.2).
* *Effective accuracy* compares achieved accuracy to the clairvoyant
  oracle's for the same goal.
"""

from __future__ import annotations


from ..core.contracts import non_negative, positive, require


@require("goal_energy_j", positive, "goal energy must be positive")
@require(
    "measured_energy_j", non_negative, "measured energy cannot be negative"
)
def relative_error(measured_energy_j: float, goal_energy_j: float) -> float:
    """Eqn. 12: percentage overshoot of the energy goal (0 if under).

    Returns a percentage, e.g. 3.5 for 3.5 % over the budget.
    """
    if measured_energy_j > goal_energy_j:
        return (measured_energy_j - goal_energy_j) / goal_energy_j * 100.0
    return 0.0


@require("oracle_accuracy", positive, "oracle accuracy must be positive")
@require("accuracy", non_negative, "accuracy cannot be negative")
def effective_accuracy(accuracy: float, oracle_accuracy: float) -> float:
    """Eqn. 13: achieved accuracy as a fraction of the oracle's.

    May slightly exceed 1 in noisy runs that got lucky; the paper plots
    the raw ratio, so no clamping is applied.
    """
    return accuracy / oracle_accuracy
