"""Evaluation metrics (paper Eqns. 12–13).

* *Relative error* quantifies how well a run met its energy goal — only
  overshoot counts ("we only count the error if it is above the target",
  Sec. 5.2).
* *Effective accuracy* compares achieved accuracy to the clairvoyant
  oracle's for the same goal.
"""

from __future__ import annotations


def relative_error(measured_energy_j: float, goal_energy_j: float) -> float:
    """Eqn. 12: percentage overshoot of the energy goal (0 if under).

    Returns a percentage, e.g. 3.5 for 3.5 % over the budget.
    """
    if goal_energy_j <= 0:
        raise ValueError("goal energy must be positive")
    if measured_energy_j < 0:
        raise ValueError("measured energy cannot be negative")
    if measured_energy_j > goal_energy_j:
        return (measured_energy_j - goal_energy_j) / goal_energy_j * 100.0
    return 0.0


def effective_accuracy(accuracy: float, oracle_accuracy: float) -> float:
    """Eqn. 13: achieved accuracy as a fraction of the oracle's.

    May slightly exceed 1 in noisy runs that got lucky; the paper plots
    the raw ratio, so no clamping is applied.
    """
    if oracle_accuracy <= 0:
        raise ValueError("oracle accuracy must be positive")
    if accuracy < 0:
        raise ValueError("accuracy cannot be negative")
    return accuracy / oracle_accuracy
