"""Baseline controllers (paper Sec. 2 and Sec. 5.5).

* :func:`run_system_only` — Sec. 2.1: brute-force the most
  energy-efficient system configuration, never touch the application.
  Meets the goal only if system savings alone suffice; loses no accuracy.
* :func:`run_application_only` — Sec. 2.2: a PowerDial-style performance
  controller on the default system configuration, using a-priori
  knowledge of default power to translate the energy goal into a rate.
* :func:`run_uncoordinated` — Sec. 2.3: both adaptation layers deployed
  concurrently *without communication*: the system-side learner sees
  application speedups as system behaviour, and the application-side
  controller still believes the system is in its default configuration.
  This is the composition whose oscillation motivates JouleGuard.

Analytic helpers (:func:`app_only_accuracy`,
:func:`max_system_only_savings`) provide Fig. 7's comparison lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

from ..apps.base import AppConfig, ApproximateApplication
from ..core.bandit import SystemEnergyOptimizer
from ..core.budget import BudgetAccountant, EnergyGoal
from ..core.controller import SpeedupController, required_rate
from ..core.types import Measurement
from ..hw.machine import Machine
from ..hw.simulator import NoiseModel, PlatformSimulator
from ..workloads.generator import WorkGenerator
from ..workloads.phases import PhasedWorkload, steady
from .harness import ExperimentResult, prior_shapes
from .oracle import (
    best_system_energy_per_work,
    default_energy_per_work,
    oracle_accuracy,
)
from .trace import RunTrace


# -- analytic comparison lines (Fig. 7) ---------------------------------------
def app_only_accuracy(
    app: ApproximateApplication, factor: float
) -> Optional[float]:
    """Best accuracy application-level adaptation alone can achieve.

    On the default system configuration, power is fixed, so reducing
    energy by ``factor`` requires exactly a ``factor`` speedup; returns
    None when the table cannot deliver it (infeasible).
    """
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    if factor > app.table.max_speedup:
        return None
    return app.table.best_accuracy_for_speedup(factor).accuracy


def max_system_only_savings(
    machine: Machine, app: ApproximateApplication
) -> float:
    """Largest energy-reduction factor the system alone can deliver.

    The dotted line of Fig. 7: default energy/work over the best
    configuration's energy/work, at full accuracy.
    """
    best_epw, _ = best_system_energy_per_work(machine, app)
    return default_energy_per_work(machine, app) / best_epw


# -- shared simulation loop ----------------------------------------------------
class Policy(Protocol):
    """A baseline decision policy for the shared closed loop."""

    def decide(self) -> Tuple[int, AppConfig, float, float]:
        """Return (system index, app config, speedup setpoint, pole)."""

    def observe(self, measurement: Measurement) -> None:
        """Fold one iteration's feedback."""


def _simulate_policy(
    machine: Machine,
    app: ApproximateApplication,
    factor: float,
    policy: Policy,
    controller_name: str,
    n_iterations: int,
    workload: Optional[PhasedWorkload],
    work_jitter: float,
    noise: Optional[NoiseModel],
    seed: int,
    compute_oracle: bool,
) -> ExperimentResult:
    if not app.runs_on(machine.name):
        raise ValueError(f"{app.name} does not run on {machine.name}")
    if workload is None:
        workload = steady(n_iterations, base_work=app.work_per_iteration)
    simulator = PlatformSimulator(
        machine,
        app.resource_profile,
        noise=noise if noise is not None else NoiseModel(),
        seed=seed,
    )
    default_epw = default_energy_per_work(machine, app)
    goal = EnergyGoal.from_factor(factor, workload.total_work, default_epw)
    trace = RunTrace()
    space = machine.space
    for difficulty in WorkGenerator(workload, jitter=work_jitter, seed=seed + 2):
        system_index, app_config, setpoint, pole = policy.decide()
        result = simulator.run_iteration(
            config=space[system_index],
            work=workload.base_work,
            app_speedup=app_config.speedup,
            app_power_factor=app_config.power_factor,
            input_difficulty=difficulty,
        )
        measured_energy = result.measured_power_w * result.time_s
        trace.append(
            work=result.work,
            time_s=result.time_s,
            true_energy_j=result.energy_j,
            measured_energy_j=measured_energy,
            true_power_w=result.true_power_w,
            rate=result.measured_rate,
            accuracy=app_config.accuracy,
            speedup_setpoint=setpoint,
            system_index=system_index,
            app_index=app_config.index,
            pole=pole,
            epsilon=0.0,
            explored=False,
            feasible=True,
        )
        policy.observe(
            Measurement(
                work=result.work,
                energy_j=measured_energy,
                rate=result.measured_rate,
                power_w=result.measured_power_w,
            )
        )
    oracle_acc = (
        oracle_accuracy(machine, app, factor, workload).accuracy
        if compute_oracle
        else None
    )
    return ExperimentResult(
        machine_name=machine.name,
        app_name=app.name,
        factor=factor,
        goal=goal,
        trace=trace,
        default_epw=default_epw,
        oracle_acc=oracle_acc,
        controller_name=controller_name,
    )


# -- the three baselines ---------------------------------------------------------
@dataclass
class _SystemOnlyPolicy:
    system_index: int
    app_default: AppConfig

    def decide(self):
        return self.system_index, self.app_default, 1.0, 0.0

    def observe(self, measurement: Measurement) -> None:
        pass


class _ApplicationOnlyPolicy:
    """PowerDial on the default system (Sec. 2.2).

    Knows the default configuration's nominal rate and power a priori
    and runs a fixed-pole integral controller toward the rate implied by
    the remaining budget.
    """

    def __init__(
        self,
        app: ApproximateApplication,
        goal: EnergyGoal,
        default_rate: float,
        default_power: float,
        system_index: int,
        pole: float = 0.1,
    ) -> None:
        self.app = app
        self.accountant = BudgetAccountant(goal)
        self.default_rate = default_rate
        self.default_power = default_power
        self.system_index = system_index
        self.pole = pole
        frontier = app.table.pareto_frontier
        self.controller = SpeedupController(
            min_speedup=frontier[0].speedup,
            max_speedup=app.table.max_speedup,
        )
        self._config = app.table.default
        self._last_rate: Optional[float] = None

    def decide(self):
        return self.system_index, self._config, self.controller.speedup, self.pole

    def observe(self, measurement: Measurement) -> None:
        self.accountant.record(measurement.work, measurement.energy_j)
        target = self.accountant.target_energy_per_work()
        if target is None or target <= 0:
            speedup = self.app.table.max_speedup
            self.controller.reset(speedup)
        else:
            needed = required_rate(target, self.default_power)
            speedup = self.controller.step(
                required=needed,
                measured_rate=measurement.rate,
                est_system_rate=self.default_rate,
                pole=self.pole,
            )
        self._config = self.app.table.best_accuracy_for_speedup(speedup)


class _UncoordinatedPolicy:
    """Independent system learner + application controller (Sec. 2.3).

    The learner updates its per-configuration rate estimates with the
    *raw* application rate — it cannot know the application's speedup —
    and the application controller keeps using the default system
    configuration's nominal models.  Each adapts around the other,
    producing the oscillation of Fig. 1.
    """

    def __init__(
        self,
        machine: Machine,
        app: ApproximateApplication,
        goal: EnergyGoal,
        default_rate: float,
        default_power: float,
        seed: int,
    ) -> None:
        rate_shape, power_shape = prior_shapes(machine)
        self.seo = SystemEnergyOptimizer(rate_shape, power_shape, seed=seed)
        self.app_side = _ApplicationOnlyPolicy(
            app,
            goal,
            default_rate,
            default_power,
            system_index=0,
            pole=0.0,  # PowerDial alone is provably stable even deadbeat
        )
        self._system_index = self.seo.best_index

    def decide(self):
        _, app_config, setpoint, pole = self.app_side.decide()
        return self._system_index, app_config, setpoint, pole

    def observe(self, measurement: Measurement) -> None:
        # No coordination: raw rate, unnormalized by the app's speedup.
        self.seo.update(
            self._system_index, measurement.rate, measurement.power_w
        )
        self._system_index = self.seo.select().index
        self.app_side.observe(measurement)


def run_system_only(
    machine: Machine,
    app: ApproximateApplication,
    factor: float,
    n_iterations: int = 300,
    workload: Optional[PhasedWorkload] = None,
    work_jitter: float = 0.03,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    compute_oracle: bool = True,
) -> ExperimentResult:
    """Sec. 2.1: best-efficiency system configuration, default application."""
    _, best_config = best_system_energy_per_work(machine, app)
    policy = _SystemOnlyPolicy(
        system_index=machine.space.index_of(best_config),
        app_default=app.table.default,
    )
    return _simulate_policy(
        machine, app, factor, policy, "system_only", n_iterations,
        workload, work_jitter, noise, seed, compute_oracle,
    )


def run_application_only(
    machine: Machine,
    app: ApproximateApplication,
    factor: float,
    n_iterations: int = 300,
    workload: Optional[PhasedWorkload] = None,
    work_jitter: float = 0.03,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    compute_oracle: bool = True,
) -> ExperimentResult:
    """Sec. 2.2: PowerDial-style control on the default system config."""
    if workload is None:
        workload = steady(n_iterations, base_work=app.work_per_iteration)
    from ..hw.power_model import system_power
    from ..hw.speedup_model import work_rate

    default_config = machine.default_config
    default_rate = work_rate(machine, default_config, app.resource_profile)
    default_power = system_power(machine, default_config, app.resource_profile)
    goal = EnergyGoal.from_factor(
        factor, workload.total_work, default_energy_per_work(machine, app)
    )
    policy = _ApplicationOnlyPolicy(
        app,
        goal,
        default_rate,
        default_power,
        system_index=machine.space.index_of(default_config),
    )
    return _simulate_policy(
        machine, app, factor, policy, "application_only", n_iterations,
        workload, work_jitter, noise, seed, compute_oracle,
    )


def run_uncoordinated(
    machine: Machine,
    app: ApproximateApplication,
    factor: float,
    n_iterations: int = 300,
    workload: Optional[PhasedWorkload] = None,
    work_jitter: float = 0.03,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    compute_oracle: bool = True,
) -> ExperimentResult:
    """Sec. 2.3: simultaneous, non-communicating system + app adaptation."""
    if workload is None:
        workload = steady(n_iterations, base_work=app.work_per_iteration)
    from ..hw.power_model import system_power
    from ..hw.speedup_model import work_rate

    default_config = machine.default_config
    default_rate = work_rate(machine, default_config, app.resource_profile)
    default_power = system_power(machine, default_config, app.resource_profile)
    goal = EnergyGoal.from_factor(
        factor, workload.total_work, default_energy_per_work(machine, app)
    )
    policy = _UncoordinatedPolicy(
        machine, app, goal, default_rate, default_power, seed=seed + 7
    )
    return _simulate_policy(
        machine, app, factor, policy, "uncoordinated", n_iterations,
        workload, work_jitter, noise, seed, compute_oracle,
    )
