"""A Green-style accuracy-guarantee baseline (Baek & Chilimbi, PLDI'10).

Green occupies the *opposite* corner of the design space from
JouleGuard (paper Sec. 6.1): it **guarantees accuracy** (quality must
stay above a user bound) while heuristically **minimizing energy** — it
cannot guarantee energy.  Reproducing it gives the comparison the
related-work section argues about: run Green at the accuracy bound
JouleGuard happened to deliver for some energy goal, and see how much
energy Green's heuristic actually uses.

The controller below follows Green's recipe at our abstraction level:

* offline "calibration" picks the fastest application configuration
  whose accuracy meets the bound (Green's QoS model),
* the system layer greedily seeks energy efficiency (re-using the SEO
  learner — Green itself has no system layer; giving it one is charitable),
* a periodic re-calibration checks measured accuracy against the bound
  and steps the application configuration back when violated, like
  Green's sampling-based adaptation.
"""

from __future__ import annotations

from typing import Optional

from ..apps.base import ApproximateApplication
from ..core.bandit import SystemEnergyOptimizer
from ..core.types import Measurement
from ..hw.machine import Machine
from ..hw.simulator import NoiseModel, PlatformSimulator
from ..workloads.generator import WorkGenerator
from ..workloads.phases import PhasedWorkload, steady
from .harness import ExperimentResult, prior_shapes
from .oracle import default_energy_per_work
from .trace import RunTrace
from ..core.budget import EnergyGoal


class GreenController:
    """Accuracy-bounded, energy-greedy controller."""

    def __init__(
        self,
        app: ApproximateApplication,
        accuracy_bound: float,
        machine: Machine,
        recalibration_period: int = 20,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= accuracy_bound <= 1.0:
            raise ValueError("accuracy bound must be in [0, 1]")
        self.app = app
        self.accuracy_bound = accuracy_bound
        self.recalibration_period = recalibration_period
        rate_shape, power_shape = prior_shapes(machine)
        self.seo = SystemEnergyOptimizer(
            rate_shape, power_shape, seed=seed
        )
        # Calibration: fastest config meeting the bound (accuracy is the
        # QoS model; Green trusts it between recalibrations).
        eligible = [
            config
            for config in app.table.pareto_frontier
            if config.accuracy >= accuracy_bound
        ]
        self._config = eligible[-1] if eligible else app.table.default
        self._system_index = self.seo.best_index
        self._since_recalibration = 0

    def decide(self):
        return self._system_index, self._config, self._config.speedup, 0.0

    def observe(self, measurement: Measurement) -> None:
        self.seo.update(
            self._system_index,
            measurement.rate / self._config.speedup,
            measurement.power_w,
        )
        self._system_index = self.seo.select().index
        self._since_recalibration += 1
        if self._since_recalibration >= self.recalibration_period:
            self._since_recalibration = 0
            # Sampling-based QoS check: our tables are the QoS ground
            # truth, so the check passes unless the bound itself moved;
            # the hook is kept for workloads with drifting accuracy.
            if self._config.accuracy < self.accuracy_bound:
                frontier = self.app.table.pareto_frontier
                better = [
                    c for c in frontier if c.accuracy >= self.accuracy_bound
                ]
                if better:
                    self._config = better[-1]


def run_green(
    machine: Machine,
    app: ApproximateApplication,
    accuracy_bound: float,
    n_iterations: int = 300,
    workload: Optional[PhasedWorkload] = None,
    work_jitter: float = 0.03,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    report_factor: float = 1.0,
) -> ExperimentResult:
    """Run the Green-style baseline.

    ``report_factor`` only labels the result (Green has no energy goal);
    relative error is reported against that factor's budget so the
    outcome is directly comparable with a JouleGuard run at the same
    factor.
    """
    if not app.runs_on(machine.name):
        raise ValueError(f"{app.name} does not run on {machine.name}")
    if workload is None:
        workload = steady(n_iterations, base_work=app.work_per_iteration)
    simulator = PlatformSimulator(
        machine,
        app.resource_profile,
        noise=noise if noise is not None else NoiseModel(),
        seed=seed,
    )
    controller = GreenController(
        app, accuracy_bound, machine, seed=seed + 5
    )
    default_epw = default_energy_per_work(machine, app)
    goal = EnergyGoal.from_factor(
        report_factor, workload.total_work, default_epw
    )
    trace = RunTrace()
    space = machine.space
    for difficulty in WorkGenerator(workload, jitter=work_jitter, seed=seed + 2):
        system_index, config, setpoint, pole = controller.decide()
        result = simulator.run_iteration(
            config=space[system_index],
            work=workload.base_work,
            app_speedup=config.speedup,
            app_power_factor=config.power_factor,
            input_difficulty=difficulty,
        )
        measured_energy = result.measured_power_w * result.time_s
        trace.append(
            work=result.work,
            time_s=result.time_s,
            true_energy_j=result.energy_j,
            measured_energy_j=measured_energy,
            true_power_w=result.true_power_w,
            rate=result.measured_rate,
            accuracy=config.accuracy,
            speedup_setpoint=setpoint,
            system_index=system_index,
            app_index=config.index,
            pole=pole,
            epsilon=controller.seo.epsilon,
            explored=False,
            feasible=True,
        )
        controller.observe(
            Measurement(
                work=result.work,
                energy_j=measured_energy,
                rate=result.measured_rate,
                power_w=result.measured_power_w,
            )
        )
    return ExperimentResult(
        machine_name=machine.name,
        app_name=app.name,
        factor=report_factor,
        goal=goal,
        trace=trace,
        default_epw=default_epw,
        oracle_acc=None,
        controller_name="green",
    )
