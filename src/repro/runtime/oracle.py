"""Clairvoyant oracle (paper Sec. 5.2).

The oracle exhaustively profiles the noise-free models and, for a given
energy goal, picks the best (system, application) pair per iteration with
perfect knowledge and zero overhead — "the best accuracy that could be
accomplished by dynamically managing application and system with perfect
knowledge of the future".

The paper's own key insight (Sec. 2.5) makes the oracle cheap to
compute: since accuracy decreases with required speedup, the optimal
strategy uses the most energy-efficient system configuration and buys
the remaining savings with the least application speedup possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..apps.base import ApproximateApplication
from ..hw.knobs import SystemConfig
from ..hw.machine import Machine
from ..hw.power_model import system_power
from ..hw.speedup_model import work_rate
from ..workloads.phases import PhasedWorkload, steady


def default_energy_per_work(
    machine: Machine, app: ApproximateApplication
) -> float:
    """Noise-free joules per work unit in the default configurations."""
    config = machine.default_config
    rate = work_rate(machine, config, app.resource_profile)
    power = system_power(machine, config, app.resource_profile)
    return power / rate


def best_system_energy_per_work(
    machine: Machine, app: ApproximateApplication
) -> Tuple[float, SystemConfig]:
    """Minimum joules/work over all system configurations (app default).

    This is the Sec. 2.1 brute-force search, done on the noise-free
    models — exactly what an oracle may do.
    """
    best_epw = float("inf")
    best_config = machine.default_config
    for config in machine.space:
        rate = work_rate(machine, config, app.resource_profile)
        power = system_power(machine, config, app.resource_profile)
        epw = power / rate
        if epw < best_epw:
            best_epw = epw
            best_config = config
    return best_epw, best_config


@dataclass(frozen=True)
class OracleResult:
    """The oracle's verdict for one (machine, app, factor) triple."""

    feasible: bool
    accuracy: float
    required_speedup: float
    best_system_epw: float
    default_epw: float

    @property
    def max_feasible_factor(self) -> float:
        """Largest energy-reduction factor any controller could meet."""
        return self.default_epw / self.best_system_epw * self._max_speedup

    _max_speedup: float = 1.0


def oracle_accuracy(
    machine: Machine,
    app: ApproximateApplication,
    factor: float,
    workload: Optional[PhasedWorkload] = None,
) -> OracleResult:
    """Best achievable accuracy for reducing default energy by ``factor``.

    With a phased workload the oracle holds the per-iteration energy
    budget uniform and converts easy-phase headroom into accuracy, the
    ideal behaviour Sec. 5.6 describes.
    """
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    if workload is None:
        workload = steady(1)
    default_epw = default_energy_per_work(machine, app)
    best_epw, _ = best_system_energy_per_work(machine, app)
    target_epw = default_epw / factor

    total_iterations = workload.n_iterations
    feasible = True
    weighted_accuracy = 0.0
    worst_required = 0.0
    for phase in workload.phases:
        # An iteration of difficulty d costs d× the energy at a fixed
        # configuration, so the required speedup scales with d.
        required = best_epw * phase.work_multiplier / target_epw
        worst_required = max(worst_required, required)
        if required <= 1.0:
            accuracy = app.table.pareto_frontier[0].accuracy
        else:
            config = app.table.best_accuracy_for_speedup(required)
            if config.speedup < required:
                feasible = False
            accuracy = config.accuracy
        weighted_accuracy += accuracy * phase.n_iterations
    return OracleResult(
        feasible=feasible,
        accuracy=weighted_accuracy / total_iterations,
        required_speedup=worst_required,
        best_system_epw=best_epw,
        default_epw=default_epw,
        _max_speedup=app.table.max_speedup,
    )


def max_feasible_factor(
    machine: Machine, app: ApproximateApplication
) -> float:
    """Largest f for which the goal is achievable at all (Sec. 3.4.3)."""
    default_epw = default_energy_per_work(machine, app)
    best_epw, _ = best_system_energy_per_work(machine, app)
    return default_epw / best_epw * app.table.max_speedup
