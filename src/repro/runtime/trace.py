"""Per-iteration traces of closed-loop runs.

The figure benchmarks need time series (energy per frame, accuracy, the
configurations chosen); :class:`RunTrace` records everything one
iteration produces so every figure can be regenerated from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class RunTrace:
    """Columnar per-iteration record of one closed-loop run."""

    work: List[float] = field(default_factory=list)
    time_s: List[float] = field(default_factory=list)
    true_energy_j: List[float] = field(default_factory=list)
    measured_energy_j: List[float] = field(default_factory=list)
    true_power_w: List[float] = field(default_factory=list)
    rate: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)
    speedup_setpoint: List[float] = field(default_factory=list)
    system_index: List[int] = field(default_factory=list)
    app_index: List[int] = field(default_factory=list)
    pole: List[float] = field(default_factory=list)
    epsilon: List[float] = field(default_factory=list)
    explored: List[bool] = field(default_factory=list)
    feasible: List[bool] = field(default_factory=list)

    def append(
        self,
        work: float,
        time_s: float,
        true_energy_j: float,
        measured_energy_j: float,
        true_power_w: float,
        rate: float,
        accuracy: float,
        speedup_setpoint: float,
        system_index: int,
        app_index: int,
        pole: float,
        epsilon: float,
        explored: bool,
        feasible: bool,
    ) -> None:
        self.work.append(work)
        self.time_s.append(time_s)
        self.true_energy_j.append(true_energy_j)
        self.measured_energy_j.append(measured_energy_j)
        self.true_power_w.append(true_power_w)
        self.rate.append(rate)
        self.accuracy.append(accuracy)
        self.speedup_setpoint.append(speedup_setpoint)
        self.system_index.append(system_index)
        self.app_index.append(app_index)
        self.pole.append(pole)
        self.epsilon.append(epsilon)
        self.explored.append(explored)
        self.feasible.append(feasible)

    def __len__(self) -> int:
        return len(self.work)

    # -- derived series -------------------------------------------------------
    def energy_per_work(self) -> np.ndarray:
        """Per-iteration joules per work unit (Fig. 4's left column)."""
        return np.asarray(self.true_energy_j) / np.asarray(self.work)

    def mean_accuracy(self) -> float:
        """Work-weighted mean accuracy over the run."""
        work = np.asarray(self.work)
        accuracy = np.asarray(self.accuracy)
        return float((accuracy * work).sum() / work.sum())

    def total_energy_j(self) -> float:
        return float(np.sum(self.true_energy_j))

    def total_work(self) -> float:
        return float(np.sum(self.work))

    def windowed_energy_per_work(self, window: int) -> np.ndarray:
        """Moving-average energy per work unit (smoother time series)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        energy = np.asarray(self.true_energy_j)
        work = np.asarray(self.work)
        kernel = np.ones(window)
        smoothed_energy = np.convolve(energy, kernel, mode="valid")
        smoothed_work = np.convolve(work, kernel, mode="valid")
        return smoothed_energy / smoothed_work
