"""Terminal plots for traces — no plotting dependency required.

Renders time series as ASCII sparklines and small multi-row charts so
the CLI and examples can show convergence behaviour inline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    width: int = 60,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-line sparkline of ``values``, resampled to ``width`` chars."""
    if len(values) == 0:
        return ""
    if width < 1:
        raise ValueError("width must be >= 1")
    resampled = _resample(values, width)
    lo = min(resampled) if lo is None else lo
    hi = max(resampled) if hi is None else hi
    span = hi - lo
    chars = []
    for value in resampled:
        if span <= 0:
            level = len(_SPARK_LEVELS) // 2
        else:
            normalized = (value - lo) / span
            level = int(round(normalized * (len(_SPARK_LEVELS) - 1)))
            level = min(max(level, 0), len(_SPARK_LEVELS) - 1)
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def _resample(values: Sequence[float], width: int) -> List[float]:
    """Bucket-mean resampling of ``values`` into ``width`` points."""
    n = len(values)
    if n <= width:
        return list(values)
    resampled = []
    for bucket in range(width):
        start = bucket * n // width
        end = max(start + 1, (bucket + 1) * n // width)
        chunk = values[start:end]
        resampled.append(sum(chunk) / len(chunk))
    return resampled


def hbar(fraction: float, width: int = 20) -> str:
    """A horizontal bar filling ``fraction`` of ``width`` cells.

    Fractions are clamped to [0, 1]; partial cells render with the
    sparkline glyph ramp so a 0.5 %-of-a-cell change is still visible.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    fraction = min(max(float(fraction), 0.0), 1.0)
    cells = fraction * width
    full = int(cells)
    bar = "█" * full
    if full < width:
        remainder = cells - full
        level = int(round(remainder * (len(_SPARK_LEVELS) - 1)))
        bar += _SPARK_LEVELS[level]
        bar += " " * (width - full - 1)
    return bar


def chart(
    values: Sequence[float],
    height: int = 8,
    width: int = 60,
    target: Optional[float] = None,
    label: str = "",
) -> str:
    """Multi-row ASCII chart with axis labels and an optional target line.

    The target (e.g. the energy goal) is drawn as a row of ``-`` marks
    so convergence toward it is visible at a glance.
    """
    if len(values) == 0:
        return "(empty series)"
    if height < 2 or width < 2:
        raise ValueError("chart needs height >= 2 and width >= 2")
    resampled = _resample(values, width)
    lo = min(resampled + ([target] if target is not None else []))
    hi = max(resampled + ([target] if target is not None else []))
    span = hi - lo or 1.0

    def row_of(value: float) -> int:
        normalized = (value - lo) / span
        return min(height - 1, int(normalized * (height - 1) + 0.5))

    grid = [[" "] * width for _ in range(height)]
    target_row = row_of(target) if target is not None else None
    if target_row is not None:
        for col in range(width):
            grid[target_row][col] = "-"
    for col, value in enumerate(resampled):
        grid[row_of(value)][col] = "*"

    lines = []
    if label:
        lines.append(label)
    for row in range(height - 1, -1, -1):
        prefix = f"{lo + span * row / (height - 1):>10.3g} |"
        lines.append(prefix + "".join(grid[row]))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"0 .. {len(values) - 1} ({len(values)} points)"
    )
    return "\n".join(lines)
