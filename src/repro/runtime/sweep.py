"""The full evaluation sweep as a library (Sec. 5.2 methodology).

Runs JouleGuard for every application on a platform (or all platforms)
across the paper's energy-reduction factors, skipping infeasible
combinations, and returns structured cells — the data behind Figs. 5
and 6.  Used by the benchmarks, the CLI, and available to users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..apps import applications_for_platform
from ..core.budget import PAPER_FACTORS
from ..hw import all_machines
from ..hw.machine import Machine
from .harness import run_jouleguard
from .oracle import max_feasible_factor

#: Default margin against the theoretical maximum factor (the paper
#: likewise omits bars for infeasible goals).
DEFAULT_MARGIN = 0.9


@dataclass(frozen=True)
class SweepCell:
    """One (platform, application, factor) outcome."""

    machine: str
    app: str
    factor: float
    relative_error_pct: float
    effective_accuracy: float
    mean_accuracy: float
    oracle_accuracy: float


def sweep_platform(
    machine: Machine,
    factors: Sequence[float] = PAPER_FACTORS,
    n_iterations: int = 400,
    seed: int = 17,
    margin: float = DEFAULT_MARGIN,
    apps: Optional[Dict] = None,
) -> List[SweepCell]:
    """Sweep every (application, factor) on one platform."""
    if apps is None:
        apps = applications_for_platform(machine.name)
    cells: List[SweepCell] = []
    for app_name, app in apps.items():
        limit = max_feasible_factor(machine, app) * margin
        for factor in factors:
            if factor > limit:
                continue
            result = run_jouleguard(
                machine,
                app,
                factor=factor,
                n_iterations=n_iterations,
                seed=seed,
            )
            cells.append(
                SweepCell(
                    machine=machine.name,
                    app=app_name,
                    factor=factor,
                    relative_error_pct=result.relative_error_pct,
                    effective_accuracy=result.effective_acc,
                    mean_accuracy=result.mean_accuracy,
                    oracle_accuracy=result.oracle_acc,
                )
            )
    return cells


def sweep_all(
    factors: Sequence[float] = PAPER_FACTORS,
    n_iterations: int = 400,
    seed: int = 17,
    margin: float = DEFAULT_MARGIN,
) -> List[SweepCell]:
    """The complete Fig. 5/6 sweep over all three platforms."""
    cells: List[SweepCell] = []
    for machine in all_machines().values():
        cells.extend(
            sweep_platform(
                machine,
                factors=factors,
                n_iterations=n_iterations,
                seed=seed,
                margin=margin,
            )
        )
    return cells


@dataclass(frozen=True)
class SweepSummary:
    """Aggregate statistics of one sweep."""

    n_runs: int
    mean_error_pct: float
    median_error_pct: float
    p90_error_pct: float
    max_error_pct: float
    mean_effective_accuracy: float
    min_effective_accuracy: float


def summarize(cells: Iterable[SweepCell]) -> SweepSummary:
    """Aggregate a sweep into the headline numbers (Sec. 5.7 style)."""
    cells = list(cells)
    if not cells:
        raise ValueError("empty sweep")
    errors = np.array([c.relative_error_pct for c in cells])
    accuracy = np.array([c.effective_accuracy for c in cells])
    return SweepSummary(
        n_runs=len(cells),
        mean_error_pct=float(errors.mean()),
        median_error_pct=float(np.median(errors)),
        p90_error_pct=float(np.percentile(errors, 90)),
        max_error_pct=float(errors.max()),
        mean_effective_accuracy=float(accuracy.mean()),
        min_effective_accuracy=float(accuracy.min()),
    )


def filter_cells(
    cells: Iterable[SweepCell],
    machine: Optional[str] = None,
    app: Optional[str] = None,
    factor: Optional[float] = None,
) -> List[SweepCell]:
    """Select sweep cells by platform / application / factor."""
    return [
        c
        for c in cells
        if (machine is None or c.machine == machine)
        and (app is None or c.app == app)
        and (factor is None or c.factor == factor)
    ]
