"""Adapters for driving JouleGuard from user-supplied callbacks.

The paper stresses that the runtime's requirements are "really interface
issues" (Sec. 3.5): supply functions that read performance and power and
functions that apply configurations, and JouleGuard can manage any
system.  :class:`CallbackSystem` packages exactly that interface, and
:func:`run_with_callbacks` is the matching closed-loop driver — the
bridge from this reproduction to a real deployment (or to any
third-party simulator).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..core.budget import EnergyGoal
from ..core.jouleguard import JouleGuardRuntime, build_runtime
from ..core.types import AccuracyOrderedTable, Measurement


@dataclass
class CallbackSystem:
    """A system described entirely by callbacks (paper Sec. 3.5).

    Parameters
    ----------
    n_configs:
        Number of system configurations.
    apply_system_config:
        Called with the configuration index to switch into.
    apply_app_config:
        Called with the selected application configuration object.
    read_power_w:
        Returns current full-system power in Watts.  "Any performance
        metric can be used as long as it increases with increasing
        performance"; power may come from an external monitor or
        on-board registers.
    prior_rate_shape / prior_power_shape:
        Optimistic initialization shapes; default flat (no prior
        knowledge) if omitted.
    """

    n_configs: int
    apply_system_config: Callable[[int], None]
    apply_app_config: Callable[[Any], None]
    read_power_w: Callable[[], float]
    prior_rate_shape: Optional[Sequence[float]] = None
    prior_power_shape: Optional[Sequence[float]] = None

    def __post_init__(self) -> None:
        if self.n_configs < 1:
            raise ValueError("need at least one configuration")
        if self.prior_rate_shape is None:
            self.prior_rate_shape = [1.0] * self.n_configs
        if self.prior_power_shape is None:
            self.prior_power_shape = [1.0] * self.n_configs
        if (
            len(self.prior_rate_shape) != self.n_configs
            or len(self.prior_power_shape) != self.n_configs
        ):
            raise ValueError("prior shapes must match n_configs")


@dataclass
class IterationReport:
    """What :func:`run_with_callbacks` records per iteration."""

    work: float
    seconds: float
    energy_j: float
    accuracy: float
    system_index: int


def run_with_callbacks(
    system: CallbackSystem,
    table: AccuracyOrderedTable,
    goal: EnergyGoal,
    do_iteration: Callable[[], float],
    clock: Callable[[], float] = time.perf_counter,
    max_iterations: Optional[int] = None,
    seed: int = 0,
) -> list:
    """Drive a real (callback-defined) system under an energy goal.

    ``do_iteration`` performs one unit of application work (after the
    adapter has applied the decided configurations) and returns the work
    completed.  Energy is integrated as ``power × elapsed`` per
    iteration using ``read_power_w`` and ``clock``.

    Returns the list of :class:`IterationReport`; stops when the goal's
    work is complete or after ``max_iterations``.
    """
    runtime: JouleGuardRuntime = build_runtime(
        system.prior_rate_shape,
        system.prior_power_shape,
        table,
        goal,
        seed=seed,
    )
    reports = []
    iterations = 0
    work_done = 0.0
    while work_done < goal.total_work:
        if max_iterations is not None and iterations >= max_iterations:
            break
        decision = runtime.current_decision
        system.apply_system_config(decision.system_index)
        system.apply_app_config(decision.app_config)
        start = clock()
        work = do_iteration()
        elapsed = max(clock() - start, 1e-12)
        if work <= 0:
            raise ValueError("do_iteration must return positive work")
        power = system.read_power_w()
        energy = power * elapsed
        runtime.step(
            Measurement(
                work=work,
                energy_j=energy,
                rate=work / elapsed,
                power_w=power,
            )
        )
        reports.append(
            IterationReport(
                work=work,
                seconds=elapsed,
                energy_j=energy,
                accuracy=decision.app_config.accuracy,
                system_index=decision.system_index,
            )
        )
        work_done += work
        iterations += 1
    return reports
