"""Closed-loop execution harness.

Glues the three layers together: a :class:`~repro.hw.simulator.PlatformSimulator`
stands in for the testbed, an application from :mod:`repro.apps` provides
the configuration table and resource profile, and the
:class:`~repro.core.jouleguard.JouleGuardRuntime` makes the decisions.
One call to :func:`run_jouleguard` is one experiment of Sec. 5: a
workload executed under an energy goal, with a full per-iteration trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..apps.base import ApproximateApplication
from ..core.bandit import SystemEnergyOptimizer
from ..core.budget import EnergyGoal
from ..core.jouleguard import JouleGuardRuntime
from ..core.types import Measurement
from ..hw.machine import Machine
from ..hw.simulator import NoiseModel, PlatformSimulator
from ..workloads.generator import WorkGenerator
from ..workloads.phases import PhasedWorkload, steady
from .metrics import effective_accuracy, relative_error
from .oracle import default_energy_per_work, oracle_accuracy
from .trace import RunTrace


def prior_shapes(machine: Machine) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's optimistic bandit initialization (Sec. 3.2).

    Performance is assumed to increase linearly with resources
    (cores × clock, with mild hyperthreading/memory-controller bumps)
    and power cubically with clock speed and linearly with cores.  The
    power prior additionally includes the platform's static floor (idle
    plus rest-of-system power) — both are known to the runtime, which
    configures its sensor offset from them (Sec. 4.2); without the floor
    the prior efficiency ranking inverts on platforms where static power
    dominates.  The shapes are unit-free beyond that; the learner
    calibrates absolute scale from its first measurements.
    """
    floor_w = machine.idle_w + machine.external_w
    rates: List[float] = []
    powers: List[float] = []
    for config in machine.space:
        capacity = 0.0
        dynamic = 0.0
        for cluster in machine.clusters:
            n = config[cluster.cores_knob]
            f = config[cluster.speed_knob]
            capacity += n * f
            dynamic += n * (0.15 + f**3)
        if machine.hyperthreading_on(config):
            capacity *= 1.2
            dynamic *= 1.05
        extra_ctrls = max(0, machine.memory_controllers(config) - 1)
        capacity *= 1.0 + 0.1 * extra_ctrls
        rates.append(capacity)
        powers.append(floor_w + dynamic + 2.0 * extra_ctrls)
    return np.asarray(rates), np.asarray(powers)


@dataclass
class ExperimentResult:
    """Outcome of one closed-loop run against an energy goal."""

    machine_name: str
    app_name: str
    factor: float
    goal: EnergyGoal
    trace: RunTrace
    default_epw: float
    oracle_acc: Optional[float] = None
    controller_name: str = "jouleguard"

    @property
    def achieved_energy_j(self) -> float:
        return self.trace.total_energy_j()

    @property
    def relative_error_pct(self) -> float:
        """Eqn. 12 against the run's total budget."""
        return relative_error(self.achieved_energy_j, self.goal.budget_j)

    @property
    def mean_accuracy(self) -> float:
        return self.trace.mean_accuracy()

    @property
    def effective_acc(self) -> float:
        """Eqn. 13; requires the oracle accuracy to have been computed."""
        if self.oracle_acc is None:
            raise ValueError("oracle accuracy not computed for this run")
        return effective_accuracy(self.mean_accuracy, self.oracle_acc)

    @property
    def energy_savings(self) -> float:
        """Achieved energy-reduction factor vs. the default configuration."""
        default_total = self.default_epw * self.trace.total_work()
        return default_total / self.achieved_energy_j


def _record(
    trace: RunTrace, result, decision, measured_energy: float, accuracy: float
) -> None:
    trace.append(
        work=result.work,
        time_s=result.time_s,
        true_energy_j=result.energy_j,
        measured_energy_j=measured_energy,
        true_power_w=result.true_power_w,
        rate=result.measured_rate,
        accuracy=accuracy,
        speedup_setpoint=decision.speedup_setpoint,
        system_index=decision.system_index,
        app_index=getattr(decision.app_config, "index", -1),
        pole=decision.pole,
        epsilon=decision.epsilon,
        explored=decision.explored,
        feasible=decision.feasible,
    )


def run_jouleguard(
    machine: Machine,
    app: ApproximateApplication,
    factor: float,
    n_iterations: int = 300,
    workload: Optional[PhasedWorkload] = None,
    work_jitter: float = 0.03,
    noise: Optional[NoiseModel] = None,
    seed: int = 0,
    compute_oracle: bool = True,
    seo_kwargs: Optional[dict] = None,
) -> ExperimentResult:
    """Run one JouleGuard experiment (Sec. 5.2 methodology).

    The energy goal reduces default-configuration energy by ``factor``;
    the result carries the full trace plus the oracle accuracy for
    effective-accuracy reporting.
    """
    if not app.runs_on(machine.name):
        raise ValueError(f"{app.name} does not run on {machine.name}")
    if workload is None:
        workload = steady(n_iterations, base_work=app.work_per_iteration)
    simulator = PlatformSimulator(
        machine,
        app.resource_profile,
        noise=noise if noise is not None else NoiseModel(),
        seed=seed,
    )
    default_epw = default_energy_per_work(machine, app)
    goal = EnergyGoal.from_factor(
        factor, total_work=workload.total_work, default_energy_per_work=default_epw
    )
    rate_shape, power_shape = prior_shapes(machine)
    seo = SystemEnergyOptimizer(
        rate_shape, power_shape, seed=seed + 1, **(seo_kwargs or {})
    )
    runtime = JouleGuardRuntime(seo=seo, table=app.table, goal=goal)

    trace = RunTrace()
    difficulties = WorkGenerator(workload, jitter=work_jitter, seed=seed + 2)
    space = machine.space
    for difficulty in difficulties:
        decision = runtime.current_decision
        result = simulator.run_iteration(
            config=space[decision.system_index],
            work=workload.base_work,
            app_speedup=decision.app_config.speedup,
            app_power_factor=getattr(decision.app_config, "power_factor", 1.0),
            input_difficulty=difficulty,
        )
        measured_energy = result.measured_power_w * result.time_s
        _record(
            trace, result, decision, measured_energy, decision.app_config.accuracy
        )
        runtime.step(
            Measurement(
                work=result.work,
                energy_j=measured_energy,
                rate=result.measured_rate,
                power_w=result.measured_power_w,
            )
        )

    oracle_acc = None
    if compute_oracle:
        oracle_acc = oracle_accuracy(machine, app, factor, workload).accuracy
    return ExperimentResult(
        machine_name=machine.name,
        app_name=app.name,
        factor=factor,
        goal=goal,
        trace=trace,
        default_epw=default_epw,
        oracle_acc=oracle_acc,
    )
