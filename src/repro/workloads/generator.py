"""Per-iteration work generation with input-dependent variability.

Real inputs are not uniform: frames and queries differ in cost.  The
:class:`WorkGenerator` wraps a :class:`~repro.workloads.phases.PhasedWorkload`
with lognormal per-iteration jitter, giving the runtime the "application
workload fluctuations" its control loop must absorb (Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from .phases import PhasedWorkload


@dataclass
class WorkGenerator:
    """Workload → per-iteration difficulty, with multiplicative jitter.

    Yields each iteration's computational-cost multiplier (the phase's
    difficulty times lognormal jitter with unit mean).

    Parameters
    ----------
    workload:
        The phase structure.
    jitter:
        Standard deviation of the lognormal multiplier (0 = exact).
    seed:
        RNG seed.
    """

    workload: PhasedWorkload
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def __iter__(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        for difficulty in self.workload.iteration_difficulty():
            if self.jitter > 0:
                difficulty *= float(
                    np.exp(rng.normal(-0.5 * self.jitter**2, self.jitter))
                )
            yield difficulty

    def materialize(self) -> List[float]:
        """The full difficulty sequence as a list (deterministic given seed)."""
        return list(iter(self))

    @property
    def n_iterations(self) -> int:
        return self.workload.n_iterations
