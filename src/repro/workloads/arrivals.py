"""Fleet arrival traces built on the workload phase structure.

The fleet simulator (:mod:`repro.fleet.simulator`) opens sessions over
time rather than all at once: devices come and go following diurnal
cycles or bursty regimes.  This module expresses those patterns as an
:class:`ArrivalTrace` — expected arrivals per epoch — reusing the same
building blocks the per-session workloads use: diurnal shapes are
authored as :class:`~repro.workloads.phases.PhasedWorkload` phases,
bursty shapes as a realized
:class:`~repro.workloads.traces.MarkovWorkload` chain, so arrival
structure and input-difficulty structure share one vocabulary.

Everything is deterministic given the seed: :meth:`ArrivalTrace.sample`
draws per-epoch Poisson counts from ``numpy.random.default_rng(seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .phases import PhasedWorkload, WorkloadPhase
from .traces import MarkovWorkload, Regime

__all__ = [
    "ArrivalTrace",
    "arrivals_from_workload",
    "bursty_arrivals",
    "diurnal_arrivals",
    "steady_arrivals",
]


@dataclass(frozen=True)
class ArrivalTrace:
    """Expected session arrivals per simulation epoch.

    ``expected[e]`` is the Poisson mean for epoch ``e``;
    :meth:`sample` realizes the actual integer counts.
    """

    name: str
    expected: Tuple[float, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.expected:
            raise ValueError("need at least one epoch")
        if any(
            rate < 0 or not math.isfinite(rate) for rate in self.expected
        ):
            raise ValueError("expected arrivals must be finite and >= 0")

    @property
    def n_epochs(self) -> int:
        return len(self.expected)

    @property
    def total_expected(self) -> float:
        return float(sum(self.expected))

    def scaled_to_total(self, total: float) -> "ArrivalTrace":
        """Rescale so the expected arrivals over the trace sum to
        ``total`` (how scenarios express "N devices over the run")."""
        if total < 0:
            raise ValueError("total expected arrivals cannot be negative")
        current = self.total_expected
        if current <= 0:
            raise ValueError("cannot scale an all-zero trace")
        factor = total / current
        return ArrivalTrace(
            name=self.name,
            expected=tuple(rate * factor for rate in self.expected),
            seed=self.seed,
        )

    def sample(self) -> np.ndarray:
        """Realized arrival counts per epoch (seed-deterministic)."""
        rng = np.random.default_rng(self.seed)
        counts: np.ndarray = rng.poisson(
            np.asarray(self.expected, dtype=np.float64)
        ).astype(np.int64)
        return counts


def arrivals_from_workload(
    workload: PhasedWorkload,
    mean_rate: float,
    name: str = "workload",
    seed: int = 0,
) -> ArrivalTrace:
    """One epoch per workload iteration, intensity from its difficulty.

    The per-iteration work multipliers become relative arrival
    intensities, normalized so the mean epoch expects ``mean_rate``
    arrivals — a load trace recorded for one session shapes the whole
    fleet's arrival curve.
    """
    if mean_rate < 0:
        raise ValueError("mean arrival rate cannot be negative")
    multipliers = list(workload.iteration_difficulty())
    mean_multiplier = sum(multipliers) / len(multipliers)
    return ArrivalTrace(
        name=name,
        expected=tuple(
            mean_rate * m / mean_multiplier for m in multipliers
        ),
        seed=seed,
    )


def steady_arrivals(
    n_epochs: int, rate: float, seed: int = 0
) -> ArrivalTrace:
    """A flat arrival curve: ``rate`` expected arrivals every epoch."""
    workload = PhasedWorkload(
        phases=(WorkloadPhase("steady", n_epochs),)
    )
    return arrivals_from_workload(
        workload, mean_rate=rate, name="steady", seed=seed
    )


def diurnal_arrivals(
    n_epochs: int,
    mean_rate: float,
    peak_to_trough: float = 4.0,
    period: int = 24,
    seed: int = 0,
) -> ArrivalTrace:
    """A sinusoidal day/night cycle, authored as workload phases.

    Each epoch becomes one :class:`WorkloadPhase` whose work multiplier
    follows ``1 + a·sin(2π·e/period)`` with the amplitude ``a`` chosen
    so peak load is ``peak_to_trough`` times trough load.
    """
    if peak_to_trough < 1.0:
        raise ValueError("peak-to-trough ratio must be >= 1")
    if period < 2:
        raise ValueError("diurnal period needs at least two epochs")
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    phases = tuple(
        WorkloadPhase(
            name=f"hour-{epoch % period}",
            n_iterations=1,
            work_multiplier=(
                1.0 + amplitude * math.sin(2.0 * math.pi * epoch / period)
            ),
        )
        for epoch in range(n_epochs)
    )
    return arrivals_from_workload(
        PhasedWorkload(phases=phases),
        mean_rate=mean_rate,
        name="diurnal",
        seed=seed,
    )


def bursty_arrivals(
    n_epochs: int,
    mean_rate: float,
    burst_multiplier: float = 6.0,
    mean_dwell_calm: float = 45.0,
    mean_dwell_burst: float = 5.0,
    seed: int = 0,
) -> ArrivalTrace:
    """Calm/burst regime switching via a Markov workload chain.

    The realized chain's difficulties become relative intensities, so a
    burst epoch expects ``burst_multiplier`` times the calm load; the
    trace is normalized to ``mean_rate`` expected arrivals per epoch.
    """
    if burst_multiplier < 1.0:
        raise ValueError("burst multiplier must be >= 1")
    chain = MarkovWorkload(
        regimes=(
            Regime("calm", 1.0, mean_dwell_calm),
            Regime("burst", burst_multiplier, mean_dwell_burst),
        ),
        n_iterations=n_epochs,
        seed=seed,
    )
    return arrivals_from_workload(
        chain.to_phased(), mean_rate=mean_rate, name="bursty", seed=seed
    )
