"""Phased workloads (paper Sec. 5.6).

The phase experiment concatenates three videos: 200 frames of a hard
scene, 200 frames of an easier scene that "naturally encodes about 40 %
faster", then the hard scene again.  A phase here scales the *work* per
iteration: the easy scene's frames carry ~1/1.4 of the work, so at a
fixed configuration they complete 40 % faster and cost less energy —
headroom JouleGuard should convert into accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class WorkloadPhase:
    """A run of iterations sharing a work multiplier."""

    name: str
    n_iterations: int
    work_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.n_iterations <= 0:
            raise ValueError("phase needs at least one iteration")
        if self.work_multiplier <= 0:
            raise ValueError("work multiplier must be positive")


@dataclass(frozen=True)
class PhasedWorkload:
    """A sequence of phases over a base per-iteration work quantum."""

    phases: Tuple[WorkloadPhase, ...]
    base_work: float = 1.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("need at least one phase")
        if self.base_work <= 0:
            raise ValueError("base work must be positive")

    @property
    def n_iterations(self) -> int:
        return sum(phase.n_iterations for phase in self.phases)

    @property
    def total_work(self) -> float:
        """Total *progress* units (iterations × base work).

        Progress is what the energy budget covers — a frame is a frame
        whether the scene is easy or hard; difficulty only changes how
        much computation the frame costs (see :meth:`iteration_difficulty`).
        """
        return self.base_work * self.n_iterations

    def iteration_difficulty(self) -> Iterator[float]:
        """Per-iteration computational-cost multipliers, phase by phase."""
        for phase in self.phases:
            for _ in range(phase.n_iterations):
                yield phase.work_multiplier

    def phase_of(self, iteration: int) -> WorkloadPhase:
        """The phase containing the given 0-based iteration index."""
        if iteration < 0:
            raise IndexError(iteration)
        offset = iteration
        for phase in self.phases:
            if offset < phase.n_iterations:
                return phase
            offset -= phase.n_iterations
        raise IndexError(iteration)

    def phase_boundaries(self) -> List[int]:
        """Iteration indices at which a new phase starts (excluding 0)."""
        boundaries = []
        total = 0
        for phase in self.phases[:-1]:
            total += phase.n_iterations
            boundaries.append(total)
        return boundaries


def steady(n_iterations: int, base_work: float = 1.0) -> PhasedWorkload:
    """A single-phase workload (the default for Sec. 5.3–5.5 sweeps)."""
    return PhasedWorkload(
        phases=(WorkloadPhase("steady", n_iterations),), base_work=base_work
    )


def three_scene_video(
    frames_per_scene: int = 200,
    easy_speedup: float = 1.4,
    base_work: float = 1.0,
) -> PhasedWorkload:
    """The Sec. 5.6 input: hard / easy / hard, 200 frames each.

    ``easy_speedup`` is how much faster the middle scene naturally
    encodes (paper: about 40 % → 1.4).
    """
    if easy_speedup < 1.0:
        raise ValueError("easy scene must not be harder than the others")
    hard = WorkloadPhase("hard", frames_per_scene, 1.0)
    easy = WorkloadPhase("easy", frames_per_scene, 1.0 / easy_speedup)
    return PhasedWorkload(
        phases=(hard, easy, WorkloadPhase("hard2", frames_per_scene, 1.0)),
        base_work=base_work,
    )
