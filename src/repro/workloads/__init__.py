"""Workload structure: phases, traces, arrivals, and generation."""

from .arrivals import (
    ArrivalTrace,
    arrivals_from_workload,
    bursty_arrivals,
    diurnal_arrivals,
    steady_arrivals,
)
from .generator import WorkGenerator
from .phases import PhasedWorkload, WorkloadPhase, steady, three_scene_video
from .traces import MarkovWorkload, RecordedTrace, Regime, record_trace

__all__ = [
    "ArrivalTrace",
    "MarkovWorkload",
    "PhasedWorkload",
    "RecordedTrace",
    "Regime",
    "WorkGenerator",
    "WorkloadPhase",
    "arrivals_from_workload",
    "bursty_arrivals",
    "diurnal_arrivals",
    "record_trace",
    "steady",
    "steady_arrivals",
    "three_scene_video",
]
