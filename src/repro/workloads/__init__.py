"""Workload structure: phases, traces, and per-iteration generation."""

from .generator import WorkGenerator
from .phases import PhasedWorkload, WorkloadPhase, steady, three_scene_video
from .traces import MarkovWorkload, RecordedTrace, Regime, record_trace

__all__ = [
    "MarkovWorkload",
    "PhasedWorkload",
    "RecordedTrace",
    "Regime",
    "WorkGenerator",
    "WorkloadPhase",
    "record_trace",
    "steady",
    "three_scene_video",
]
