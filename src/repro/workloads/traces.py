"""Recorded and stochastic workload traces.

Beyond the fixed phase structure of :mod:`repro.workloads.phases`, real
inputs arrive with burstiness and regime changes.  This module adds:

* :class:`MarkovWorkload` — difficulty follows a Markov chain over named
  regimes (e.g. easy/normal/hard scenes), producing realistic phase
  structure without hand-authoring it,
* :class:`RecordedTrace` — replay a measured per-iteration difficulty
  sequence (round-tripped through plain JSON), so real application
  traces can drive the simulator,
* :func:`record_trace` — capture any workload's realized difficulties.

All produce the same interface the harness consumes: an iterable of
per-iteration difficulty multipliers plus ``n_iterations``/``total_work``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple, Union

import numpy as np

from .generator import WorkGenerator
from .phases import PhasedWorkload, WorkloadPhase

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class Regime:
    """One Markov state: a difficulty level with self-persistence."""

    name: str
    difficulty: float
    mean_dwell: float

    def __post_init__(self) -> None:
        if self.difficulty <= 0:
            raise ValueError("difficulty must be positive")
        if self.mean_dwell < 1:
            raise ValueError("mean dwell must be >= 1 iteration")


@dataclass
class MarkovWorkload:
    """Difficulty follows a Markov chain over regimes.

    Each iteration stays in the current regime with probability
    ``1 - 1/mean_dwell``, otherwise jumps to a uniformly random other
    regime.  Deterministic given the seed; exposes the same surface as
    :class:`~repro.workloads.phases.PhasedWorkload` so the harness can
    consume it via :meth:`to_phased`.
    """

    regimes: Tuple[Regime, ...]
    n_iterations: int
    base_work: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.regimes) < 1:
            raise ValueError("need at least one regime")
        if self.n_iterations < 1:
            raise ValueError("need at least one iteration")
        if self.base_work <= 0:
            raise ValueError("base work must be positive")

    @property
    def total_work(self) -> float:
        return self.base_work * self.n_iterations

    def realize(self) -> List[Tuple[str, float]]:
        """The (regime name, difficulty) sequence for this seed."""
        rng = np.random.default_rng(self.seed)
        state = int(rng.integers(len(self.regimes)))
        sequence = []
        for _ in range(self.n_iterations):
            regime = self.regimes[state]
            sequence.append((regime.name, regime.difficulty))
            if (
                len(self.regimes) > 1
                and rng.random() < 1.0 / regime.mean_dwell
            ):
                options = [
                    s for s in range(len(self.regimes)) if s != state
                ]
                state = int(rng.choice(options))
        return sequence

    def iteration_difficulty(self) -> Iterator[float]:
        for _, difficulty in self.realize():
            yield difficulty

    def to_phased(self) -> PhasedWorkload:
        """Collapse the realized chain into explicit phases."""
        sequence = self.realize()
        phases: List[WorkloadPhase] = []
        run_name, run_difficulty, run_length = (
            sequence[0][0],
            sequence[0][1],
            0,
        )
        for name, difficulty in sequence:
            if name == run_name:
                run_length += 1
            else:
                phases.append(
                    WorkloadPhase(run_name, run_length, run_difficulty)
                )
                run_name, run_difficulty, run_length = name, difficulty, 1
        phases.append(WorkloadPhase(run_name, run_length, run_difficulty))
        return PhasedWorkload(tuple(phases), base_work=self.base_work)


@dataclass
class RecordedTrace:
    """Replay an explicit per-iteration difficulty sequence."""

    difficulties: Tuple[float, ...]
    base_work: float = 1.0
    name: str = "recorded"

    def __post_init__(self) -> None:
        if not self.difficulties:
            raise ValueError("empty trace")
        if any(d <= 0 for d in self.difficulties):
            raise ValueError("difficulties must be positive")
        if self.base_work <= 0:
            raise ValueError("base work must be positive")

    @property
    def n_iterations(self) -> int:
        return len(self.difficulties)

    @property
    def total_work(self) -> float:
        return self.base_work * self.n_iterations

    def iteration_difficulty(self) -> Iterator[float]:
        return iter(self.difficulties)

    def to_phased(self) -> PhasedWorkload:
        """One phase per iteration (exact replay through the harness)."""
        return PhasedWorkload(
            tuple(
                WorkloadPhase(f"i{index}", 1, difficulty)
                for index, difficulty in enumerate(self.difficulties)
            ),
            base_work=self.base_work,
        )

    # -- persistence --------------------------------------------------------
    def save(self, path: PathLike) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(
                {
                    "name": self.name,
                    "base_work": self.base_work,
                    "difficulties": list(self.difficulties),
                }
            )
            + "\n"
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "RecordedTrace":
        data = json.loads(pathlib.Path(path).read_text())
        return cls(
            difficulties=tuple(data["difficulties"]),
            base_work=data["base_work"],
            name=data.get("name", "recorded"),
        )


def record_trace(
    workload: PhasedWorkload,
    jitter: float = 0.0,
    seed: int = 0,
    name: str = "recorded",
) -> RecordedTrace:
    """Capture the realized difficulty sequence of any workload."""
    difficulties = tuple(
        WorkGenerator(workload, jitter=jitter, seed=seed).materialize()
    )
    return RecordedTrace(
        difficulties=difficulties,
        base_work=workload.base_work,
        name=name,
    )
