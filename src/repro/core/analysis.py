"""Z-domain analysis of the closed loop (paper Sec. 3.4, Eqns. 7–9).

The application maps the control signal to measured rate with one sample
of delay, ``A(z) = r̂_bestsys / z``; the controller is
``C(z) = (1 − pole)·z / (z − 1)``.  The closed loop is

    F(z) = C·A / (1 + C·A) = (1 − pole) / (z − pole)          (Eqn. 7)

which is *stable* iff 0 ≤ pole < 1 and *convergent* (zero steady-state
error) because F(1) = 1.  With a multiplicative model error δ the loop
becomes F(z) = (1 − pole)·δ / (z + (1 − pole)·δ − 1) (Eqn. 8), stable
iff 0 < δ < 2/(1 − pole) (Eqn. 9).

This module provides those transfer functions symbolically (as pole/gain
pairs) plus a discrete-time step-response simulator so the formal claims
are *testable*, not just quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .contracts import check, positive, require, stable_pole


@dataclass(frozen=True)
class FirstOrderLoop:
    """Closed loop ``F(z) = gain / (z - pole_location)``."""

    gain: float
    pole_location: float

    @property
    def stable(self) -> bool:
        """Stability: the closed-loop pole lies inside the unit circle."""
        return abs(self.pole_location) < 1.0

    @property
    def dc_gain(self) -> float:
        """F(1): 1 means zero steady-state error (convergence)."""
        return self.gain / (1.0 - self.pole_location)

    @property
    def convergent(self) -> bool:
        return self.stable and abs(self.dc_gain - 1.0) < 1e-12

    @require("n_steps", lambda n: n >= 1, "need at least one step")
    def step_response(self, n_steps: int) -> List[float]:
        """Unit-step response y(t); converges to dc_gain when stable."""
        output = []
        y = 0.0
        for _ in range(n_steps):
            y = self.pole_location * y + self.gain
            output.append(y)
        return output


@require("pole", stable_pole, "pole must be in [0, 1)")
def nominal_loop(pole: float) -> FirstOrderLoop:
    """Eqn. 7: the closed loop when the rate model is exact."""
    return FirstOrderLoop(gain=1.0 - pole, pole_location=pole)


@require("pole", stable_pole, "pole must be in [0, 1)")
@require("delta", positive, "delta must be positive")
def perturbed_loop(pole: float, delta: float) -> FirstOrderLoop:
    """Eqn. 8: the closed loop under multiplicative model error ``delta``.

    ``delta`` is the ratio true/estimated system rate (δ = 1 is exact).
    """
    gain = (1.0 - pole) * delta
    return FirstOrderLoop(gain=gain, pole_location=1.0 - gain)


@require("pole", stable_pole, "pole must be in [0, 1)")
def stability_bound(pole: float) -> float:
    """Eqn. 9: the loop is stable iff 0 < δ < this bound."""
    return 2.0 / (1.0 - pole)


@require("pole", stable_pole, "pole must be in [0, 1)")
def settling_time(pole: float, tolerance: float = 0.02) -> int:
    """Iterations for the nominal loop to settle within ``tolerance``.

    For a first-order loop the error decays as pole**t; pole 0 settles
    in one step (deadbeat).
    """
    check(0.0 < tolerance < 1.0, "tolerance must be in (0, 1)")
    if pole <= 0.0:
        return 1
    import math

    return max(1, math.ceil(math.log(tolerance) / math.log(pole)))
