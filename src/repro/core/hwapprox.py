"""Approximate-hardware variant of the controller (paper Sec. 3.7).

Approximate hardware keeps timing but reduces *power* in exchange for
occasional wrong results.  The paper sketches the modification: run the
same learning engine to find the most energy-efficient accuracy-
preserving system configuration, then have the controller tune hardware
approximation to reduce *power* (rather than increase speedup) until the
energy goal is met.

This module implements that sketch.  A hardware approximation level is a
(power factor ≤ 1, accuracy) pair; the :class:`PowerReductionController`
integrates the power error and :func:`best_accuracy_for_power_factor`
mirrors Eqn. 6 with the inequality flipped.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class HardwareApproxLevel:
    """One hardware approximation setting.

    ``power_factor`` scales system power (1 = exact hardware); accuracy
    is relative to exact execution.
    """

    index: int
    power_factor: float
    accuracy: float

    def __post_init__(self) -> None:
        if not 0.0 < self.power_factor <= 1.0:
            raise ValueError("power_factor must be in (0, 1]")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")


class HardwareApproxTable:
    """Accuracy-ordered approximation levels with frontier queries."""

    def __init__(self, levels: Sequence[HardwareApproxLevel]) -> None:
        if not levels:
            raise ValueError("need at least one level")
        if not any(abs(l.power_factor - 1.0) < 1e-9 for l in levels):
            raise ValueError("table must include the exact level (factor 1)")
        self.levels = sorted(levels, key=lambda l: l.index)
        # Frontier: ascending power factor, ascending accuracy — dominated
        # levels (more power for less accuracy) are dropped.
        by_factor = sorted(
            self.levels, key=lambda l: (l.power_factor, -l.accuracy)
        )
        frontier: List[HardwareApproxLevel] = []
        best_accuracy = -1.0
        for level in by_factor:
            if level.accuracy > best_accuracy:
                frontier.append(level)
                best_accuracy = level.accuracy
        self._frontier = frontier
        self._frontier_factors = [l.power_factor for l in frontier]

    @property
    def frontier(self) -> List[HardwareApproxLevel]:
        return list(self._frontier)

    @property
    def min_power_factor(self) -> float:
        return self._frontier_factors[0]

    def best_accuracy_for_power_factor(
        self, factor: float
    ) -> HardwareApproxLevel:
        """Most accurate level with ``power_factor <= factor`` (Eqn. 6 dual).

        If no level is frugal enough, the lowest-power level is returned.
        """
        position = bisect.bisect_right(self._frontier_factors, factor)
        if position == 0:
            return self._frontier[0]
        return self._frontier[position - 1]


@dataclass
class PowerReductionController:
    """Integral controller on the hardware power factor.

    Mirrors :class:`repro.core.controller.SpeedupController` with the
    actuator inverted: the control signal is a power multiplier in
    (0, 1], decreased when measured power exceeds the target.
    """

    min_factor: float
    initial_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.min_factor <= 1.0:
            raise ValueError("min_factor must be in (0, 1]")
        self.factor = float(min(max(self.initial_factor, self.min_factor), 1.0))

    def step(
        self,
        target_power: float,
        measured_power: float,
        est_system_power: float,
        pole: float,
    ) -> float:
        """One control update; returns the new (clamped) power factor."""
        if not 0.0 <= pole < 1.0:
            raise ValueError("pole must be in [0, 1)")
        if est_system_power <= 0:
            raise ValueError("estimated power must be positive")
        if target_power < 0 or measured_power < 0:
            raise ValueError("powers cannot be negative")
        error = target_power - measured_power
        unclamped = self.factor + (1.0 - pole) * error / est_system_power
        self.factor = float(min(max(unclamped, self.min_factor), 1.0))
        return self.factor
