"""Value-Difference Based Exploration (paper Eqn. 2, after Tokic 2010).

VDBE adapts the ε of ε-greedy exploration from the surprise in value
estimates.  JouleGuard's instantiation compares the measured energy
efficiency of the configuration just run against its estimate::

    x(t)   = exp(−|α·(eff_measured − eff_estimated)| / σ)
    ρ(t)   = (1 − x) / (1 + x)
    ε(t)   = w·ρ(t) + (1 − w)·ε(t−1)

where the paper uses σ = 5 (an inverse sensitivity) and
w = 1/|Sys|.  Two practical refinements are exposed as parameters and
ablated in ``benchmarks/bench_ablations.py``:

* ``relative`` (default True) compares efficiencies *relatively*
  (``eff_measured/eff_estimated − 1``), making the sensitivity
  platform-independent — absolute efficiency spans four orders of
  magnitude between our Mobile and Server models, so a fixed absolute σ
  cannot serve both.
* ``min_weight`` (default 0.2) floors the update weight ``w``: with
  1024 configurations, the literal 1/|Sys| keeps ε ≈ 1 for hundreds of
  iterations — near-pure random exploration for entire runs, which is
  inconsistent with the paper's own Fig. 4 (convergence within ~20
  frames).  The floored weight reproduces that observed convergence;
  ``min_weight=0`` recovers the literal rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np

from .contracts import check, invariant, non_negative, require, unit_interval
from .ewma import DEFAULT_ALPHA


@invariant(
    lambda self: unit_interval(self.epsilon),
    "exploration rate ε must stay a probability in [0, 1] (Eqn. 2)",
)
@dataclass
class Vdbe:
    """ε adaptation state for one learner.

    Parameters
    ----------
    n_configs:
        Size of the configuration space (sets the paper's 1/|Sys| weight).
    sigma:
        Inverse sensitivity of the Boltzmann term (paper: 5).
    alpha:
        Scales the value difference (the paper reuses its EWMA α).
    relative:
        Compare efficiencies relatively rather than absolutely.
    min_weight:
        Floor on the ε update weight; 0 reproduces the literal paper rule.
    """

    n_configs: int
    sigma: float = 5.0
    alpha: float = DEFAULT_ALPHA
    relative: bool = True
    min_weight: float = 0.2
    epsilon: float = 1.0

    def __post_init__(self) -> None:
        check(self.n_configs >= 1, "need at least one configuration")
        check(self.sigma > 0, "sigma must be positive")
        check(
            unit_interval(self.min_weight), "min_weight must be in [0, 1]"
        )

    @property
    def weight(self) -> float:
        return max(1.0 / self.n_configs, self.min_weight)

    @require("measured_eff", non_negative, "efficiencies must be non-negative")
    @require("estimated_eff", non_negative, "efficiencies must be non-negative")
    def update(self, measured_eff: float, estimated_eff: float) -> float:
        """Fold one (measured, estimated) efficiency pair into ε (Eqn. 2)."""
        if self.relative:
            if estimated_eff <= 0:
                difference = 1.0
            else:
                difference = measured_eff / estimated_eff - 1.0
        else:
            difference = measured_eff - estimated_eff
        x = math.exp(-abs(self.alpha * difference) / self.sigma)
        rho = (1.0 - x) / (1.0 + x)
        w = self.weight
        self.epsilon = w * rho + (1.0 - w) * self.epsilon
        return self.epsilon

    @require(
        "rand", lambda r: 0.0 <= r < 1.0, "rand must be in [0, 1)"
    )
    def should_explore(self, rand: float) -> bool:
        """Paper's exploration test: explore iff ``rand < ε(t)``."""
        return rand < self.epsilon

    # -- persistence ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state (see :mod:`repro.service.state`)."""
        return {
            "n_configs": self.n_configs,
            "sigma": self.sigma,
            "alpha": self.alpha,
            "relative": self.relative,
            "min_weight": self.min_weight,
            "epsilon": self.epsilon,
        }

    @classmethod
    def restore(cls, snapshot: Mapping[str, Any]) -> "Vdbe":
        """Rebuild exploration state from :meth:`snapshot` output."""
        return cls(
            n_configs=int(snapshot["n_configs"]),
            sigma=float(snapshot["sigma"]),
            alpha=float(snapshot["alpha"]),
            relative=bool(snapshot["relative"]),
            min_weight=float(snapshot["min_weight"]),
            epsilon=float(snapshot["epsilon"]),
        )


def vdbe_difference_array(
    measured_eff: np.ndarray,
    estimated_eff: np.ndarray,
    *,
    relative: bool = True,
) -> np.ndarray:
    """Elementwise value difference feeding Eqn. 2, one row per learner."""
    measured = np.asarray(measured_eff, dtype=np.float64)
    estimated = np.asarray(estimated_eff, dtype=np.float64)
    if relative:
        safe = np.where(estimated > 0.0, estimated, 1.0)
        return np.where(estimated > 0.0, measured / safe - 1.0, 1.0)
    return measured - estimated


def vdbe_epsilon_array(
    epsilon: np.ndarray,
    measured_eff: np.ndarray,
    estimated_eff: np.ndarray,
    *,
    weight: float,
    sigma: float = 5.0,
    alpha: float = DEFAULT_ALPHA,
    relative: bool = True,
) -> np.ndarray:
    """Eqn. 2 over an array of independent learners.

    Each row evolves exactly as :meth:`Vdbe.update` would, except the
    exponential is ``np.exp`` rather than ``math.exp`` — deterministic,
    but the two libm paths may differ in the last ulp.  Callers needing
    bit-exact parity with the scalar class (the fleet pool's ``exact``
    mode) compute the exponential per row via :mod:`math` and use
    :func:`vdbe_difference_array` directly.
    """
    check(sigma > 0, "sigma must be positive")
    check(0.0 < weight <= 1.0, "weight must be in (0, 1]")
    eps = np.asarray(epsilon, dtype=np.float64)
    difference = vdbe_difference_array(
        measured_eff, estimated_eff, relative=relative
    )
    x = np.exp(-np.abs(alpha * difference) / sigma)
    rho = (1.0 - x) / (1.0 + x)
    result: np.ndarray = weight * rho + (1.0 - weight) * eps
    return result
