"""Energy goals and budget bookkeeping.

The paper expresses goals as a factor ``f`` by which to decrease energy
relative to the application's default configuration (Sec. 5.2 sweeps
f ∈ {1.1 … 3.0}).  :class:`EnergyGoal` converts a factor into an absolute
budget, and :class:`BudgetAccountant` tracks work/energy so the runtime
can recompute the *remaining* joules-per-work-unit target each iteration
(Algorithm 1: "compute remaining energy and work").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .contracts import check, invariant, non_negative, positive, require

#: The paper's sweep of energy-reduction factors (Sec. 5.2).
PAPER_FACTORS = (1.1, 1.2, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0)


@dataclass(frozen=True)
class EnergyGoal:
    """An energy budget for a fixed amount of work.

    Parameters
    ----------
    total_work:
        Work units the run must complete (frames, queries, …).
    budget_j:
        Total joules allowed for that work.
    """

    total_work: float
    budget_j: float

    def __post_init__(self) -> None:
        check(
            self.total_work > 0 and self.budget_j > 0,
            "work and budget must be positive",
        )

    @classmethod
    def from_factor(
        cls, factor: float, total_work: float, default_energy_per_work: float
    ) -> "EnergyGoal":
        """Budget for reducing default energy consumption by ``factor``."""
        check(
            factor >= 1.0, "factor must be >= 1 (1 = default energy)"
        )
        check(
            positive(default_energy_per_work),
            "default energy per work must be positive",
        )
        return cls(
            total_work=total_work,
            budget_j=total_work * default_energy_per_work / factor,
        )

    @property
    def energy_per_work(self) -> float:
        """The average joules-per-work-unit the budget allows."""
        return self.budget_j / self.total_work


@invariant(
    lambda self: self.work_done >= 0.0 and self.energy_used_j >= 0.0,
    "work/energy tallies can never go negative",
)
@dataclass
class BudgetAccountant:
    """Running work/energy tally against an :class:`EnergyGoal`.

    ``adjustment_j`` supports budget *transfers*: a multi-application
    coordinator (:mod:`repro.core.multi`) may grant one application's
    surplus joules to another; the goal itself stays immutable.
    """

    goal: EnergyGoal
    work_done: float = 0.0
    energy_used_j: float = 0.0
    adjustment_j: float = 0.0
    _energy_trace: List[float] = field(default_factory=list)

    @require("work", non_negative, "work and energy must be non-negative")
    @require("energy_j", non_negative, "work and energy must be non-negative")
    def record(self, work: float, energy_j: float) -> None:
        """Account one iteration's work and energy."""
        self.work_done += work
        self.energy_used_j += energy_j
        self._energy_trace.append(energy_j)

    def adjust_budget(self, delta_j: float) -> None:
        """Grant (positive) or reclaim (negative) budget.

        Reclaiming below what has already been spent is rejected — a
        coordinator can only take joules that still exist.
        """
        check(
            self.effective_budget_j + delta_j
            >= self.energy_used_j - 1e-9,
            "cannot reclaim already-spent budget",
        )
        self.adjustment_j += delta_j

    @property
    def effective_budget_j(self) -> float:
        """The goal budget plus any coordinator adjustments."""
        return self.goal.budget_j + self.adjustment_j

    @property
    def remaining_work(self) -> float:
        return max(0.0, self.goal.total_work - self.work_done)

    @property
    def remaining_energy_j(self) -> float:
        return max(0.0, self.effective_budget_j - self.energy_used_j)

    @property
    def exhausted(self) -> bool:
        """Budget used up with work still to do."""
        return self.remaining_energy_j <= 0.0 and self.remaining_work > 0.0

    @property
    def complete(self) -> bool:
        return self.remaining_work <= 0.0

    def target_energy_per_work(self) -> Optional[float]:
        """Joules per work unit allowed for the remainder of the run.

        ``None`` when the run is complete; 0.0 when the budget is already
        exhausted (the runtime must then minimize energy outright).
        """
        if self.complete:
            return None
        if self.remaining_energy_j <= 0.0:
            return 0.0
        return self.remaining_energy_j / self.remaining_work

    @property
    def overall_energy_per_work(self) -> float:
        if self.work_done <= 0:
            raise ValueError("no work recorded yet")
        return self.energy_used_j / self.work_done

    @property
    def energy_trace(self) -> List[float]:
        """Per-iteration energy record (used by the figure benchmarks)."""
        return list(self._energy_trace)


def remaining_arrays(
    total_work: np.ndarray,
    work_done: np.ndarray,
    effective_budget_j: np.ndarray,
    energy_used_j: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(remaining_work, remaining_energy_j)`` per ledger.

    Elementwise twins of the :class:`BudgetAccountant` properties —
    each row uses the identical ``max(0, a - b)`` arithmetic, so the
    results are bit-equal to a scalar accountant fed the same tallies.
    """
    remaining_work = np.maximum(
        0.0, np.asarray(total_work, dtype=np.float64) - work_done
    )
    remaining_energy = np.maximum(
        0.0,
        np.asarray(effective_budget_j, dtype=np.float64) - energy_used_j,
    )
    return remaining_work, remaining_energy


def target_energy_per_work_array(
    remaining_work: np.ndarray, remaining_energy_j: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Algorithm-1 target: joules/work for the remainder.

    Returns ``(target, complete, exhausted)``.  ``complete`` rows (no
    work left) mirror the scalar accountant's ``None`` — their target
    is 0.0 and must be ignored; ``exhausted`` rows (work left, no
    joules) get target 0.0, matching
    :meth:`BudgetAccountant.target_energy_per_work`.
    """
    work = np.asarray(remaining_work, dtype=np.float64)
    energy = np.asarray(remaining_energy_j, dtype=np.float64)
    complete = work <= 0.0
    exhausted = (~complete) & (energy <= 0.0)
    target = np.where(
        complete | exhausted,
        0.0,
        energy / np.where(complete, 1.0, work),
    )
    return target, complete, exhausted
