"""Runtime contracts: the dynamic twin of the jglint static rules.

jglint (:mod:`repro.lint`) proves what it can from the AST — literal
poles in [0, 1), seeded generators, unit discipline.  Values that only
exist at runtime (a pole computed from measured error, an ε folded from
efficiency surprise) need *dynamic* enforcement, and this module
provides it with zero dependencies:

* :func:`check` — an inline assertion that raises :class:`ContractError`
  (a ``ValueError``) with a precise message;
* :func:`require` — a decorator declaring a precondition on one named
  argument, stackable, introspectable via ``__contracts__``;
* :func:`invariant` — a class decorator re-checking a predicate on
  ``self`` after every public mutating method.

Contracts raise ``ContractError`` which subclasses ``ValueError``, so
existing ``pytest.raises(ValueError)`` tests and callers keep working.
Ready-made predicates for the paper's ranges (``unit_interval`` for
probabilities/ε, ``stable_pole`` for Eqns. 9–11, ``non_negative`` /
``positive`` for budgets and rates) keep call sites one line.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, List, Tuple, TypeVar

__all__ = [
    "ContractError",
    "check",
    "contracts_enabled",
    "invariant",
    "non_negative",
    "positive",
    "require",
    "set_contracts_enabled",
    "stable_pole",
    "unit_interval",
]

F = TypeVar("F", bound=Callable[..., Any])
C = TypeVar("C", bound=type)


class ContractError(ValueError):
    """A violated precondition or invariant.

    Subclasses ``ValueError`` so contracts strengthen — never change —
    the exception surface callers already handle.
    """


# Contracts sit on the per-heartbeat hot path (they cost ~40 % of a
# controller step), and jglint proves the literal-valued subset of them
# statically.  Deployments that want the cycles back — the sharded
# daemon's workers, throughput benches — can switch the dynamic checks
# off; the default is on, and the test suite always runs with them on.
# Seed the flag from the environment so spawned worker processes
# inherit the operator's choice without new plumbing.
_enabled = os.environ.get("REPRO_CONTRACTS", "1") not in (
    "0",
    "off",
    "false",
)


def contracts_enabled() -> bool:
    """Whether dynamic contract checking is currently active."""
    return _enabled


def set_contracts_enabled(enabled: bool) -> bool:
    """Toggle dynamic contract checking process-wide; return the old value.

    Disabling skips ``@require`` preconditions, ``@invariant``
    re-checks, and inline :func:`check` calls.  Decoration-time errors
    (``@require`` naming a missing parameter) are still raised — the
    switch removes the per-call work, not the declarations.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def check(condition: bool, message: str) -> None:
    """Inline contract: raise :class:`ContractError` unless ``condition``."""
    if _enabled and not condition:
        raise ContractError(message)


# --- ready-made predicates for the paper's ranges ---------------------


def stable_pole(value: float) -> bool:
    """Eqn. 9 stability: a closed-loop pole must lie in [0, 1)."""
    return 0.0 <= value < 1.0


def unit_interval(value: float) -> bool:
    """Probabilities and VDBE's ε (Eqn. 2) live in [0, 1]."""
    return 0.0 <= value <= 1.0


def non_negative(value: float) -> bool:
    """Work, energy, and rates cannot be negative."""
    return value >= 0.0


def positive(value: float) -> bool:
    """Budgets, powers, and divisors must be strictly positive."""
    return value > 0.0


# --- decorators -------------------------------------------------------


def require(
    parameter: str,
    predicate: Callable[[Any], bool],
    message: str,
) -> Callable[[F], F]:
    """Declare a precondition on one named argument.

    The wrapped function raises :class:`ContractError` when
    ``predicate(value)`` is false for the bound ``parameter`` (its
    default applies when the caller omits it).  Stacked ``require``
    decorators share a single wrapper, so the per-call overhead stays
    one signature bind regardless of how many contracts are declared::

        @require("pole", stable_pole, "pole must be in [0, 1)")
        @require("rate", non_negative, "rate cannot be negative")
        def step(rate: float, pole: float) -> float: ...

    Declared contracts are introspectable via ``__contracts__`` —
    a tuple of ``(parameter, predicate, message)`` triples.
    """

    def decorate(func: F) -> F:
        inner = getattr(func, "__contracts_wrapped__", func)
        contracts: List[Tuple[str, Callable[[Any], bool], str]] = [
            (parameter, predicate, message),
            *getattr(func, "__contracts__", ()),
        ]
        signature = inspect.signature(inner)
        if parameter not in signature.parameters:
            raise TypeError(
                f"@require references {parameter!r} but "
                f"{inner.__qualname__} has no such parameter"
            )
        # Contracts sit on the controller's per-heartbeat hot path, so
        # the wrapper cannot afford a Signature.bind per call.  Each
        # contract is compiled once into (positional index, default):
        # at call time the value is found with dict/tuple lookups and
        # the inner function keeps sole responsibility for rejecting
        # genuinely malformed calls.
        compiled = []
        positional_kinds = (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
        for name, test, text in contracts:
            spec = signature.parameters[name]
            index = None
            if spec.kind in positional_kinds:
                index = list(signature.parameters).index(name)
            has_default = spec.default is not inspect.Parameter.empty
            compiled.append(
                (name, test, text, index, has_default, spec.default)
            )

        @functools.wraps(inner)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return inner(*args, **kwargs)
            for name, test, text, index, has_default, default in compiled:
                if name in kwargs:
                    value = kwargs[name]
                elif index is not None and index < len(args):
                    value = args[index]
                elif has_default:
                    value = default
                else:
                    # Unbound without a default: inner raises TypeError.
                    continue
                if not test(value):
                    raise ContractError(
                        f"{text} (got {name}={value!r})"
                    )
            return inner(*args, **kwargs)

        wrapper.__contracts__ = tuple(contracts)  # type: ignore[attr-defined]
        wrapper.__contracts_wrapped__ = inner  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def invariant(
    predicate: Callable[[Any], bool], message: str
) -> Callable[[C], C]:
    """Class decorator: re-check ``predicate(self)`` after mutations.

    Every public method defined *on the class itself* (names not
    starting with ``_``) is wrapped to evaluate the invariant after it
    returns, and ``__init__``/``__post_init__`` are wrapped so a freshly
    constructed instance is checked too.  Properties and private
    helpers are left untouched — the invariant constrains the states
    other code can observe, not intermediate bookkeeping::

        @invariant(lambda self: 0.0 <= self.epsilon <= 1.0,
                   "epsilon must stay in [0, 1]")
        class Vdbe: ...

    Stacking is supported; each decorator appends to
    ``__invariants__``.
    """

    def decorate(cls: C) -> C:
        first_invariant = not hasattr(cls, "__invariants__")
        existing = tuple(getattr(cls, "__invariants__", ()))
        cls.__invariants__ = existing + ((predicate, message),)  # type: ignore[attr-defined]
        if not first_invariant:
            # Methods are already wrapped; the new predicate joins the
            # list every wrapped method consults.
            return cls

        def verify(instance: Any) -> None:
            for test, text in type(instance).__invariants__:
                if not test(instance):
                    raise ContractError(
                        f"invariant violated on "
                        f"{type(instance).__name__}: {text}"
                    )

        def wrap(method: Callable[..., Any]) -> Callable[..., Any]:
            @functools.wraps(method)
            def checked(self: Any, *args: Any, **kwargs: Any) -> Any:
                result = method(self, *args, **kwargs)
                if _enabled:
                    verify(self)
                return result

            return checked

        # One construction hook suffices: __init__ when the class (or a
        # @dataclass applied below us) defines one, else __post_init__.
        hooks = next(
            (
                [name]
                for name in ("__init__", "__post_init__")
                if name in vars(cls)
            ),
            [],
        )
        public = [
            name
            for name, member in vars(cls).items()
            if not name.startswith("_") and inspect.isfunction(member)
        ]
        for name in hooks + public:
            setattr(cls, name, wrap(vars(cls)[name]))
        cls.__invariant_verify__ = verify  # type: ignore[attr-defined]
        return cls

    return decorate
