"""Exponentially weighted moving averages (paper Eqn. 1).

JouleGuard estimates each system configuration's performance and power
with EWMAs::

    p̂_sys(t) = (1 − α)·p̂_sys(t−1) + α·p_sys(t)
    r̂_sys(t) = (1 − α)·r̂_sys(t−1) + α·r_sys(t)

with α = 0.85 ("the best outcomes on average across all applications and
systems", Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from .contracts import check

#: The paper's smoothing constant (Sec. 3.2).
DEFAULT_ALPHA = 0.85


@dataclass
class Ewma:
    """One exponentially weighted moving average.

    ``alpha`` is the weight of the *new* sample, matching the paper's
    convention (α = 0.85 adapts quickly).  The estimate may be seeded
    with a prior value; before any update the estimate is the prior.
    """

    alpha: float = DEFAULT_ALPHA
    value: Optional[float] = None
    updates: int = field(default=0)
    holds: int = field(default=0)

    def __post_init__(self) -> None:
        check(0.0 < self.alpha <= 1.0, "alpha must be in (0, 1]")

    def update(self, sample: float) -> float:
        """Fold in ``sample``; return the new estimate."""
        if self.value is None:
            self.value = sample
        else:
            self.value = (1.0 - self.alpha) * self.value + self.alpha * sample
        self.updates += 1
        return self.value

    def hold(self) -> float:
        """Return the estimate unchanged, counting the hold-over.

        Used when a sample is unavailable (sensor dropout): the caller
        serves the last smoothed value instead of stalling, and the
        ``holds`` counter records how often feedback was missing.
        Raises :class:`ValueError` before any sample has been folded —
        there is nothing to hold yet.
        """
        if self.value is None:
            raise ValueError("cannot hold an uninitialized estimate")
        self.holds += 1
        return self.value

    @property
    def initialized(self) -> bool:
        return self.value is not None

    # -- persistence ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state (see :mod:`repro.service.state`)."""
        return {
            "alpha": self.alpha,
            "value": self.value,
            "updates": self.updates,
        }

    @classmethod
    def restore(cls, snapshot: Mapping[str, Any]) -> "Ewma":
        """Rebuild an estimator from :meth:`snapshot` output."""
        value = snapshot["value"]
        return cls(
            alpha=float(snapshot["alpha"]),
            value=None if value is None else float(value),
            updates=int(snapshot["updates"]),
        )
