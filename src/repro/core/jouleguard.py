"""The JouleGuard runtime: Algorithm 1.

Each loop iteration the runtime

1. folds the last iteration's measurement into the learner's rate/power
   estimates (Eqn. 1) and the exploration threshold ε (Eqn. 2) — the
   measured rate is first normalized by the *known* speedup of the
   application configuration that produced it, which is precisely the
   coordination the uncoordinated composition of Sec. 2.3 lacks;
2. selects the next system configuration: random with probability ε,
   otherwise the estimated-efficiency argmax (Eqn. 3);
3. recomputes the controller's pole from the learner's prediction error
   (Eqns. 10–11);
4. recomputes the remaining-budget energy target and the rate required
   to hit it (Eqn. 4), then updates the speedup control signal (Eqn. 5);
5. selects the most accurate application configuration delivering the
   speedup (Eqn. 6).

Impossible goals (Sec. 3.4.3) are detected when the required rate
exceeds what the best known system configuration can deliver even at the
application's maximum speedup; the runtime flags the goal infeasible and
pins the system to minimum-energy operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from .bandit import SystemEnergyOptimizer
from .budget import BudgetAccountant, EnergyGoal
from .controller import SpeedupController, required_rate
from .pole import AdaptivePole
from .types import AccuracyOrderedTable, Measurement


@dataclass(frozen=True)
class Decision:
    """The runtime's output for the next iteration."""

    system_index: int
    app_config: Any
    speedup_setpoint: float
    pole: float
    epsilon: float
    explored: bool
    feasible: bool


class JouleGuardRuntime:
    """Coordinated SEO + AAO runtime (Algorithm 1).

    Parameters
    ----------
    seo:
        The system energy optimizer (bandit over system configurations).
    table:
        The application's accuracy-ordered configuration table.
    goal:
        The energy budget.
    pole_adapter:
        Adaptive pole state (Eqns. 10–11); default is the paper's rule.
    feasibility_slack:
        Tolerance multiplier when testing whether the required rate is
        reachable (estimates are noisy; 1.05 avoids spurious flags).
    """

    def __init__(
        self,
        seo: SystemEnergyOptimizer,
        table: AccuracyOrderedTable,
        goal: EnergyGoal,
        pole_adapter: Optional[AdaptivePole] = None,
        feasibility_slack: float = 1.05,
    ) -> None:
        if feasibility_slack < 1.0:
            raise ValueError("feasibility_slack must be >= 1")
        self.seo = seo
        self.table = table
        self.accountant = BudgetAccountant(goal)
        self.pole_adapter = (
            pole_adapter if pole_adapter is not None else AdaptivePole()
        )
        frontier = table.pareto_frontier
        if not frontier:
            raise ValueError("application has no configurations")
        self.controller = SpeedupController(
            min_speedup=frontier[0].speedup,
            max_speedup=table.max_speedup,
            initial_speedup=frontier[0].speedup,
        )
        self.feasibility_slack = feasibility_slack
        self.goal_reported_infeasible = False
        self._decisions: List[Decision] = []
        self._decision = Decision(
            system_index=self.seo.best_index,
            app_config=table.best_accuracy_for_speedup(0.0),
            speedup_setpoint=self.controller.speedup,
            pole=self.pole_adapter.pole,
            epsilon=self.seo.epsilon,
            explored=False,
            feasible=True,
        )
        self._decisions.append(self._decision)

    # -- inspection -----------------------------------------------------------
    @property
    def current_decision(self) -> Decision:
        """The decision the application should currently be running."""
        return self._decision

    @property
    def decisions(self) -> List[Decision]:
        """All decisions made so far (for traces and tests)."""
        return list(self._decisions)

    # -- Algorithm 1 ------------------------------------------------------------
    def step(self, measurement: Measurement) -> Decision:
        """Process one iteration's feedback; return the next decision."""
        previous = self._decision

        # 1. Update models.  Normalize the measured application rate by
        # the known speedup of the configuration that produced it so the
        # learner sees *system* performance (the coordination step).
        applied_speedup = previous.app_config.speedup
        system_rate = measurement.rate / applied_speedup
        self.seo.update(
            previous.system_index, system_rate, measurement.power_w
        )
        # 3. (Eqns. 10–11) — the learner's prediction error sets the pole.
        pole = self.pole_adapter.update_from_delta(self.seo.last_rate_delta)

        # Bookkeeping.
        self.accountant.record(measurement.work, measurement.energy_j)

        # 2. Select the system configuration.
        selection = self.seo.select()
        est_rate = self.seo.rate_estimate(selection.index)
        est_power = self.seo.power_estimate(selection.index)

        # 4. Remaining-budget target → required rate → control signal.
        target = self.accountant.target_energy_per_work()
        if target is None:
            # All work done: freeze the previous operating point.
            decision = Decision(
                system_index=selection.index,
                app_config=previous.app_config,
                speedup_setpoint=self.controller.speedup,
                pole=pole,
                epsilon=selection.epsilon,
                explored=selection.explored,
                feasible=previous.feasible,
            )
            self._commit(decision)
            return decision

        feasible = True
        if target <= 0.0:
            # Budget already exhausted: minimize energy outright.
            feasible = False
            speedup = self.table.max_speedup
        else:
            needed = required_rate(target, est_power)
            reachable = (
                est_rate * self.table.max_speedup * self.feasibility_slack
            )
            if needed > reachable:
                # Saturate rather than reset: the integral state survives
                # transient infeasibility (e.g. debt after exploration).
                feasible = False
                speedup = self.table.max_speedup
                self.controller.speedup = speedup
            else:
                speedup = self.controller.step(
                    required=needed,
                    measured_rate=measurement.rate,
                    est_system_rate=est_rate,
                    pole=pole,
                )
        if not feasible:
            self.goal_reported_infeasible = True

        # 5. Eqn. 6: most accurate configuration delivering the speedup.
        app_config = self.table.best_accuracy_for_speedup(speedup)

        decision = Decision(
            system_index=selection.index,
            app_config=app_config,
            speedup_setpoint=speedup,
            pole=pole,
            epsilon=selection.epsilon,
            explored=selection.explored,
            feasible=feasible,
        )
        self._commit(decision)
        return decision

    def pin_safe_fallback(self) -> Decision:
        """Pin minimum-energy operation without fresh feedback.

        The degradation path for sensor loss: with no trustworthy
        measurements the runtime cannot run Algorithm 1, so it falls
        back to its most conservative known-safe configuration — the
        best-efficiency system configuration it has learned so far and
        the application's maximum speedup (lowest energy per work, as
        in the impossible-goals path of Sec. 3.4.3).  No estimator is
        updated; when feedback returns, :meth:`step` resumes from the
        learned state unchanged.
        """
        speedup = self.table.max_speedup
        self.controller.speedup = speedup
        decision = Decision(
            system_index=self.seo.best_index,
            app_config=self.table.best_accuracy_for_speedup(speedup),
            speedup_setpoint=speedup,
            pole=self.pole_adapter.pole,
            epsilon=self.seo.epsilon,
            explored=False,
            feasible=self._decision.feasible,
        )
        self._commit(decision)
        return decision

    def _commit(self, decision: Decision) -> None:
        self._decision = decision
        self._decisions.append(decision)

    # -- persistence ----------------------------------------------------------
    def snapshot_learned(self) -> Dict[str, Any]:
        """JSON-serializable *learned* state of this runtime.

        Covers the SEO's bandit tables, the adaptive pole, and the
        controller's integral state — the pieces that are expensive to
        re-learn.  Budget accounting and the decision trace are
        deliberately excluded: they belong to one run, not to the
        (application, platform) pair.  Wrapped with identity and a
        format version by :mod:`repro.service.state`.
        """
        return {
            "seo": self.seo.snapshot(),
            "pole": self.pole_adapter.snapshot(),
            "controller": self.controller.snapshot(),
        }

    def restore_learned(
        self,
        snapshot: Mapping[str, Any],
        seed: Optional[int] = None,
    ) -> None:
        """Warm-start this runtime from :meth:`snapshot_learned` output.

        The runtime keeps its own goal, accountant, and configuration
        table; only the learner, pole, and integrator are replaced.
        ``seed`` reseeds SEO exploration (see
        :meth:`SystemEnergyOptimizer.restore`).  The pending decision is
        refreshed so the very first iteration already runs the learned
        efficiency argmax instead of the cold-start default.
        """
        seo = SystemEnergyOptimizer.restore(snapshot["seo"], seed=seed)
        if seo.n_configs != self.seo.n_configs:
            raise ValueError(
                "snapshot covers a different system configuration space "
                f"({seo.n_configs} configs vs {self.seo.n_configs})"
            )
        self.seo = seo
        self.pole_adapter = AdaptivePole.restore(snapshot["pole"])
        self.controller.reset(float(snapshot["controller"]["speedup"]))
        decision = Decision(
            system_index=self.seo.best_index,
            app_config=self.table.best_accuracy_for_speedup(
                self.controller.speedup
            ),
            speedup_setpoint=self.controller.speedup,
            pole=self.pole_adapter.pole,
            epsilon=self.seo.epsilon,
            explored=False,
            feasible=True,
        )
        self._commit(decision)


def build_runtime(
    prior_rate_shape,
    prior_power_shape,
    table: AccuracyOrderedTable,
    goal: EnergyGoal,
    seed: int = 0,
    **seo_kwargs,
) -> JouleGuardRuntime:
    """Convenience constructor wiring an SEO to a runtime."""
    seo = SystemEnergyOptimizer(
        prior_rate_shape, prior_power_shape, seed=seed, **seo_kwargs
    )
    return JouleGuardRuntime(seo=seo, table=table, goal=goal)
