"""Shared types and interfaces of the JouleGuard runtime.

The runtime is deliberately generic (Sec. 3.5): it needs (1) per-iteration
feedback — work done, energy used, rate, power — and (2) an
accuracy-ordered application configuration table.  Anything satisfying
the small protocols here can be managed; :mod:`repro.runtime.harness`
adapts the simulator and the benchmark suite, but real sensors and real
applications could be adapted identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable


@dataclass(frozen=True)
class Measurement:
    """Feedback from one application iteration (heartbeat).

    ``rate`` is observed application performance (work units/second,
    including the effect of the current application configuration) and
    ``power_w`` the observed full-system power.
    """

    work: float
    energy_j: float
    rate: float
    power_w: float

    def __post_init__(self) -> None:
        if self.work <= 0 or self.rate <= 0 or self.power_w <= 0:
            raise ValueError("work, rate, and power must be positive")
        if self.energy_j < 0:
            raise ValueError("energy cannot be negative")


@runtime_checkable
class AccuracyOrderedConfig(Protocol):
    """One application configuration as the runtime sees it."""

    @property
    def speedup(self) -> float: ...

    @property
    def accuracy(self) -> float: ...


@runtime_checkable
class AccuracyOrderedTable(Protocol):
    """What the runtime requires of an application's config table.

    Accuracy need only define a total order (Sec. 3.6);
    :class:`repro.apps.base.ConfigTable` satisfies this protocol.
    """

    @property
    def pareto_frontier(self) -> Sequence[AccuracyOrderedConfig]: ...

    @property
    def max_speedup(self) -> float: ...

    def best_accuracy_for_speedup(
        self, speedup: float
    ) -> AccuracyOrderedConfig: ...
